"""Serving runtime semantics: snapshots, admission, deadlines, probes, drain.

The chaos wall (``test_service_chaos.py``) proves the service survives
being killed; this module pins the *contract* of each component — snapshot
view lifetimes, bounded admission with explicit shed reasons, per-request
deadlines, health/readiness probes, graceful drain, and degradation to a
parked-but-serving state when the refresh loop exhausts its restart
budget.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.service import (DeadlineExceeded, ServiceUnavailable,
                           ServingRuntime, SnapshotView)
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.testing import FaultPlan

NUM_USERS = 60
DIM = 8


def _profiles():
    return generate_dense_profiles(NUM_USERS, dim=DIM, num_communities=3,
                                   seed=1)


def _config(**overrides):
    return EngineConfig(k=5, num_partitions=4, seed=7, **overrides)


def _batch(index, size=3):
    rng = np.random.default_rng(200 + index)
    return [ProfileChange(user=int(u), kind="set", vector=rng.random(DIM))
            for u in rng.choice(NUM_USERS, size=size, replace=False)]


def _runtime(workdir, **overrides):
    kwargs = dict(admission_capacity=64, refresh_poll_interval=0.005,
                  backoff_base=0.005, backoff_cap=0.05, max_restarts=10)
    kwargs.update(overrides)
    return ServingRuntime(_profiles(), _config(durable=True),
                          workdir=workdir, **kwargs)


def _await(predicate, timeout=30.0, message="condition"):
    deadline = time.time() + timeout
    while not predicate():
        assert time.time() < deadline, f"timed out waiting for {message}"
        time.sleep(0.005)


class TestLifecycleAndQueries:
    def test_ready_from_the_first_moment(self, tmp_path):
        """Epoch 0 (the pre-iteration state) is served before any refresh."""
        with _runtime(tmp_path / "svc") as service:
            health = service.health()
            assert health.live and health.ready
            assert service.current_epoch == 0
            assert len(service.neighbors(3)) == 5

    def test_durable_mode_is_forced_on(self, tmp_path):
        service = ServingRuntime(_profiles(), _config(),  # durable=False
                                 workdir=tmp_path / "svc")
        assert service.config.durable
        service.close()

    def test_query_before_start_is_unavailable(self, tmp_path):
        service = _runtime(tmp_path / "svc")
        with pytest.raises(ServiceUnavailable):
            service.neighbors(0, deadline_seconds=0.05)
        service.close()

    def test_query_after_close_is_unavailable(self, tmp_path):
        service = _runtime(tmp_path / "svc").start()
        service.close()
        with pytest.raises(ServiceUnavailable):
            service.neighbors(0)
        assert not service.health().live

    def test_updates_advance_the_serving_epoch(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            before = service.neighbors(5)
            assert service.submit_updates(_batch(0)).accepted
            _await(lambda: service.current_epoch >= 1
                   and service.pending_updates == 0, message="epoch 1")
            after = service.neighbors(5)
            assert len(after) == 5
            # epoch 0 is a random zero-score graph; one refresh scores it
            assert before != after

    def test_recommend_serves_from_sparse_snapshots(self, tmp_path):
        profiles = generate_sparse_profiles(NUM_USERS, num_items=200,
                                            items_per_user=12, seed=3)
        with ServingRuntime(profiles, _config(durable=True),
                            workdir=tmp_path / "svc",
                            refresh_poll_interval=0.005) as service:
            service.submit_updates([ProfileChange(user=1, kind="add", item=7)])
            _await(lambda: service.current_epoch >= 1
                   and service.pending_updates == 0, message="epoch 1")
            items = service.recommend(1, top_n=4)
            assert len(items) <= 4
            assert all(isinstance(item, int) for item in items)

    def test_recommend_rejects_dense_snapshots(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            with pytest.raises(ValueError, match="sparse"):
                service.recommend(1)


class TestAdmissionControl:
    def test_over_capacity_load_is_shed_with_a_reason(self, tmp_path):
        with _runtime(tmp_path / "svc", admission_capacity=4) as service:
            # wedge the refresh loop so the backlog cannot drain under us
            service.supervisor.stop()
            assert service.submit_updates(_batch(0, size=3)).accepted
            result = service.submit_updates(_batch(1, size=3))
            assert not result.accepted
            assert result.shed_reason == "capacity"
            assert result.pending == 3
            assert result.batch_size == 3
            stats = service.stats()
            assert stats["shed_batches"] == 1
            assert stats["shed_changes"] == 3
            assert stats["accepted_changes"] == 3

    def test_draining_service_sheds_new_work(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            service.stop(drain=True)
            result = service.submit_updates(_batch(0))
            assert not result.accepted
            assert result.shed_reason in ("draining", "closed")
            assert not service.accepting

    def test_batch_larger_than_capacity_is_always_shed(self, tmp_path):
        with _runtime(tmp_path / "svc", admission_capacity=2) as service:
            result = service.submit_updates(_batch(0, size=3))
            assert not result.accepted
            assert result.shed_reason == "capacity"


class TestDeadlines:
    def test_deadline_exceeded_when_no_snapshot_can_be_acquired(self, tmp_path):
        service = _runtime(tmp_path / "svc").start()
        try:
            # simulate "no snapshot yet" by clearing the view under the lock
            with service._view_lock:
                view, service._view = service._view, None
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                service.neighbors(0, deadline_seconds=0.05)
            assert time.monotonic() - started < 5.0
            assert service.stats()["query_failures"] == 1
            with service._view_lock:
                service._view = view
        finally:
            service.close()

    def test_default_deadline_is_used_when_not_overridden(self, tmp_path):
        service = _runtime(tmp_path / "svc",
                           default_deadline_seconds=0.05).start()
        try:
            with service._view_lock:
                service._view = None
            with pytest.raises(DeadlineExceeded):
                service.neighbors(0)
        finally:
            service.close()


class TestSnapshotViews:
    def test_retired_view_survives_until_last_reader_releases(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            with service._view_lock:
                view = service._view
            assert view.acquire()
            service.submit_updates(_batch(0))
            _await(lambda: service.current_epoch >= 1, message="swap")
            # the old view is retired but pinned: its files must still exist
            assert view.directory.is_dir()
            assert view.neighbors(0)  # still readable mid-retirement
            view.release()
            _await(lambda: not view.directory.exists(),
                   message="retired view disposal")
            # the new snapshot is untouched by the old view's disposal
            assert len(service.neighbors(0)) == 5

    def test_snapshot_survives_engine_commit_gc(self, tmp_path):
        """Hard links keep a served epoch alive after the engine prunes it."""
        with _runtime(tmp_path / "svc") as service:
            with service._view_lock:
                epoch0 = service._view
            assert epoch0.acquire()
            try:
                for index in range(3):  # COMMITS_KEPT=2: epoch 0 gets pruned
                    service.submit_updates(_batch(index))
                    _await(lambda i=index: service.current_epoch >= i + 1
                           and service.pending_updates == 0,
                           message=f"epoch {index + 1}")
                engine_epochs = [e for e, _ in service.engine.sealed_epochs()]
                assert 0 not in engine_epochs
                assert epoch0.neighbors(0)  # pruned upstream, readable here
            finally:
                epoch0.release()

    def test_acquire_after_dispose_fails_cleanly(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            with service._view_lock:
                view = service._view
        # close() retired the final view with no readers: it is disposed
        assert not view.acquire()


class TestDegradation:
    def test_exhausted_restart_budget_parks_failed_but_keeps_serving(
            self, tmp_path):
        # every refresh attempt dies at its first instruction, forever
        plan = FaultPlan()
        for occurrence in range(1, 40):
            plan.crash_at("iteration.begin", occurrence=occurrence)
        service = ServingRuntime(
            _profiles(), _config(durable=True, fault_plan=plan),
            workdir=tmp_path / "svc", admission_capacity=64,
            refresh_poll_interval=0.005, backoff_base=0.001,
            backoff_cap=0.005, max_restarts=2)
        service.start()
        try:
            service.submit_updates(_batch(0))
            _await(lambda: service.supervisor.state == "failed",
                   message="supervisor parking")
            health = service.health()
            assert health.refresh_state == "failed"
            assert health.last_error is not None
            assert health.live and health.ready  # degraded, not down
            assert len(service.neighbors(9)) == 5  # reads still answered
            service.stop(drain=False)
        finally:
            service.close()

    def test_health_reports_backlog_and_restarts(self, tmp_path):
        plan = FaultPlan().crash_at("service.before_swap", occurrence=1)
        service = ServingRuntime(
            _profiles(), _config(durable=True, fault_plan=plan),
            workdir=tmp_path / "svc", admission_capacity=64,
            refresh_poll_interval=0.005, backoff_base=0.001,
            backoff_cap=0.01, max_restarts=10)
        service.start()
        try:
            service.submit_updates(_batch(0))
            _await(lambda: service.restarts >= 1 and service.current_epoch >= 1,
                   message="recovery")
            health = service.health()
            assert health.restarts >= 1
            assert health.serving_epoch >= 1
            assert health.as_dict()["restarts"] == health.restarts
        finally:
            service.close()


class TestGracefulDrain:
    def test_drain_seals_the_pending_backlog_into_a_final_epoch(self, tmp_path):
        service = _runtime(tmp_path / "svc").start()
        try:
            # freeze the loop so the batch is still pending at stop() time
            service.supervisor.stop()
            assert service.submit_updates(_batch(0)).accepted
            assert service.pending_updates == 3
            service.stop(drain=True)
            assert service.pending_updates == 0
            assert service.engine.latest_sealed_epoch()[0] == 1
            assert not service.accepting
        finally:
            service.close()

    def test_stop_without_drain_leaves_the_backlog_in_the_wal(self, tmp_path):
        workdir = tmp_path / "svc"
        service = _runtime(workdir).start()
        service.supervisor.stop()
        assert service.submit_updates(_batch(0)).accepted
        service.stop(drain=False)
        service.close()
        recovered = ServingRuntime.recover(
            workdir, config=_config(durable=True),
            refresh_poll_interval=0.005)
        try:
            _await(lambda: recovered.current_epoch >= 1
                   and recovered.pending_updates == 0,
                   message="replayed backlog")
        finally:
            recovered.close()

    def test_stop_is_idempotent(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            service.stop(drain=True)
            service.stop(drain=True)
            service.stop(drain=False)
