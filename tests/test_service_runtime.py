"""Serving runtime semantics: snapshots, admission, deadlines, probes, drain.

The chaos wall (``test_service_chaos.py``) proves the service survives
being killed; this module pins the *contract* of each component — snapshot
view lifetimes, bounded admission with explicit shed reasons, per-request
deadlines, health/readiness probes, graceful drain, and degradation to a
parked-but-serving state when the refresh loop exhausts its restart
budget.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.service import (DeadlineExceeded, ServiceUnavailable,
                           ServingRuntime, SnapshotView)
from repro.service.admission import AdmissionController
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.testing import FaultPlan

NUM_USERS = 60
DIM = 8


def _profiles():
    return generate_dense_profiles(NUM_USERS, dim=DIM, num_communities=3,
                                   seed=1)


def _config(**overrides):
    return EngineConfig(k=5, num_partitions=4, seed=7, **overrides)


def _batch(index, size=3):
    rng = np.random.default_rng(200 + index)
    return [ProfileChange(user=int(u), kind="set", vector=rng.random(DIM))
            for u in rng.choice(NUM_USERS, size=size, replace=False)]


def _runtime(workdir, **overrides):
    kwargs = dict(admission_capacity=64, refresh_poll_interval=0.005,
                  backoff_base=0.005, backoff_cap=0.05, max_restarts=10)
    kwargs.update(overrides)
    return ServingRuntime(_profiles(), _config(durable=True),
                          workdir=workdir, **kwargs)


def _await(predicate, timeout=30.0, message="condition"):
    deadline = time.time() + timeout
    while not predicate():
        assert time.time() < deadline, f"timed out waiting for {message}"
        time.sleep(0.005)


class TestLifecycleAndQueries:
    def test_ready_from_the_first_moment(self, tmp_path):
        """Epoch 0 (the pre-iteration state) is served before any refresh."""
        with _runtime(tmp_path / "svc") as service:
            health = service.health()
            assert health.live and health.ready
            assert service.current_epoch == 0
            assert len(service.neighbors(3)) == 5

    def test_durable_mode_is_forced_on(self, tmp_path):
        service = ServingRuntime(_profiles(), _config(),  # durable=False
                                 workdir=tmp_path / "svc")
        assert service.config.durable
        service.close()

    def test_query_before_start_is_unavailable(self, tmp_path):
        service = _runtime(tmp_path / "svc")
        with pytest.raises(ServiceUnavailable):
            service.neighbors(0, deadline_seconds=0.05)
        service.close()

    def test_query_after_close_is_unavailable(self, tmp_path):
        service = _runtime(tmp_path / "svc").start()
        service.close()
        with pytest.raises(ServiceUnavailable):
            service.neighbors(0)
        assert not service.health().live

    def test_updates_advance_the_serving_epoch(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            before = service.neighbors(5)
            assert service.submit_updates(_batch(0)).accepted
            _await(lambda: service.current_epoch >= 1
                   and service.pending_updates == 0, message="epoch 1")
            after = service.neighbors(5)
            assert len(after) == 5
            # epoch 0 is a random zero-score graph; one refresh scores it
            assert before != after

    def test_recommend_serves_from_sparse_snapshots(self, tmp_path):
        profiles = generate_sparse_profiles(NUM_USERS, num_items=200,
                                            items_per_user=12, seed=3)
        with ServingRuntime(profiles, _config(durable=True),
                            workdir=tmp_path / "svc",
                            refresh_poll_interval=0.005) as service:
            service.submit_updates([ProfileChange(user=1, kind="add", item=7)])
            _await(lambda: service.current_epoch >= 1
                   and service.pending_updates == 0, message="epoch 1")
            items = service.recommend(1, top_n=4)
            assert len(items) <= 4
            assert all(isinstance(item, int) for item in items)

    def test_recommend_rejects_dense_snapshots(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            with pytest.raises(ValueError, match="sparse"):
                service.recommend(1)


class TestAdmissionControl:
    def test_over_capacity_load_is_shed_with_a_reason(self, tmp_path):
        with _runtime(tmp_path / "svc", admission_capacity=4) as service:
            # wedge the refresh loop so the backlog cannot drain under us
            service.supervisor.stop()
            assert service.submit_updates(_batch(0, size=3)).accepted
            result = service.submit_updates(_batch(1, size=3))
            assert not result.accepted
            assert result.shed_reason == "capacity"
            assert result.pending == 3
            assert result.batch_size == 3
            stats = service.stats()
            assert stats["shed_batches"] == 1
            assert stats["shed_changes"] == 3
            assert stats["accepted_changes"] == 3

    def test_draining_service_sheds_new_work(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            service.stop(drain=True)
            result = service.submit_updates(_batch(0))
            assert not result.accepted
            assert result.shed_reason in ("draining", "closed")
            assert not service.accepting

    def test_batch_larger_than_capacity_is_always_shed(self, tmp_path):
        with _runtime(tmp_path / "svc", admission_capacity=2) as service:
            result = service.submit_updates(_batch(0, size=3))
            assert not result.accepted
            assert result.shed_reason == "capacity"


class TestAdmissionDepthContract:
    """``AdmissionResult.pending`` is an observed post-enqueue depth.

    The old contract reported ``pre-enqueue read + len(batch)`` — an
    extrapolation that overstated the backlog whenever a refresh drain
    slipped between the capacity check and the enqueue.  The deterministic
    test pins the fixed contract at the unit level with a scripted drain
    interleave; the stress test runs concurrent writers against the live
    refresh loop and holds every accepted report to the capacity bound.
    """

    def test_pending_is_not_an_extrapolation_across_a_drain(self):
        queue = []

        def enqueue(batch):
            # a refresh drain interleaves exactly here — after the
            # capacity check, before the append
            queue.clear()
            queue.extend(batch)
            return len(queue)

        controller = AdmissionController(capacity=8, enqueue=enqueue,
                                         pending=lambda: len(queue))
        queue.extend(range(4))  # backlog the capacity check will observe
        batch = _batch(0, size=2)
        result = controller.submit(batch)
        assert result.accepted
        # the drain emptied the queue: the batch left depth 2 behind,
        # not the pre-read extrapolation 4 + 2 = 6
        assert result.pending == 2
        assert result.batch_size == 2

    def test_concurrent_writers_versus_drain_hold_the_bound(self, tmp_path):
        capacity = 16
        with _runtime(tmp_path / "svc",
                      admission_capacity=capacity) as service:
            results = []
            results_lock = threading.Lock()

            def writer(slot):
                for index in range(25):
                    outcome = service.submit_updates(
                        _batch(slot * 100 + index, size=2))
                    with results_lock:
                        results.append(outcome)

            threads = [threading.Thread(target=writer, args=(slot,))
                       for slot in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            accepted = [r for r in results if r.accepted]
            shed = [r for r in results if not r.accepted]
            assert accepted, "the drain kept up with nothing accepted?"
            for outcome in accepted:
                # observed depth: within capacity, never negative — a
                # drain between append and read may even have consumed
                # the batch itself (pending < batch_size is legal)
                assert 0 <= outcome.pending <= capacity
            for outcome in shed:
                assert outcome.shed_reason == "capacity"
                assert outcome.pending + outcome.batch_size > capacity
            _await(lambda: service.pending_updates == 0,
                   message="final drain")


class TestDeadlines:
    def test_deadline_exceeded_when_no_snapshot_can_be_acquired(self, tmp_path):
        service = _runtime(tmp_path / "svc").start()
        try:
            # simulate "no snapshot yet" by clearing the view under the lock
            with service._view_lock:
                view, service._view = service._view, None
            started = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                service.neighbors(0, deadline_seconds=0.05)
            assert time.monotonic() - started < 5.0
            assert service.stats()["query_failures"] == 1
            with service._view_lock:
                service._view = view
        finally:
            service.close()

    def test_default_deadline_is_used_when_not_overridden(self, tmp_path):
        service = _runtime(tmp_path / "svc",
                           default_deadline_seconds=0.05).start()
        try:
            with service._view_lock:
                service._view = None
            with pytest.raises(DeadlineExceeded):
                service.neighbors(0)
        finally:
            service.close()


class TestSnapshotViews:
    def test_retired_view_survives_until_last_reader_releases(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            with service._view_lock:
                view = service._view
            assert view.acquire()
            service.submit_updates(_batch(0))
            _await(lambda: service.current_epoch >= 1, message="swap")
            # the old view is retired but pinned: its files must still exist
            assert view.directory.is_dir()
            assert view.neighbors(0)  # still readable mid-retirement
            view.release()
            _await(lambda: not view.directory.exists(),
                   message="retired view disposal")
            # the new snapshot is untouched by the old view's disposal
            assert len(service.neighbors(0)) == 5

    def test_snapshot_survives_engine_commit_gc(self, tmp_path):
        """Hard links keep a served epoch alive after the engine prunes it."""
        with _runtime(tmp_path / "svc") as service:
            with service._view_lock:
                epoch0 = service._view
            assert epoch0.acquire()
            try:
                for index in range(3):  # COMMITS_KEPT=2: epoch 0 gets pruned
                    service.submit_updates(_batch(index))
                    _await(lambda i=index: service.current_epoch >= i + 1
                           and service.pending_updates == 0,
                           message=f"epoch {index + 1}")
                engine_epochs = [e for e, _ in service.engine.sealed_epochs()]
                assert 0 not in engine_epochs
                assert epoch0.neighbors(0)  # pruned upstream, readable here
            finally:
                epoch0.release()

    def test_acquire_after_dispose_fails_cleanly(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            with service._view_lock:
                view = service._view
        # close() retired the final view with no readers: it is disposed
        assert not view.acquire()


class TestSnapshotDirectoryLifetimes:
    """The disposal-vs-clone seam: every live view owns a unique directory.

    The refcount state machine itself is sound (every transition happens
    under the view lock and ``_disposed`` latches before the rmtree), but
    two views cloned from the same epoch used to share one
    ``epoch_NNNNN`` path — so a retired view's disposal deleted the files
    a fresh view of the same epoch was serving.  The regression test pins
    the unique-suffix fix deterministically; the stress test hammers the
    acquire/read/release path against a swap-and-retire loop.
    """

    def test_recloning_a_served_epoch_never_shares_its_directory(
            self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            epoch, commit_dir = service.engine.sealed_epochs()[0]
            serving = tmp_path / "standalone_serving"
            first = SnapshotView.from_commit(commit_dir, serving, epoch)
            second = SnapshotView.from_commit(commit_dir, serving, epoch)
            try:
                assert first.directory != second.directory
                first.retire()  # no readers: disposes (rmtree) immediately
                assert not first.directory.exists()
                # pre-fix both views served epoch_00000: the rmtree above
                # deleted the second view's files out from under it
                assert second.directory.is_dir()
                assert second.acquire()
                try:
                    assert second.neighbors(0) is not None
                finally:
                    second.release()
            finally:
                second.retire()

    def test_readers_versus_swap_and_retire_stress(self, tmp_path):
        """Reader threads pin/read/release while a swapper re-clones the
        same epoch and retires the previous view.  A failed acquire is the
        only acceptable race outcome; a read crashing (its files deleted
        mid-flight) is the seam this pins shut."""
        profiles = generate_sparse_profiles(NUM_USERS, num_items=200,
                                            items_per_user=12, seed=3)
        with ServingRuntime(profiles, _config(durable=True),
                            workdir=tmp_path / "svc",
                            refresh_poll_interval=0.005) as service:
            epoch, commit_dir = service.engine.sealed_epochs()[0]
        serving = tmp_path / "stress_serving"
        holder = {"view": SnapshotView.from_commit(commit_dir, serving, epoch)}
        swap_lock = threading.Lock()
        stop = threading.Event()
        errors = []
        reads = [0] * 4

        def reader(slot):
            while not stop.is_set():
                with swap_lock:
                    view = holder["view"]
                if not view.acquire():
                    continue  # the swapper already disposed it: fine
                try:
                    view.recommend(3, top_n=3)  # touches the cloned store
                    reads[slot] += 1
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                finally:
                    view.release()

        def swapper():
            try:
                for _ in range(25):
                    fresh = SnapshotView.from_commit(commit_dir, serving,
                                                     epoch)
                    with swap_lock:
                        old, holder["view"] = holder["view"], fresh
                    old.retire()
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)
            finally:
                stop.set()

        threads = ([threading.Thread(target=reader, args=(slot,))
                    for slot in range(4)]
                   + [threading.Thread(target=swapper)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert sum(reads) > 0
        holder["view"].retire()
        # every clone was retired and read-free: the directory is empty
        assert list(serving.iterdir()) == []


class TestDegradation:
    def test_exhausted_restart_budget_parks_failed_but_keeps_serving(
            self, tmp_path):
        # every refresh attempt dies at its first instruction, forever
        plan = FaultPlan()
        for occurrence in range(1, 40):
            plan.crash_at("iteration.begin", occurrence=occurrence)
        service = ServingRuntime(
            _profiles(), _config(durable=True, fault_plan=plan),
            workdir=tmp_path / "svc", admission_capacity=64,
            refresh_poll_interval=0.005, backoff_base=0.001,
            backoff_cap=0.005, max_restarts=2)
        service.start()
        try:
            service.submit_updates(_batch(0))
            _await(lambda: service.supervisor.state == "failed",
                   message="supervisor parking")
            health = service.health()
            assert health.refresh_state == "failed"
            assert health.last_error is not None
            assert health.live and health.ready  # degraded, not down
            assert len(service.neighbors(9)) == 5  # reads still answered
            service.stop(drain=False)
        finally:
            service.close()

    def test_health_reports_backlog_and_restarts(self, tmp_path):
        plan = FaultPlan().crash_at("service.before_swap", occurrence=1)
        service = ServingRuntime(
            _profiles(), _config(durable=True, fault_plan=plan),
            workdir=tmp_path / "svc", admission_capacity=64,
            refresh_poll_interval=0.005, backoff_base=0.001,
            backoff_cap=0.01, max_restarts=10)
        service.start()
        try:
            service.submit_updates(_batch(0))
            _await(lambda: service.restarts >= 1 and service.current_epoch >= 1,
                   message="recovery")
            health = service.health()
            assert health.restarts >= 1
            assert health.serving_epoch >= 1
            assert health.as_dict()["restarts"] == health.restarts
        finally:
            service.close()


class TestGracefulDrain:
    def test_drain_seals_the_pending_backlog_into_a_final_epoch(self, tmp_path):
        service = _runtime(tmp_path / "svc").start()
        try:
            # freeze the loop so the batch is still pending at stop() time
            service.supervisor.stop()
            assert service.submit_updates(_batch(0)).accepted
            assert service.pending_updates == 3
            service.stop(drain=True)
            assert service.pending_updates == 0
            assert service.engine.latest_sealed_epoch()[0] == 1
            assert not service.accepting
        finally:
            service.close()

    def test_stop_without_drain_leaves_the_backlog_in_the_wal(self, tmp_path):
        workdir = tmp_path / "svc"
        service = _runtime(workdir).start()
        service.supervisor.stop()
        assert service.submit_updates(_batch(0)).accepted
        service.stop(drain=False)
        service.close()
        recovered = ServingRuntime.recover(
            workdir, config=_config(durable=True),
            refresh_poll_interval=0.005)
        try:
            _await(lambda: recovered.current_epoch >= 1
                   and recovered.pending_updates == 0,
                   message="replayed backlog")
        finally:
            recovered.close()

    def test_stop_is_idempotent(self, tmp_path):
        with _runtime(tmp_path / "svc") as service:
            service.stop(drain=True)
            service.stop(drain=True)
            service.stop(drain=False)
