"""Backend parity wall: ``process`` ≡ ``thread`` ≡ serial, everywhere.

The process backend re-opens the profile store in worker processes and
scores tuple shards against mmap-served slices; these tests pin its results
to the serial path — score arrays to 1e-12 (in practice bitwise) for all 8
measures on dense and sparse stores, and edge-set fingerprints for whole
engine runs — including the awkward shapes: empty tuple batches, shards
emptier than the worker count, partitions smaller than the worker count,
and a one-worker pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.parallel import ProcessScoringPool, score_tuples
from repro.graph.knn_graph import KNNGraph
from repro.similarity.measures import SET_MEASURES, VECTOR_MEASURES
from repro.similarity.workloads import generate_dense_profiles, generate_sparse_profiles
from repro.storage.profile_store import OnDiskProfileStore

NUM_USERS = 120


@pytest.fixture(scope="module")
def dense_store(tmp_path_factory):
    profiles = generate_dense_profiles(NUM_USERS, dim=8, num_communities=4,
                                       noise=0.2, seed=7)
    return OnDiskProfileStore.create(tmp_path_factory.mktemp("dense"), profiles,
                                     disk_model="instant")


@pytest.fixture(scope="module")
def sparse_store(tmp_path_factory):
    profiles = generate_sparse_profiles(NUM_USERS, 300, items_per_user=15,
                                        num_communities=4, seed=7)
    return OnDiskProfileStore.create(tmp_path_factory.mktemp("sparse"), profiles,
                                     disk_model="instant")


@pytest.fixture(scope="module")
def dense_pool(dense_store):
    with ProcessScoringPool(dense_store, num_workers=3) as pool:
        yield pool


@pytest.fixture(scope="module")
def sparse_pool(sparse_store):
    with ProcessScoringPool(sparse_store, num_workers=3) as pool:
        yield pool


@pytest.fixture(scope="module")
def pairs():
    rng = np.random.default_rng(11)
    return rng.integers(0, NUM_USERS, size=(500, 2)).astype(np.int64)


def _assert_scores_match(expected, got):
    np.testing.assert_allclose(got, expected, rtol=0.0, atol=1e-12)


class TestScoreParityAllMeasures:
    @pytest.mark.parametrize("measure", sorted(VECTOR_MEASURES))
    def test_dense_measures(self, dense_store, dense_pool, pairs, measure):
        piece = dense_store.load_users(range(NUM_USERS))
        serial = score_tuples(piece, pairs, measure, backend="serial")
        threaded = score_tuples(piece, pairs, measure, num_threads=4,
                                chunk_size=64, backend="thread")
        process = score_tuples(piece, pairs, measure, backend="process",
                               pool=dense_pool)
        _assert_scores_match(serial, threaded)
        _assert_scores_match(serial, process)

    @pytest.mark.parametrize("measure", sorted(SET_MEASURES))
    def test_sparse_measures(self, sparse_store, sparse_pool, pairs, measure):
        piece = sparse_store.load_users(range(NUM_USERS))
        serial = score_tuples(piece, pairs, measure, backend="serial")
        threaded = score_tuples(piece, pairs, measure, num_threads=4,
                                chunk_size=64, backend="thread")
        process = score_tuples(piece, pairs, measure, backend="process",
                               pool=sparse_pool)
        _assert_scores_match(serial, threaded)
        _assert_scores_match(serial, process)

    def test_scattered_slice_parity(self, dense_store, dense_pool):
        """Non-contiguous user ids exercise the gathered-copy load path."""
        users = list(range(0, NUM_USERS, 3))
        piece = dense_store.load_users(users)
        rng = np.random.default_rng(5)
        pairs = np.asarray(users, dtype=np.int64)[
            rng.integers(0, len(users), size=(200, 2))]
        serial = score_tuples(piece, pairs, "cosine", backend="serial")
        process = score_tuples(piece, pairs, "cosine", backend="process",
                               pool=dense_pool)
        _assert_scores_match(serial, process)


class TestProcessPoolEdgeCases:
    def test_empty_tuples(self, dense_store, dense_pool):
        piece = dense_store.load_users(range(10))
        out = score_tuples(piece, np.empty((0, 2), dtype=np.int64), "cosine",
                           backend="process", pool=dense_pool)
        assert out.shape == (0,)

    def test_fewer_tuples_than_workers(self, dense_store, dense_pool):
        """Shards beyond the tuple count are dropped, not scored empty."""
        piece = dense_store.load_users(range(10))
        pairs = np.array([[0, 1], [2, 3]], dtype=np.int64)
        out = score_tuples(piece, pairs, "cosine", backend="process",
                           pool=dense_pool)
        _assert_scores_match(piece.similarity_pairs(pairs, "cosine"), out)

    def test_single_worker_pool(self, dense_store):
        piece = dense_store.load_users(range(NUM_USERS))
        pairs = np.array([[0, 1], [5, 9], [10, 11]], dtype=np.int64)
        with ProcessScoringPool(dense_store, num_workers=1) as pool:
            out = score_tuples(piece, pairs, "cosine", backend="process", pool=pool)
        _assert_scores_match(piece.similarity_pairs(pairs, "cosine"), out)

    def test_process_backend_requires_pool(self, dense_store):
        piece = dense_store.load_users(range(10))
        with pytest.raises(ValueError):
            score_tuples(piece, np.array([[0, 1]]), "cosine", backend="process")

    def test_unknown_backend_rejected(self, dense_store):
        piece = dense_store.load_users(range(10))
        with pytest.raises(ValueError):
            score_tuples(piece, np.array([[0, 1]]), "cosine", backend="gpu")

    def test_pool_reuses_cached_slice_per_key(self, dense_store, dense_pool, pairs):
        """Same key twice → same result (worker cache reuse is sound)."""
        piece = dense_store.load_users(range(NUM_USERS))
        first = dense_pool.score(piece.user_ids, pairs, "cosine", key="step-a")
        second = dense_pool.score(piece.user_ids, pairs, "cosine", key="step-a")
        _assert_scores_match(first, second)


def _engine_fingerprint(profiles, **overrides) -> str:
    defaults = dict(k=5, num_partitions=4, heuristic="degree-low-high", seed=17)
    defaults.update(overrides)
    config = EngineConfig(**defaults)
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=2)
    return run.final_graph.edge_fingerprint()


class TestEngineBackendParity:
    def test_dense_engine_all_backends_identical(self):
        profiles = generate_dense_profiles(150, dim=8, num_communities=4, seed=23)
        serial = _engine_fingerprint(profiles, backend="serial")
        threaded = _engine_fingerprint(profiles, backend="thread", num_threads=3)
        process = _engine_fingerprint(profiles, backend="process", num_workers=3)
        assert serial == threaded == process

    def test_sparse_engine_process_identical(self):
        """Set measures produce heavy score ties; parity must survive them."""
        profiles = generate_sparse_profiles(150, 200, items_per_user=10,
                                            num_communities=4, seed=23)
        serial = _engine_fingerprint(profiles, backend="serial")
        process = _engine_fingerprint(profiles, backend="process", num_workers=3)
        assert serial == process

    def test_partitions_smaller_than_worker_count(self):
        """8 partitions of ~7 users each, 6 workers: shards go empty, results don't."""
        profiles = generate_dense_profiles(60, dim=6, num_communities=3, seed=29)
        serial = _engine_fingerprint(profiles, k=4, num_partitions=8,
                                     backend="serial")
        process = _engine_fingerprint(profiles, k=4, num_partitions=8,
                                      backend="process", num_workers=6)
        assert serial == process

    def test_process_single_worker(self):
        profiles = generate_dense_profiles(80, dim=6, num_communities=3, seed=31)
        serial = _engine_fingerprint(profiles, backend="serial")
        process = _engine_fingerprint(profiles, backend="process", num_workers=1)
        assert serial == process


class TestShardedMergeDeterminism:
    def test_sharded_equals_batch_with_ties(self):
        rng = np.random.default_rng(41)
        n, rows = 60, 800
        src = rng.integers(0, n, size=rows).astype(np.int64)
        dst = rng.integers(0, n, size=rows).astype(np.int64)
        # quantised scores force plenty of exact ties
        scores = np.round(rng.random(rows), 1)
        plain = KNNGraph(n, 5)
        sharded = KNNGraph(n, 5)
        changed_plain = plain.add_candidates_batch(src, dst, scores)
        changed_sharded = sharded.add_candidates_sharded(src, dst, scores,
                                                         num_shards=4)
        assert changed_plain == changed_sharded
        assert plain.edge_fingerprint() == sharded.edge_fingerprint()

    def test_sharded_with_incumbents(self):
        rng = np.random.default_rng(43)
        n = 40
        plain = KNNGraph.random(n, 4, seed=9)
        sharded = plain.copy()
        src = rng.integers(0, n, size=300).astype(np.int64)
        dst = rng.integers(0, n, size=300).astype(np.int64)
        scores = np.round(rng.random(300), 2)
        plain.add_candidates_batch(src, dst, scores)
        sharded.add_candidates_sharded(src, dst, scores, num_shards=3)
        assert plain.edge_fingerprint() == sharded.edge_fingerprint()
