"""Tests for the extension heuristics (greedy-resident, cost-aware)."""

import pytest

from repro.graph.datasets import small_dataset
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import compare_heuristics, count_load_unload_operations
from repro.pigraph.traversal import CostAwareHeuristic, HEURISTICS, get_heuristic
from repro.tuples.hash_table import TupleHashTable

import numpy as np


@pytest.fixture
def weighted_pi():
    """A PI graph whose tuple weights differ strongly from its degree structure."""
    pi = PIGraph(6)
    pi.add_edge(0, 1, weight=1000)
    pi.add_edge(1, 0, weight=800)
    pi.add_edge(2, 3, weight=5)
    pi.add_edge(3, 4, weight=5)
    pi.add_edge(4, 5, weight=5)
    pi.add_edge(5, 2, weight=5)
    pi.add_edge(0, 2, weight=1)
    pi.add_edge(1, 5, weight=1)
    return pi


@pytest.fixture
def dataset_pi():
    return PIGraph.from_digraph(small_dataset(300, 1800, seed=61))


class TestCostAware:
    def test_registered(self):
        assert "cost-aware" in HEURISTICS
        assert isinstance(get_heuristic("cost-aware"), CostAwareHeuristic)

    def test_plan_covers_all_edges_and_weights(self, weighted_pi):
        steps = CostAwareHeuristic().plan(weighted_pi)
        total_weight = sum(edge.weight for _, _, edges in steps for edge in edges)
        total_edges = sum(len(edges) for _, _, edges in steps)
        assert total_weight == weighted_pi.total_weight
        assert total_edges == weighted_pi.num_edges

    def test_prioritises_heavy_partitions(self, weighted_pi):
        heuristic = CostAwareHeuristic()
        order = heuristic.pivot_order(weighted_pi)
        # partitions 0 and 1 carry almost all the similarity work and should
        # be scheduled before the light ring 2-3-4-5
        assert set(order[:2]) == {0, 1}

    def test_valid_schedule_on_dataset(self, dataset_pi):
        result = count_load_unload_operations(dataset_pi, "cost-aware")
        assert result.tuples_scheduled == dataset_pi.total_weight
        assert result.loads == result.unloads

    def test_competitive_with_sequential(self, dataset_pi):
        results = compare_heuristics(dataset_pi, ["sequential", "cost-aware"])
        assert (results["cost-aware"].load_unload_operations
                <= results["sequential"].load_unload_operations)

    def test_differs_from_greedy_resident_on_weighted_graph(self, weighted_pi):
        cost_plan = CostAwareHeuristic().plan(weighted_pi)
        greedy_plan = get_heuristic("greedy-resident").plan(weighted_pi)
        # same coverage, potentially different order; both must be complete
        assert (sum(len(e) for _, _, e in cost_plan)
                == sum(len(e) for _, _, e in greedy_plan)
                == weighted_pi.num_edges)

    def test_weighted_pi_from_tuple_table(self):
        """cost-aware consumes the tuple weights the engine's PI graph carries."""
        assignment = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        table = TupleHashTable(6, assignment)
        table.add_many([(0, 2), (0, 3), (1, 2), (4, 0), (4, 1), (2, 4)])
        pi = PIGraph.from_tuple_table(table, 3)
        result = count_load_unload_operations(pi, "cost-aware")
        assert result.tuples_scheduled == table.num_tuples


class TestEngineWithExtensions:
    @pytest.mark.parametrize("heuristic", ["greedy-resident", "cost-aware"])
    def test_engine_accepts_extension_heuristics(self, heuristic):
        from repro.core.config import EngineConfig
        from repro.core.engine import KNNEngine
        from repro.similarity.workloads import generate_dense_profiles

        profiles = generate_dense_profiles(150, dim=8, seed=62)
        config = EngineConfig(k=5, num_partitions=4, heuristic=heuristic, seed=62)
        with KNNEngine(profiles, config) as engine:
            result = engine.run_iteration()
        assert result.load_unload_operations == result.schedule.load_unload_operations
        assert result.graph.num_vertices == 150

    def test_extension_matches_paper_heuristic_result_exactly(self):
        """Traversal order must not change the computed KNN graph."""
        from repro.core.config import EngineConfig
        from repro.core.engine import KNNEngine
        from repro.similarity.workloads import generate_dense_profiles

        profiles = generate_dense_profiles(150, dim=8, seed=63)
        graphs = []
        for heuristic in ("sequential", "cost-aware"):
            config = EngineConfig(k=5, num_partitions=4, heuristic=heuristic, seed=63)
            with KNNEngine(profiles, config) as engine:
                graphs.append(engine.run(num_iterations=2).final_graph)
        assert graphs[0].edge_difference(graphs[1]) == 0
