"""Tests for the shared experiment harness (repro.bench.experiments)."""

import pytest

from repro.bench.experiments import (
    PAPER_TABLE1,
    Table1Row,
    format_table1,
    run_disk_model_comparison,
    run_heuristic_sweep,
    run_memory_budget_sweep,
    run_pipeline_phase_breakdown,
    run_quality_comparison,
    run_table1_row,
)
from repro.graph.datasets import DATASETS, DatasetSpec


@pytest.fixture(scope="module")
def tiny_spec():
    """A scaled-down dataset spec so harness tests stay fast."""
    return DatasetSpec(
        name="tiny", display_name="Tiny", num_vertices=400, num_edges=2400,
        family="test", exponent=2.2, description="test-only dataset",
    )


class TestTable1Harness:
    def test_row_contains_all_heuristics(self, tiny_spec):
        row = run_table1_row(tiny_spec, seed=1)
        assert set(row.operations) == {"sequential", "degree-high-low", "degree-low-high"}
        assert row.num_nodes == 400
        assert row.num_edges == 2400

    def test_row_shape_matches_paper_claim(self, tiny_spec):
        row = run_table1_row(tiny_spec, seed=1)
        assert row.improvement_over_sequential("degree-high-low") > 0
        assert row.improvement_over_sequential("degree-low-high") > 0

    def test_paper_reference_values_attached_for_real_datasets(self):
        assert set(PAPER_TABLE1) == set(DATASETS)
        row = Table1Row(dataset="wiki-vote", display_name="Wiki-Vote", num_nodes=1,
                        num_edges=1, operations={"sequential": 10},
                        paper_operations={"sequential": 211856})
        assert row.paper_operations["sequential"] == 211856

    def test_format_table(self, tiny_spec):
        rows = [run_table1_row(tiny_spec, seed=1)]
        text = format_table1(rows)
        assert "Tiny" in text
        assert "sequential" in text


class TestOtherHarnesses:
    def test_pipeline_phase_breakdown(self):
        summary = run_pipeline_phase_breakdown(num_users=200, k=5, num_partitions=4,
                                               num_iterations=1, seed=2)
        assert set(summary["phase_seconds"]) == {
            "1-partitioning", "2-hash-table", "3-pi-graph",
            "4-knn-computation", "5-profile-update"}
        assert summary["num_iterations"] == 1
        assert len(summary["per_iteration"]) == 1

    def test_heuristic_sweep_includes_extensions(self, tiny_spec, monkeypatch):
        monkeypatch.setitem(DATASETS, "tiny", tiny_spec)
        results = run_heuristic_sweep("tiny", seed=3)
        assert "greedy-resident" in results
        assert results["sequential"].load_unload_operations >= max(
            results["degree-low-high"].load_unload_operations,
            results["greedy-resident"].load_unload_operations)

    def test_memory_budget_sweep_monotone_operations(self):
        rows = run_memory_budget_sweep(num_users=240, k=5,
                                       partition_counts=(2, 4, 8), seed=4)
        operations = [row["load_unload_operations"] for row in rows]
        assert operations == sorted(operations)

    def test_disk_model_comparison_hdd_slower(self):
        rows = run_disk_model_comparison(num_users=200, k=5, num_partitions=4, seed=5)
        by_model = {row["disk_model"]: row for row in rows}
        assert by_model["hdd"]["simulated_io_seconds"] > by_model["ssd"]["simulated_io_seconds"]

    def test_quality_comparison_shapes(self):
        summary = run_quality_comparison(num_users=200, k=6, num_iterations=3,
                                         num_partitions=4, seed=6)
        assert summary["engine_recalls"][-1] > 0.5
        assert summary["nn_descent_recall"] > 0.5
        assert summary["engine_similarity_evaluations"] < summary["brute_force_evaluations"]
        assert 0 < summary["engine_scan_rate"] < 1
