"""Tests for repro.graph.edge_list."""

import numpy as np
import pytest

from repro.graph.edge_list import (
    read_edge_list,
    read_edge_list_binary,
    write_edge_list,
    write_edge_list_binary,
)
from repro.graph.generators import erdos_renyi_graph


class TestTextFormat:
    def test_roundtrip(self, small_csr, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(path, small_csr, header="test graph")
        loaded = read_edge_list(path, num_vertices=small_csr.num_vertices)
        assert loaded.num_edges == small_csr.num_edges
        assert np.array_equal(loaded.edges_array(), small_csr.edges_array())

    def test_header_and_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n0 1\n1 2\n\n# trailing\n2 0\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_non_contiguous_ids_remapped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20\n20 30\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_write_from_digraph(self, small_digraph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(path, small_digraph)
        loaded = read_edge_list(path, num_vertices=5)
        assert loaded.num_edges == small_digraph.num_edges


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        graph = erdos_renyi_graph(100, num_edges=500, seed=3)
        path = tmp_path / "graph.bin"
        write_edge_list_binary(path, graph)
        loaded = read_edge_list_binary(path)
        assert loaded.num_vertices == 100
        assert loaded.num_edges == 500
        assert np.array_equal(loaded.edges_array(), graph.edges_array())

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        with pytest.raises(ValueError, match="magic"):
            read_edge_list_binary(path)

    def test_truncated_file_rejected(self, tmp_path, small_csr):
        path = tmp_path / "graph.bin"
        write_edge_list_binary(path, small_csr)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ValueError, match="truncated"):
            read_edge_list_binary(path)

    def test_binary_smaller_than_text_for_large_graphs(self, tmp_path):
        graph = erdos_renyi_graph(200, num_edges=2000, seed=5)
        text_path = tmp_path / "g.txt"
        bin_path = tmp_path / "g.bin"
        write_edge_list(text_path, graph)
        write_edge_list_binary(bin_path, graph)
        assert bin_path.stat().st_size > 0
        assert text_path.stat().st_size > 0
