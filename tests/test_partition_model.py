"""Tests for repro.partition.model."""

import numpy as np
import pytest

from repro.partition.model import (
    Partition,
    assignment_from_partitions,
    build_partitions,
)
from repro.partition.partitioners import ContiguousPartitioner


class TestBuildPartitions:
    def test_vertices_are_partitioned_exactly_once(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        all_vertices = np.concatenate([p.vertices for p in partitions])
        assert sorted(all_vertices.tolist()) == list(range(medium_graph.num_vertices))

    def test_every_edge_appears_as_in_and_out(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        total_out = sum(p.num_out_edges for p in partitions)
        total_in = sum(p.num_in_edges for p in partitions)
        assert total_out == medium_graph.num_edges
        assert total_in == medium_graph.num_edges

    def test_edges_sorted_by_bridge_vertex(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        for partition in build_partitions(medium_graph, assignment, 4):
            if partition.num_out_edges:
                assert np.all(np.diff(partition.out_edges[:, 0]) >= 0)
            if partition.num_in_edges:
                assert np.all(np.diff(partition.in_edges[:, 1]) >= 0)

    def test_out_edges_belong_to_partition_vertices(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        for partition in build_partitions(medium_graph, assignment, 4):
            vertex_set = partition.vertex_set()
            assert all(int(v) in vertex_set for v in partition.out_edges[:, 0])
            assert all(int(v) in vertex_set for v in partition.in_edges[:, 1])

    def test_unique_external_counts(self, small_csr):
        # single partition: all sources/destinations are internal but still counted
        assignment = np.zeros(small_csr.num_vertices, dtype=np.int64)
        [partition] = build_partitions(small_csr, assignment, 1)
        assert partition.num_unique_in_sources == len(
            np.unique(small_csr.edges_array()[:, 0]))
        assert partition.num_unique_out_destinations == len(
            np.unique(small_csr.edges_array()[:, 1]))

    def test_bad_assignment_length(self, small_csr):
        with pytest.raises(ValueError):
            build_partitions(small_csr, np.zeros(3, dtype=np.int64), 1)

    def test_assignment_out_of_range(self, small_csr):
        bad = np.full(small_csr.num_vertices, 5, dtype=np.int64)
        with pytest.raises(ValueError):
            build_partitions(small_csr, bad, 2)


class TestPartitionObject:
    def test_contains(self, small_csr):
        assignment = ContiguousPartitioner().assign(small_csr, 2)
        partitions = build_partitions(small_csr, assignment, 2)
        first = partitions[0]
        for v in first.vertices:
            assert first.contains(int(v))
        assert not first.contains(int(partitions[1].vertices[0]))

    def test_locality_cost(self):
        partition = Partition(
            pid=0,
            vertices=np.array([0, 1]),
            in_edges=np.empty((0, 2), dtype=np.int64),
            out_edges=np.empty((0, 2), dtype=np.int64),
            num_unique_in_sources=3,
            num_unique_out_destinations=4,
        )
        assert partition.locality_cost == 7

    def test_estimated_bytes_scales_with_profiles(self, small_csr):
        assignment = ContiguousPartitioner().assign(small_csr, 1)
        [partition] = build_partitions(small_csr, assignment, 1)
        assert partition.estimated_bytes(100) > partition.estimated_bytes(0)


class TestAssignmentRoundtrip:
    def test_roundtrip(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 5)
        partitions = build_partitions(medium_graph, assignment, 5)
        rebuilt = assignment_from_partitions(partitions, medium_graph.num_vertices)
        assert np.array_equal(rebuilt, assignment)

    def test_uncovered_vertex_detected(self, small_csr):
        assignment = ContiguousPartitioner().assign(small_csr, 2)
        partitions = build_partitions(small_csr, assignment, 2)
        with pytest.raises(ValueError):
            assignment_from_partitions(partitions[:1], small_csr.num_vertices)
