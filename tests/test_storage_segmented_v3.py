"""Segmented (v3) sparse stores and multi-block dense slices.

Three protections for the amortised iteration loop's storage layer:

* property-based parity — across random phase-5 update sequences, a
  segmented v3 store (tiny segments, tiny journal cap, so both the journal
  path and the compaction path are exercised constantly) serves exactly the
  same profiles and bit-identical scores as a full-rewrite v2 store;
* write-byte scaling — incremental updates write bytes proportional to the
  touched rows, never the store size;
* multi-block dense merges — merging two partitions' mapped slices
  allocates no new matrix, and scores stay bit-identical to the copying
  merge.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.measures import SET_MEASURES, VECTOR_MEASURES
from repro.similarity.profiles import SparseProfileStore
from repro.similarity.workloads import ProfileChange
from repro.storage.profile_store import (OnDiskProfileStore,
                                         partition_aligned_bounds)

# -- strategies -------------------------------------------------------------

profiles_strategy = st.lists(st.sets(st.integers(0, 30), max_size=6),
                             min_size=3, max_size=24)

change_batches = st.lists(
    st.lists(st.tuples(st.booleans(),              # add (True) / remove
                       st.integers(0, 40),         # item (may be unseen)
                       st.integers(0, 1_000_000)), # user (mod num_users)
             min_size=1, max_size=8),
    min_size=1, max_size=5)


def _to_changes(batch, num_users):
    return [ProfileChange(user=user % num_users,
                          kind="add" if add else "remove", item=item)
            for add, item, user in batch]


class TestSegmentedMatchesRewrite:
    @settings(max_examples=40, deadline=None)
    @given(profiles=profiles_strategy, batches=change_batches,
           pair_seed=st.integers(0, 2**16))
    def test_random_update_sequences(self, tmp_path_factory, profiles, batches,
                                     pair_seed):
        num_users = len(profiles)
        base = tmp_path_factory.mktemp("v3-parity")
        store_mem = SparseProfileStore(profiles)
        # tiny segments and a 2-entry journal cap force journal appends,
        # latest-entry-wins overrides AND compactions inside a short run
        v3 = OnDiskProfileStore.create(base / "v3", store_mem,
                                       disk_model="instant",
                                       segment_bounds=None, journal_limit=2)
        v2 = OnDiskProfileStore.create(base / "v2", store_mem,
                                       disk_model="instant", format_version=2)
        rng = np.random.default_rng(pair_seed)
        for batch in batches:
            changes = _to_changes(batch, num_users)
            assert v3.apply_changes(changes) == v2.apply_changes(changes)
            assert v3.load_all() == v2.load_all()
            ids = sorted(set(rng.integers(0, num_users, size=4).tolist()))
            piece_v3 = v3.load_users(ids)
            piece_v2 = v2.load_users(ids)
            for user in ids:
                assert piece_v3.get(user) == piece_v2.get(user)
            pairs = np.asarray(ids, dtype=np.int64)[
                rng.integers(0, len(ids), size=(16, 2))]
            for measure in sorted(SET_MEASURES):
                np.testing.assert_array_equal(
                    piece_v3.similarity_pairs(pairs, measure),
                    piece_v2.similarity_pairs(pairs, measure))

    def test_journal_then_compaction_roundtrip(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles,
                                          disk_model="instant",
                                          segment_bounds=[0, 40, 80, 120],
                                          journal_limit=3)
        expected = {u: sparse_profiles.get(u)
                    for u in range(sparse_profiles.num_users)}
        rng = np.random.default_rng(5)
        for round_index in range(6):
            users = rng.integers(0, 120, size=2)
            changes = []
            for user in users.tolist():
                item = int(rng.integers(0, 500))
                changes.append(ProfileChange(user=user, kind="add", item=item))
                expected[user] = expected[user] | {item}
            store.apply_changes(changes)
        reloaded = store.load_all()
        for user, items in expected.items():
            assert reloaded.get(user) == items
        # scattered loads cross segments and journal entries alike
        piece = store.load_users([0, 39, 40, 41, 119])
        for user in (0, 39, 40, 41, 119):
            assert piece.get(user) == expected[user]

    def test_partition_aligned_bounds_match_contiguous_split(self):
        # partition of vertex v is v*m//n; bounds must hit every boundary
        n, m = 103, 8
        bounds = partition_aligned_bounds(n, m)
        assignment = np.arange(n) * m // n
        starts = [0] + list(np.flatnonzero(np.diff(assignment)) + 1)
        assert bounds == sorted(set(starts) | {n})

    def test_generation_bumps_on_every_update(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles,
                                          disk_model="instant")
        first = store.generation
        store.apply_changes([ProfileChange(user=0, kind="add", item=777)])
        second = store.generation
        assert second == first + 1
        # a re-opened handle (a worker) sees the bumped generation after reload
        worker = OnDiskProfileStore(tmp_path, disk_model="instant")
        assert worker.generation == second
        store.apply_changes([ProfileChange(user=1, kind="add", item=778)])
        assert worker.generation == second  # stale until told to reload
        worker.reload()
        assert worker.generation == second + 1
        assert 778 in worker.load_users([1]).get(1)


class TestUpdateWriteBytesScale:
    def test_sparse_writes_scale_with_touched_rows(self, tmp_path):
        profiles = SparseProfileStore([{i, i + 1, i + 2} for i in range(2000)])
        store = OnDiskProfileStore.create(tmp_path, profiles, disk_model="ssd")
        store_bytes = sum(path.stat().st_size
                          for path in tmp_path.glob("profiles_seg_*.bin"))
        store.io_stats.reset()
        store.apply_changes([ProfileChange(user=u, kind="add", item=9000 + u)
                             for u in range(5)])
        written = store.io_stats.bytes_written
        assert written > 0
        # five touched rows of ~4 items: orders of magnitude below the store
        assert written < store_bytes / 10
        # ten times the touched rows stays linear-ish, never store-sized
        store.io_stats.reset()
        store.apply_changes([ProfileChange(user=u, kind="add", item=9500 + u)
                             for u in range(50)])
        assert store.io_stats.bytes_written < store_bytes / 2

    def test_dense_negative_user_rejected(self, dense_profiles, tmp_path):
        """A negative id must raise, not wrap onto another user's mapped row."""
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        last_row = np.array(store.load_users([dense_profiles.num_users - 1])
                            .get(dense_profiles.num_users - 1))
        with pytest.raises(IndexError):
            store.apply_changes([ProfileChange(
                user=-1, kind="set",
                vector=np.zeros(dense_profiles.dim))])
        np.testing.assert_array_equal(
            store.load_users([dense_profiles.num_users - 1])
            .get(dense_profiles.num_users - 1), last_row)

    def test_dense_writes_coalesce_superseded_changes(self, dense_profiles,
                                                      tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="ssd")
        store.io_stats.reset()
        vectors = [np.full(dense_profiles.dim, float(i)) for i in range(10)]
        touched = store.apply_changes(
            [ProfileChange(user=3, kind="set", vector=v) for v in vectors])
        assert touched == 1
        # only the last write of the user's row hits the device
        assert store.io_stats.write_ops == 1
        assert np.allclose(store.load_users([3]).get(3), vectors[-1])


class TestMultiBlockDenseSlices:
    def test_merge_allocates_no_matrix(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        a = store.load_users(range(0, 40))
        b = store.load_users(range(40, 90))
        merged = a.merge(b)
        assert merged.matrix is None                      # nothing materialised
        blocks = merged.matrix_blocks
        assert blocks is not None and len(blocks) == 2
        assert blocks[0] is a.matrix and blocks[1] is b.matrix
        assert np.shares_memory(blocks[0], a.matrix)
        assert merged.users == set(range(90))

    def test_merged_scores_match_copying_merge(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        merged = store.load_users(range(0, 60)).merge(
            store.load_users(range(60, 120)))
        whole = store.load_users(range(120))
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, 120, size=(300, 2)).astype(np.int64)
        for measure in sorted(VECTOR_MEASURES):
            np.testing.assert_array_equal(
                merged.similarity_pairs(pairs, measure),
                whole.similarity_pairs(pairs, measure))

    def test_interleaved_blocks_resolve_rows(self, dense_profiles, tmp_path):
        """Scattered (hash-partition shaped) blocks interleave user ids."""
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        evens = store.load_users(range(0, 60, 2))
        odds = store.load_users(range(1, 60, 2))
        merged = evens.merge(odds)
        assert merged.matrix is None
        for user in range(60):
            np.testing.assert_array_equal(merged.get(user),
                                          dense_profiles.get(user))

    def test_overlapping_merge_falls_back_to_copy(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        a = store.load_users(range(0, 30))
        b = store.load_users(range(20, 50))
        merged = a.merge(b)
        assert merged.matrix is not None                  # copy path
        assert merged.users == set(range(50))
        for user in range(50):
            np.testing.assert_array_equal(merged.get(user),
                                          dense_profiles.get(user))

    def test_three_way_merge_chains_blocks(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        merged = (store.load_users(range(0, 30))
                  .merge(store.load_users(range(30, 60)))
                  .merge(store.load_users(range(60, 90))))
        assert merged.matrix is None
        assert len(merged.matrix_blocks) == 3
        pairs = np.array([[0, 89], [31, 59], [5, 65]], dtype=np.int64)
        whole = store.load_users(range(90))
        np.testing.assert_array_equal(merged.similarity_pairs(pairs, "cosine"),
                                      whole.similarity_pairs(pairs, "cosine"))
