"""Tests for repro.core.engine (the public KNNEngine)."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import (
    ProfileChange,
    generate_dense_profiles,
    generate_profile_churn,
    generate_sparse_profiles,
)


@pytest.fixture(scope="module")
def profiles():
    return generate_dense_profiles(180, dim=8, num_communities=5, noise=0.2, seed=41)


class TestConstruction:
    def test_rejects_too_few_users(self):
        small = generate_dense_profiles(8, dim=4, seed=1)
        with pytest.raises(ValueError, match="more users than neighbours"):
            KNNEngine(small, EngineConfig(k=10))

    def test_rejects_too_many_partitions(self, profiles):
        with pytest.raises(ValueError, match="num_partitions"):
            KNNEngine(profiles, EngineConfig(k=5, num_partitions=1000))

    def test_rejects_mismatched_initial_graph(self, profiles):
        with pytest.raises(ValueError, match="initial_graph"):
            KNNEngine(profiles, EngineConfig(k=5),
                      initial_graph=KNNGraph.random(20, 5, seed=1))

    def test_default_config_used_when_none(self, profiles):
        with KNNEngine(profiles) as engine:
            assert engine.config.k == 10

    def test_workdir_cleanup_when_owned(self, profiles):
        engine = KNNEngine(profiles, EngineConfig(k=5, num_partitions=4))
        workdir = engine.workdir
        assert workdir.exists()
        engine.close()
        assert not workdir.exists()

    def test_user_workdir_preserved(self, profiles, tmp_path):
        engine = KNNEngine(profiles, EngineConfig(k=5, num_partitions=4), workdir=tmp_path)
        engine.close()
        assert tmp_path.exists()

    def test_closed_engine_refuses_to_run(self, profiles):
        engine = KNNEngine(profiles, EngineConfig(k=5, num_partitions=4))
        engine.close()
        with pytest.raises(RuntimeError):
            engine.run_iteration()
        engine.close()   # idempotent


class TestExecution:
    def test_single_iteration_advances_graph(self, profiles):
        config = EngineConfig(k=6, num_partitions=4, seed=3)
        with KNNEngine(profiles, config) as engine:
            before = engine.graph.copy()
            result = engine.run_iteration()
            assert engine.iterations_run == 1
            assert engine.graph is result.graph
            assert result.graph.edge_difference(before) > 0

    def test_recall_improves_and_convergence_tracked(self, profiles):
        exact = brute_force_knn(profiles, 6, measure="cosine")
        config = EngineConfig(k=6, num_partitions=4, heuristic="degree-low-high", seed=4)
        with KNNEngine(profiles, config) as engine:
            run = engine.run(num_iterations=4, exact_graph=exact)
        assert run.num_iterations == 4
        assert run.convergence.recalls[-1] > run.convergence.recalls[0]
        assert run.convergence.recalls[-1] > 0.6
        assert run.total_similarity_evaluations > 0
        assert run.total_load_unload_operations > 0

    def test_early_stop_on_convergence(self, profiles):
        config = EngineConfig(k=6, num_partitions=4, seed=5)
        with KNNEngine(profiles, config) as engine:
            run = engine.run(num_iterations=20, convergence_threshold=0.05)
        assert run.num_iterations < 20
        assert run.convergence.converged

    def test_deterministic_given_seed(self, profiles):
        config = EngineConfig(k=5, num_partitions=4, seed=6)
        with KNNEngine(profiles, config) as a, KNNEngine(profiles, config) as b:
            graph_a = a.run(num_iterations=2).final_graph
            graph_b = b.run(num_iterations=2).final_graph
        assert graph_a.edge_difference(graph_b) == 0

    def test_run_summary_keys(self, profiles):
        config = EngineConfig(k=5, num_partitions=4, seed=7)
        with KNNEngine(profiles, config) as engine:
            summary = engine.run(num_iterations=1).summary()
        for key in ("num_iterations", "total_similarity_evaluations",
                    "total_load_unload_operations", "phase_seconds", "change_rates"):
            assert key in summary

    def test_invalid_iteration_count(self, profiles):
        with KNNEngine(profiles, EngineConfig(k=5, num_partitions=4)) as engine:
            with pytest.raises(ValueError):
                engine.run(num_iterations=0)

    def test_multithreaded_matches_single_thread(self, profiles):
        base = EngineConfig(k=5, num_partitions=4, seed=8)
        with KNNEngine(profiles, base) as single:
            graph_single = single.run(num_iterations=2).final_graph
        with KNNEngine(profiles, base.with_overrides(num_threads=4)) as multi:
            graph_multi = multi.run(num_iterations=2).final_graph
        assert graph_single.edge_difference(graph_multi) == 0


class TestDynamicProfiles:
    def test_enqueued_changes_applied(self):
        profiles = generate_sparse_profiles(100, 400, items_per_user=12, seed=9)
        config = EngineConfig(k=5, num_partitions=4, seed=9)
        with KNNEngine(profiles, config) as engine:
            engine.enqueue_profile_change(ProfileChange(user=0, kind="add", item=399))
            result = engine.run_iteration()
            assert result.profile_updates_applied == 1
            assert 399 in engine.profile_store.load_users([0]).get(0)

    def test_profile_change_feed(self, profiles):
        config = EngineConfig(k=5, num_partitions=4, seed=10)
        seen_iterations = []

        def feed(iteration):
            seen_iterations.append(iteration)
            return generate_profile_churn(profiles, change_fraction=0.05, seed=iteration)

        with KNNEngine(profiles, config) as engine:
            run = engine.run(num_iterations=3, profile_change_feed=feed)
        assert seen_iterations == [0, 1, 2]
        assert sum(r.profile_updates_applied for r in run.iterations) > 0

    def test_changing_profiles_change_the_result(self, profiles):
        config = EngineConfig(k=5, num_partitions=4, seed=11)
        with KNNEngine(profiles, config) as static_engine:
            static = static_engine.run(num_iterations=3).final_graph
        rng = np.random.default_rng(0)

        def feed(iteration):
            return [ProfileChange(user=int(u), kind="set",
                                  vector=rng.normal(size=profiles.dim))
                    for u in rng.choice(profiles.num_users, size=20, replace=False)]

        with KNNEngine(profiles, config) as dynamic_engine:
            dynamic = dynamic_engine.run(num_iterations=3, profile_change_feed=feed).final_graph
        assert static.edge_difference(dynamic) > 0
