"""Tests for repro.testing.faults — the deterministic fault-injection layer.

The plan itself must be exact (a fault fires at the scheduled occurrence and
never again), schedulable from a seed, and safe to embed in an
:class:`EngineConfig` (which is deep-copied by ``dataclasses.asdict``).  The
integration half pins the hook sites: stores and checkpoints consult the
plan around their durability-relevant file operations.
"""

from __future__ import annotations

import copy
from dataclasses import replace

import pytest

from repro.core.checkpoint import clone_profile_files
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.similarity.workloads import generate_dense_profiles
from repro.storage.profile_store import OnDiskProfileStore
from repro.testing import FaultPlan, InjectedCrash, InjectedIOError


class TestFaultPlanScheduling:
    def test_crash_fires_at_exact_occurrence(self):
        plan = FaultPlan().crash_at("p", occurrence=3)
        plan.point("p")
        plan.point("p")
        with pytest.raises(InjectedCrash) as exc:
            plan.point("p")
        assert exc.value.point == "p"
        assert exc.value.occurrence == 3
        # one-shot: the occurrence is consumed
        plan.point("p")

    def test_unscheduled_points_are_free(self):
        plan = FaultPlan().crash_at("p", occurrence=1)
        for _ in range(10):
            plan.point("q")
        assert plan.hits("q") == 10

    def test_fired_log_records_what_happened(self):
        plan = FaultPlan().crash_at("p", occurrence=1)
        with pytest.raises(InjectedCrash):
            plan.point("p")
        assert "crash" in plan.fired_kinds()

    def test_file_op_failure_matches_substring(self):
        plan = FaultPlan().fail_file_op("write", match="dense", occurrence=1)
        plan.file_op("write", "/tmp/other.bin")  # no match, no fault
        with pytest.raises(InjectedIOError) as exc:
            plan.file_op("write", "/tmp/dense.bin")
        assert exc.value.op == "write"
        # OSError subclass: production except-OSError fallbacks engage
        assert isinstance(exc.value, OSError)

    def test_truncation_rewrites_the_file_tail(self, tmp_path):
        victim = tmp_path / "segment.bin"
        victim.write_bytes(b"x" * 100)
        plan = FaultPlan().truncate_file("write", match="segment",
                                         keep_bytes=10, occurrence=1)
        plan.after_file_op("write", victim)
        assert victim.stat().st_size == 10

    def test_worker_faults_pop_per_call(self):
        plan = FaultPlan().kill_worker(call=2, shard=1)
        assert plan.take_worker_fault() is None     # call 1
        fault = plan.take_worker_fault()            # call 2
        assert fault is not None and fault[0] == "kill" and fault[1] == 1
        assert plan.take_worker_fault() is None     # call 3

    def test_seeded_random_points_are_deterministic(self):
        points = ["a", "b", "c", "d"]
        first = FaultPlan(seed=5).crash_at_random(points, count=3,
                                                  max_occurrence=4)
        second = FaultPlan(seed=5).crash_at_random(points, count=3,
                                                   max_occurrence=4)
        assert first.scheduled_crashes() == second.scheduled_crashes()

    def test_plan_survives_config_copying(self):
        # EngineConfig round-trips through dataclasses.replace/asdict, both
        # of which deep-copy field values; the plan must stay ONE shared
        # mutable object or hit counters silently fork
        plan = FaultPlan().crash_at("p", occurrence=1)
        config = EngineConfig(fault_plan=plan)
        clone = replace(config, k=7)
        assert clone.fault_plan is plan
        assert copy.deepcopy(plan) is plan


class TestFaultHooksInStores:
    def test_injected_write_failure_surfaces_from_profile_store(self, tmp_path):
        # the segmented sparse apply path journals through real file
        # appends (the dense path mutates an mmap in place, no file op)
        from repro.similarity.workloads import (ProfileChange,
                                                generate_sparse_profiles)
        profiles = generate_sparse_profiles(30, 60, items_per_user=5, seed=1)
        store = OnDiskProfileStore.create(tmp_path / "s", profiles,
                                          disk_model="instant")
        store.fault_plan = FaultPlan().fail_file_op("write", occurrence=1)
        with pytest.raises(InjectedIOError):
            store.apply_changes([ProfileChange(user=0, kind="add", item=59)])

    def test_injected_link_failure_falls_back_to_copy(self, tmp_path):
        # hard-linking can legitimately fail (cross-filesystem dest); the
        # clone must transparently copy instead — injection proves the
        # fallback path is live, not dead code
        profiles = generate_dense_profiles(30, dim=4, seed=1)
        store = OnDiskProfileStore.create(tmp_path / "src", profiles,
                                          disk_model="instant")
        plan = FaultPlan().fail_file_op("link", occurrence=1)
        stats = clone_profile_files(store.base_dir, tmp_path / "dst",
                                    fault_plan=plan)
        assert stats.copied_files >= 1
        clone = OnDiskProfileStore(tmp_path / "dst", disk_model="instant")
        assert clone.num_users == 30

    def test_engine_wires_the_plan_into_both_stores(self, tmp_path):
        plan = FaultPlan()
        profiles = generate_dense_profiles(30, dim=4, seed=1)
        config = EngineConfig(k=4, num_partitions=2, fault_plan=plan)
        with KNNEngine(profiles, config, workdir=tmp_path / "w") as engine:
            assert engine.profile_store.fault_plan is plan
            assert engine._partition_store.fault_plan is plan

    def test_crash_point_aborts_an_engine_run(self, tmp_path):
        plan = FaultPlan().crash_at("iteration.begin", occurrence=2)
        profiles = generate_dense_profiles(30, dim=4, seed=1)
        config = EngineConfig(k=4, num_partitions=2, fault_plan=plan)
        with KNNEngine(profiles, config, workdir=tmp_path / "w") as engine:
            engine.run_iteration()
            with pytest.raises(InjectedCrash):
                engine.run_iteration()
            assert engine.iterations_run == 1
