"""The crash matrix: kill → recover → finish must equal never-crashed.

For every named crash point — spanning phase-4 scoring, phase-5 update
application, WAL appends, store writes and each stage of the commit
protocol — a durable run is crashed mid-flight by an injected
:class:`InjectedCrash`, recovered with :meth:`KNNEngine.recover`, and run
to completion.  Across all three scoring backends the final graph's
``edge_fingerprint`` and the final profile bytes must match an
uninterrupted run exactly: no update lost, none applied twice, and no
shared-memory segment leaked along the way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine, _scan_commit_epochs
from repro.core.parallel import active_shared_row_indexes, fork_available
from repro.similarity.workloads import ProfileChange, generate_dense_profiles
from repro.testing import FaultPlan, InjectedCrash

NUM_USERS = 50
NUM_ITERATIONS = 4
DIM = 8

#: Every named crash point of the runtime, in rough execution order.  The
#: CI fault-injection step greps for this list — renaming a point without
#: updating its hook site breaks the matrix loudly, not silently.
CRASH_POINTS = [
    "iteration.begin",
    "phase4.step",
    "phase4.done",
    "wal.appended",
    "phase5.before_apply",
    "store.dense_rows_written",
    "commit.begin",
    "commit.before_rename",
    "commit.committed",
    "commit.before_wal_truncate",
    "commit.done",
]

BACKENDS = ["serial", "thread", "process"]


def _profiles():
    return generate_dense_profiles(NUM_USERS, dim=DIM, num_communities=3,
                                   seed=1)


def _config(backend, **overrides):
    return EngineConfig(k=5, num_partitions=4, seed=7, backend=backend,
                        num_workers=2, **overrides)


def _once_feed():
    """A stateful change feed: each iteration's batch is produced once ever.

    Models the real-world producer that does not replay its stream after a
    consumer crash — recovering those changes is the WAL's job, and a feed
    that silently re-fed them would mask double-application bugs.
    """
    fed = set()

    def feed(iteration):
        if iteration in fed or iteration not in (1, 2):
            return []
        fed.add(iteration)
        rng = np.random.default_rng(100 + iteration)
        return [ProfileChange(user=int(u), kind="set",
                              vector=rng.random(DIM))
                for u in rng.choice(NUM_USERS, size=3, replace=False)]

    return feed


@pytest.fixture(scope="module")
def reference():
    """Fingerprint + final profile bytes of an uninterrupted serial run."""
    with KNNEngine(_profiles(), _config("serial")) as engine:
        engine.run(NUM_ITERATIONS, profile_change_feed=_once_feed())
        fingerprint = engine.graph.edge_fingerprint()
        dense = (engine.profile_store.base_dir / "profiles_dense.bin").read_bytes()
    return fingerprint, dense


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_recover_finish_matches_uninterrupted(point, backend, tmp_path,
                                                    reference):
    if backend == "process" and not fork_available():
        pytest.skip("process backend needs fork")
    ref_fingerprint, ref_dense = reference
    workdir = tmp_path / "work"
    plan = FaultPlan().crash_at(point, occurrence=2)
    feed = _once_feed()
    engine = KNNEngine(_profiles(),
                       _config(backend, durable=True, fault_plan=plan),
                       workdir=workdir)
    try:
        with pytest.raises(InjectedCrash):
            engine.run(NUM_ITERATIONS, profile_change_feed=feed)
    finally:
        engine.close()
    assert "crash" in plan.fired_kinds()

    recovered = KNNEngine.recover(workdir)
    try:
        remaining = NUM_ITERATIONS - recovered.iterations_run
        assert remaining > 0
        recovered.run(remaining, profile_change_feed=feed)
        assert recovered.iterations_run == NUM_ITERATIONS
        assert recovered.graph.edge_fingerprint() == ref_fingerprint
        # zero lost and zero double-applied updates: the profile matrix is
        # byte-identical to the uninterrupted run's
        dense = (recovered.profile_store.base_dir
                 / "profiles_dense.bin").read_bytes()
        assert dense == ref_dense
        # the store the run finished on passes its own checksums
        assert recovered.profile_store.verify_checksums() == []
        # commit GC holds: at most the two newest epochs survive
        assert len(_scan_commit_epochs(recovered.commits_dir)) <= 2
    finally:
        recovered.close()
    # no shared-memory row-index segments leaked across the crash
    assert active_shared_row_indexes() == []


def test_sparse_journal_crash_recovers_to_uninterrupted_twin(tmp_path):
    """Crash in the v3 journal window: rows appended, generation not bumped.

    ``store.journal_appended`` only fires on the segmented sparse apply
    path (the dense matrix mutates an mmap in place), so the dense matrix
    above can never exercise it — this test is its sparse twin.
    """
    from repro.similarity.workloads import generate_sparse_profiles

    def sparse_profiles():
        return generate_sparse_profiles(40, 120, items_per_user=6,
                                        num_communities=3, seed=3)

    def sparse_feed():
        fed = set()

        def feed(iteration):
            if iteration in fed or iteration not in (1, 2):
                return []
            fed.add(iteration)
            rng = np.random.default_rng(200 + iteration)
            return [ProfileChange(user=int(u), kind="add",
                                  item=int(rng.integers(0, 120)))
                    for u in rng.choice(40, size=3, replace=False)]

        return feed

    with KNNEngine(sparse_profiles(), _config("serial")) as clean:
        clean.run(NUM_ITERATIONS, profile_change_feed=sparse_feed())
        ref_fingerprint = clean.graph.edge_fingerprint()
        clean_slice = clean.profile_store.load_users(range(40))
        ref_rows = {u: set(clean_slice.get(u)) for u in range(40)}

    workdir = tmp_path / "work"
    plan = FaultPlan().crash_at("store.journal_appended", occurrence=1)
    feed = sparse_feed()
    engine = KNNEngine(sparse_profiles(),
                       _config("serial", durable=True, fault_plan=plan),
                       workdir=workdir)
    try:
        with pytest.raises(InjectedCrash):
            engine.run(NUM_ITERATIONS, profile_change_feed=feed)
    finally:
        engine.close()
    assert "crash" in plan.fired_kinds()

    recovered = KNNEngine.recover(workdir)
    try:
        recovered.run(NUM_ITERATIONS - recovered.iterations_run,
                      profile_change_feed=feed)
        assert recovered.iterations_run == NUM_ITERATIONS
        assert recovered.graph.edge_fingerprint() == ref_fingerprint
        got_slice = recovered.profile_store.load_users(range(40))
        assert {u: set(got_slice.get(u)) for u in range(40)} == ref_rows
        assert recovered.profile_store.verify_checksums() == []
    finally:
        recovered.close()


def test_random_crash_sweep_is_recoverable(tmp_path):
    """Seeded random multi-crash schedule: crash, recover, crash again."""
    plan = FaultPlan(seed=17).crash_at_random(CRASH_POINTS[:6], count=2,
                                              max_occurrence=3)
    workdir = tmp_path / "work"
    feed = _once_feed()
    engine = KNNEngine(_profiles(),
                       _config("serial", durable=True, fault_plan=plan),
                       workdir=workdir)
    completed = 0
    try:
        engine.run(NUM_ITERATIONS, profile_change_feed=feed)
        completed = engine.iterations_run
    except InjectedCrash:
        pass
    finally:
        engine.close()
    attempts = 0
    while completed < NUM_ITERATIONS:
        attempts += 1
        assert attempts <= 10
        engine = KNNEngine.recover(workdir)
        try:
            engine.run(NUM_ITERATIONS - engine.iterations_run,
                       profile_change_feed=feed)
            completed = engine.iterations_run
        except InjectedCrash:
            completed = 0
        finally:
            engine.close()
    with KNNEngine(_profiles(), _config("serial")) as clean:
        clean.run(NUM_ITERATIONS, profile_change_feed=_once_feed())
        assert engine.graph.edge_fingerprint() == clean.graph.edge_fingerprint()


def test_recover_refuses_a_workdir_without_commits(tmp_path):
    with pytest.raises(FileNotFoundError):
        KNNEngine.recover(tmp_path)


def test_recover_falls_back_when_newest_epoch_is_corrupt(tmp_path):
    workdir = tmp_path / "work"
    engine = KNNEngine(_profiles(), _config("serial", durable=True),
                       workdir=workdir)
    engine.run(2)
    engine.close()
    epochs = _scan_commit_epochs(workdir / "commits")
    assert len(epochs) == 2
    newest = epochs[-1][1]
    victim = newest / "checkpoint.json"
    victim.write_text(victim.read_text() + " ")  # CRC now mismatches
    recovered = KNNEngine.recover(workdir)
    try:
        # fell back one epoch and can still finish the run
        assert recovered.iterations_run == epochs[-2][0]
        recovered.run(2 - recovered.iterations_run)
        assert recovered.iterations_run == 2
    finally:
        recovered.close()
