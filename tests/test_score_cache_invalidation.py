"""Cache-invalidation edges of the incremental phase 4.

Every situation in which the profile store cannot vouch for the row deltas
since the cached generation must cost **exactly one** full rescore — never
a stale reuse, and never a permanent fallback to full rescoring:

* ``reload()`` after an external rewrite of the store files,
* the generation rollover after a journal compaction folds the sparse
  row-remap journal into the segments,
* and the ``backend="process"``/``num_workers=1`` pool-skip path, whose
  only full rescore is the cold first iteration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.iteration import OutOfCoreIteration
from repro.core.engine import KNNEngine
from repro.core.update_queue import ProfileUpdateQueue
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore

NUM_USERS = 100


def _runner(tmp_path, profiles, journal_limit=None, **config_kwargs):
    config = EngineConfig(k=5, num_partitions=4, seed=3, **config_kwargs)
    profile_store = OnDiskProfileStore.create(
        tmp_path / "profiles", profiles, disk_model=config.disk_model,
        journal_limit=journal_limit)
    partition_store = PartitionStore(tmp_path / "partitions",
                                     disk_model=config.disk_model)
    return (OutOfCoreIteration(config, partition_store, profile_store),
            profile_store)


def _queue(changes):
    queue = ProfileUpdateQueue()
    queue.enqueue_many(changes)
    return queue


def _sparse_changes(users, seed=0):
    rng = np.random.default_rng(seed)
    return [ProfileChange(user=int(u), kind="add",
                          item=int(rng.integers(0, 500))) for u in users]


class TestReloadForcesOneFullRescore:
    def test_reload_after_external_rewrite(self, tmp_path):
        profiles = generate_sparse_profiles(NUM_USERS, 300, items_per_user=10,
                                            seed=5)
        runner, store = _runner(tmp_path, profiles)
        graph = KNNGraph.random(NUM_USERS, 5, seed=5)
        first = runner.run(0, graph)
        warm = runner.run(1, first.graph)
        assert warm.full_rescore is False and warm.reused_scores > 0

        # another handle rewrites the files underneath; this handle reloads
        external = OnDiskProfileStore(store.base_dir)
        external.apply_changes(_sparse_changes([1, 2, 3]))
        store.reload()

        cold = runner.run(2, warm.graph)
        assert cold.full_rescore is True
        assert cold.reused_scores == 0
        assert cold.rescored_tuples == cold.num_candidate_tuples
        # exactly once: the next iteration is incremental again
        recovered = runner.run(3, cold.graph)
        assert recovered.full_rescore is False
        assert recovered.reused_scores > 0

    def test_reload_parity_with_never_cached_run(self, tmp_path):
        """The reload-triggered rescore must also be *correct* (it sees the
        externally rewritten profiles, not the cached pre-rewrite scores)."""
        profiles = generate_sparse_profiles(NUM_USERS, 300, items_per_user=10,
                                            seed=5)
        runner, store = _runner(tmp_path, profiles)
        graph = KNNGraph.random(NUM_USERS, 5, seed=5)
        second = runner.run(1, runner.run(0, graph).graph)
        external = OnDiskProfileStore(store.base_dir)
        external.apply_changes(_sparse_changes(range(20), seed=9))
        store.reload()
        incremental_result = runner.run(2, second.graph)

        fresh_runner, fresh_store = _runner(tmp_path / "fresh", profiles,
                                            incremental_phase4=False)
        fresh_store.apply_changes(_sparse_changes(range(20), seed=9))
        oracle = fresh_runner.run(2, second.graph)
        assert (incremental_result.graph.edge_fingerprint()
                == oracle.graph.edge_fingerprint())


class TestCompactionForcesOneFullRescore:
    def test_journal_compaction_rolls_the_generation(self, tmp_path):
        profiles = generate_sparse_profiles(NUM_USERS, 300, items_per_user=10,
                                            seed=7)
        # journal_limit=5: the 8-user batch in iteration 1 forces compaction
        runner, store = _runner(tmp_path, profiles, journal_limit=5)
        graph = KNNGraph.random(NUM_USERS, 5, seed=7)

        first = runner.run(0, graph, update_queue=_queue(
            _sparse_changes([1, 2], seed=1)))                  # no compaction
        warm = runner.run(1, first.graph, update_queue=_queue(
            _sparse_changes(range(10, 18), seed=2)))           # compacts
        assert warm.full_rescore is False                      # pre-compaction deltas were fine
        assert warm.reused_scores > 0

        cold = runner.run(2, warm.graph)
        assert cold.full_rescore is True                       # rollover: exactly one
        assert cold.reused_scores == 0
        recovered = runner.run(3, cold.graph)
        assert recovered.full_rescore is False
        assert recovered.reused_scores > 0

    def test_compaction_during_engine_run_stays_bit_identical(self, tmp_path):
        profiles = generate_sparse_profiles(NUM_USERS, 300, items_per_user=10,
                                            seed=11)
        fingerprints = {}
        for incremental in (True, False):
            runner, _ = _runner(tmp_path / f"inc-{incremental}", profiles,
                                journal_limit=4,
                                incremental_phase4=incremental)
            graph = KNNGraph.random(NUM_USERS, 5, seed=11)
            fps = []
            for iteration in range(4):
                result = runner.run(iteration, graph, update_queue=_queue(
                    _sparse_changes(range(iteration * 7, iteration * 7 + 7),
                                    seed=iteration)))
                graph = result.graph
                fps.append(graph.edge_fingerprint())
            fingerprints[incremental] = fps
        assert fingerprints[True] == fingerprints[False]


class TestPoolSkipPath:
    def test_single_worker_pool_skip_rescoring_once(self, tmp_path):
        """backend='process' with num_workers=1 skips the pool but must keep
        the cache: exactly one full rescore (the cold start), then reuse."""
        profiles = generate_dense_profiles(NUM_USERS, dim=6, num_communities=3,
                                           seed=13)
        runner, _ = _runner(tmp_path, profiles, backend="process",
                            num_workers=1)
        assert runner._scoring_pool() is None                  # pool skipped
        graph = KNNGraph.random(NUM_USERS, 5, seed=13)
        results = []
        for iteration in range(3):
            result = runner.run(iteration, graph)
            graph = result.graph
            results.append(result)
        assert [r.full_rescore for r in results] == [True, False, False]
        assert results[0].reused_scores == 0
        assert all(r.reused_scores > 0 for r in results[1:])

    def test_pool_skip_matches_serial_with_cache_on(self):
        profiles = generate_dense_profiles(NUM_USERS, dim=6, num_communities=3,
                                           seed=13)
        rng_feed = lambda seed: _feed_dense(seed)
        fingerprints = {}
        for backend, workers in (("serial", 1), ("process", 1)):
            config = EngineConfig(k=5, num_partitions=4, seed=13,
                                  backend=backend, num_workers=workers)
            with KNNEngine(profiles, config) as engine:
                run = engine.run(num_iterations=3,
                                 profile_change_feed=rng_feed(21))
            fingerprints[backend] = [r.graph.edge_fingerprint()
                                     for r in run.iterations]
        assert fingerprints["serial"] == fingerprints["process"]


def _feed_dense(seed):
    rng = np.random.default_rng(seed)

    def feed(_iteration):
        users = rng.choice(NUM_USERS, size=6, replace=False)
        return [ProfileChange(user=int(u), kind="set", vector=rng.random(6))
                for u in users]

    return feed


class TestDeltaLogBoundary:
    """Both edges of the touched-row delta-log window, pinned exactly.

    After ``_DELTA_LOG_LIMIT`` evictions the floor sits at the generation
    of the newest *dropped* entry: a query at exactly the floor is still
    answerable in full (the dropped batch described changes *up to* the
    floor, which "since the floor" does not need), one generation below it
    is not, and a future generation never is.
    """

    def _store_with_batches(self, tmp_path, num_batches):
        from repro.storage.profile_store import _DELTA_LOG_LIMIT  # noqa: F401
        profiles = generate_dense_profiles(80, dim=4, seed=31)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles)
        assert store.generation == 0
        touched_by_generation = {}
        rng = np.random.default_rng(2)
        for index in range(num_batches):
            users = sorted({int(u) for u in rng.integers(0, 80, size=3)})
            store.apply_changes([ProfileChange(user=u, kind="set",
                                               vector=rng.random(4))
                                 for u in users])
            # batch i bumps the generation to i+1 and is recorded under it
            assert store.generation == index + 1
            touched_by_generation[index + 1] = set(users)
        return store, touched_by_generation

    def _expected_since(self, touched_by_generation, generation):
        rows = set()
        for gen, users in touched_by_generation.items():
            if gen > generation:
                rows |= users
        return sorted(rows)

    def test_exactly_at_the_floor_after_evictions(self, tmp_path):
        from repro.storage.profile_store import _DELTA_LOG_LIMIT
        num_batches = _DELTA_LOG_LIMIT + 6
        store, touched = self._store_with_batches(tmp_path, num_batches)
        floor = num_batches - _DELTA_LOG_LIMIT   # generation of newest dropped
        assert store._delta_floor == floor
        answer = store.touched_rows_since(floor)
        assert answer is not None
        assert answer.tolist() == self._expected_since(touched, floor)

    def test_one_below_the_floor_is_unknown(self, tmp_path):
        from repro.storage.profile_store import _DELTA_LOG_LIMIT
        num_batches = _DELTA_LOG_LIMIT + 6
        store, _ = self._store_with_batches(tmp_path, num_batches)
        floor = num_batches - _DELTA_LOG_LIMIT
        assert store.touched_rows_since(floor - 1) is None
        assert store.touched_rows_since(0) is None

    def test_future_generation_is_unknown_current_is_empty(self, tmp_path):
        store, _ = self._store_with_batches(tmp_path, 3)
        current = store.generation
        # nothing changed since *now*
        assert store.touched_rows_since(current).tolist() == []
        # a generation this store has not reached yet cannot be vouched for
        assert store.touched_rows_since(current + 1) is None

    def test_window_interior_is_exact_without_evictions(self, tmp_path):
        store, touched = self._store_with_batches(tmp_path, 5)
        for generation in range(0, 6):
            answer = store.touched_rows_since(generation)
            assert answer is not None
            assert answer.tolist() == self._expected_since(touched, generation)

    def test_fresh_handle_floor_is_the_open_generation(self, tmp_path):
        """Opening a store by path starts an empty history anchored at the
        current generation: that generation answers 'nothing changed', one
        before it answers 'unknown'."""
        store, _ = self._store_with_batches(tmp_path, 3)
        reopened = OnDiskProfileStore(store.base_dir)
        assert reopened.generation == 3
        assert reopened.touched_rows_since(3).tolist() == []
        assert reopened.touched_rows_since(2) is None


class TestPartitionRollupBoundary(TestDeltaLogBoundary):
    """``touched_partitions_since`` at the same window edges, pinned exactly.

    The partition rollup inherits the row-level ``None`` contract verbatim
    — it must never widen "unknown" into "clean" — and where the rows *are*
    known it reports exactly the partitions holding a touched row under the
    caller-supplied assignment.  Reuses the delta-log harness so the two
    boundary suites stay pinned to the same generations.
    """

    #: 80 users spread over 5 partitions of 16 contiguous rows each.
    _ASSIGNMENT = np.repeat(np.arange(5, dtype=np.int64), 16)

    def _expected_partitions(self, touched_by_generation, generation):
        rows = self._expected_since(touched_by_generation, generation)
        return sorted({int(self._ASSIGNMENT[row]) for row in rows})

    def test_exactly_at_the_floor_after_evictions(self, tmp_path):
        from repro.storage.profile_store import _DELTA_LOG_LIMIT
        num_batches = _DELTA_LOG_LIMIT + 6
        store, touched = self._store_with_batches(tmp_path, num_batches)
        floor = num_batches - _DELTA_LOG_LIMIT
        answer = store.touched_partitions_since(floor, self._ASSIGNMENT)
        assert answer is not None
        assert answer.tolist() == self._expected_partitions(touched, floor)

    def test_one_below_the_floor_is_unknown(self, tmp_path):
        from repro.storage.profile_store import _DELTA_LOG_LIMIT
        num_batches = _DELTA_LOG_LIMIT + 6
        store, _ = self._store_with_batches(tmp_path, num_batches)
        floor = num_batches - _DELTA_LOG_LIMIT
        assert store.touched_partitions_since(floor - 1,
                                              self._ASSIGNMENT) is None
        assert store.touched_partitions_since(0, self._ASSIGNMENT) is None

    def test_future_generation_is_unknown_current_is_empty(self, tmp_path):
        store, _ = self._store_with_batches(tmp_path, 3)
        current = store.generation
        assert store.touched_partitions_since(
            current, self._ASSIGNMENT).tolist() == []
        assert store.touched_partitions_since(current + 1,
                                              self._ASSIGNMENT) is None

    def test_window_interior_is_exact_without_evictions(self, tmp_path):
        store, touched = self._store_with_batches(tmp_path, 5)
        for generation in range(0, 6):
            answer = store.touched_partitions_since(generation,
                                                    self._ASSIGNMENT)
            assert answer is not None
            assert answer.tolist() == self._expected_partitions(touched,
                                                                generation)

    def test_fresh_handle_floor_is_the_open_generation(self, tmp_path):
        store, _ = self._store_with_batches(tmp_path, 3)
        reopened = OnDiskProfileStore(store.base_dir)
        assert reopened.touched_partitions_since(
            3, self._ASSIGNMENT).tolist() == []
        assert reopened.touched_partitions_since(2, self._ASSIGNMENT) is None

    def test_wrong_length_assignment_is_rejected(self, tmp_path):
        """A stale assignment (wrong row count) raises — even when nothing
        changed, so repartitioned callers fail loudly, not intermittently."""
        store, _ = self._store_with_batches(tmp_path, 3)
        with pytest.raises(ValueError, match="partition_of maps"):
            store.touched_partitions_since(3, self._ASSIGNMENT[:-1])
        with pytest.raises(ValueError, match="partition_of maps"):
            store.touched_partitions_since(1, np.zeros(81, dtype=np.int64))


class TestToggleAndCapacity:
    def test_incremental_disabled_never_reuses(self, tmp_path):
        profiles = generate_dense_profiles(NUM_USERS, dim=6, seed=17)
        runner, _ = _runner(tmp_path, profiles, incremental_phase4=False)
        graph = KNNGraph.random(NUM_USERS, 5, seed=17)
        for iteration in range(3):
            result = runner.run(iteration, graph)
            graph = result.graph
            assert result.full_rescore is True
            assert result.reused_scores == 0
            assert result.rescored_tuples == result.num_candidate_tuples
        assert runner.score_cache.keys is None

    def test_tiny_capacity_forces_full_rescore_every_iteration(self, tmp_path):
        profiles = generate_dense_profiles(NUM_USERS, dim=6, seed=19)
        runner, _ = _runner(tmp_path, profiles, score_cache_entries=10)
        graph = KNNGraph.random(NUM_USERS, 5, seed=19)
        for iteration in range(3):
            result = runner.run(iteration, graph)
            graph = result.graph
            assert result.full_rescore is True
            assert result.reused_scores == 0
        assert runner.score_cache.evictions >= 3

    def test_restored_cache_over_capacity_is_dropped(self, tmp_path):
        """Adopting a checkpoint cache must honour this run's capacity."""
        from repro.core.iteration import Phase4ScoreCache
        profiles = generate_dense_profiles(NUM_USERS, dim=6, seed=29)
        runner, _ = _runner(tmp_path, profiles, score_cache_entries=4)
        big = Phase4ScoreCache(max_entries=1000)
        big.replace([np.arange(20, dtype=np.int64)], [np.zeros(20)],
                    "cosine", 0, NUM_USERS)
        runner.restore_score_cache(big)
        assert runner.score_cache.keys is None        # evicted at adoption
        assert runner.score_cache.max_entries == 4

    def test_capacity_does_not_change_results(self, tmp_path):
        profiles = generate_sparse_profiles(NUM_USERS, 300, items_per_user=10,
                                            seed=23)
        fingerprints = []
        for entries in (10, 4_000_000):
            runner, _ = _runner(tmp_path / f"cap-{entries}", profiles,
                                score_cache_entries=entries)
            graph = KNNGraph.random(NUM_USERS, 5, seed=23)
            fps = []
            for iteration in range(3):
                result = runner.run(iteration, graph, update_queue=_queue(
                    _sparse_changes([iteration, iteration + 1], seed=iteration)))
                graph = result.graph
                fps.append(graph.edge_fingerprint())
            fingerprints.append(fps)
        assert fingerprints[0] == fingerprints[1]
