"""Tests for repro.storage.io_stats."""

from repro.storage.io_stats import IOStats


class TestIOStats:
    def test_record_read_write(self):
        stats = IOStats()
        stats.record_read(100, 0.5)
        stats.record_write(200, 0.25)
        assert stats.read_ops == 1
        assert stats.write_ops == 1
        assert stats.bytes_read == 100
        assert stats.bytes_written == 200
        assert stats.total_bytes == 300
        assert stats.simulated_io_seconds == 0.75

    def test_partition_counters(self):
        stats = IOStats()
        stats.record_partition_load()
        stats.record_partition_load()
        stats.record_partition_unload()
        assert stats.partition_loads == 2
        assert stats.partition_unloads == 1
        assert stats.load_unload_operations == 3

    def test_merge(self):
        a, b = IOStats(), IOStats()
        a.record_read(10)
        b.record_write(20)
        b.record_partition_load()
        a.merge(b)
        assert a.bytes_read == 10
        assert a.bytes_written == 20
        assert a.partition_loads == 1

    def test_reset(self):
        stats = IOStats()
        stats.record_read(10, 1.0)
        stats.record_partition_load()
        stats.reset()
        assert stats.as_dict() == IOStats().as_dict()

    def test_as_dict_and_format(self):
        stats = IOStats()
        stats.record_read(10)
        data = stats.as_dict()
        assert data["read_ops"] == 1
        assert "bytes_read" in stats.format_table()
