"""Tests for repro.similarity.measures."""

import numpy as np
import pytest

from repro.similarity.measures import (
    MEASURES,
    SET_MEASURES,
    VECTOR_MEASURES,
    adjusted_cosine_similarity,
    common_items,
    cosine_set_similarity,
    cosine_similarity,
    cosine_similarity_batch,
    euclidean_similarity,
    euclidean_similarity_batch,
    get_measure,
    is_set_measure,
    jaccard_similarity,
    overlap_coefficient,
    pearson_similarity,
)


class TestSetMeasures:
    def test_jaccard_basic(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_jaccard_identical(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_jaccard_empty_sets(self):
        assert jaccard_similarity(set(), set()) == 0.0

    def test_overlap(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3, 4}) == 1.0
        assert overlap_coefficient(set(), {1}) == 0.0

    def test_common_items(self):
        assert common_items({1, 2, 3}, {2, 3, 9}) == 2.0

    def test_cosine_set(self):
        assert cosine_set_similarity({1, 2}, {1, 2}) == pytest.approx(1.0)
        assert cosine_set_similarity({1}, set()) == 0.0

    def test_accepts_iterables(self):
        assert jaccard_similarity([1, 2, 2], (2, 3)) == pytest.approx(1 / 3)


class TestVectorMeasures:
    def test_cosine_parallel_vectors(self):
        assert cosine_similarity([1, 0], [2, 0]) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_cosine_opposite(self):
        assert cosine_similarity([1, 0], [-1, 0]) == pytest.approx(-1.0)

    def test_cosine_zero_vector(self):
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_adjusted_cosine_removes_mean(self):
        a, b = np.array([1.0, 2.0, 3.0]), np.array([11.0, 12.0, 13.0])
        assert adjusted_cosine_similarity(a, b) == pytest.approx(1.0)

    def test_pearson_constant_vector(self):
        assert pearson_similarity([1, 1, 1], [1, 2, 3]) == 0.0

    def test_pearson_perfect_correlation(self):
        assert pearson_similarity([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_euclidean_identical(self):
        assert euclidean_similarity([1, 2], [1, 2]) == pytest.approx(1.0)

    def test_euclidean_decreases_with_distance(self):
        near = euclidean_similarity([0, 0], [1, 0])
        far = euclidean_similarity([0, 0], [5, 0])
        assert near > far


class TestBatchKernels:
    def test_cosine_batch_matches_scalar(self):
        rng = np.random.default_rng(0)
        left, right = rng.normal(size=(20, 6)), rng.normal(size=(20, 6))
        batch = cosine_similarity_batch(left, right)
        scalar = [cosine_similarity(l, r) for l, r in zip(left, right)]
        assert np.allclose(batch, scalar)

    def test_cosine_batch_zero_rows(self):
        left = np.zeros((2, 3))
        right = np.ones((2, 3))
        assert np.allclose(cosine_similarity_batch(left, right), 0.0)

    def test_euclidean_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        left, right = rng.normal(size=(10, 4)), rng.normal(size=(10, 4))
        batch = euclidean_similarity_batch(left, right)
        scalar = [euclidean_similarity(l, r) for l, r in zip(left, right)]
        assert np.allclose(batch, scalar)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity_batch(np.zeros((2, 3)), np.zeros((3, 3)))


class TestRegistry:
    def test_every_measure_registered(self):
        assert SET_MEASURES | VECTOR_MEASURES == set(MEASURES)

    def test_get_measure(self):
        assert get_measure("cosine") is cosine_similarity

    def test_unknown_measure(self):
        with pytest.raises(KeyError, match="unknown similarity measure"):
            get_measure("levenshtein")

    def test_is_set_measure(self):
        assert is_set_measure("jaccard")
        assert not is_set_measure("cosine")
        with pytest.raises(KeyError):
            is_set_measure("nope")
