"""Tests for repro.storage.disk_model."""

import pytest

from repro.storage.disk_model import DISK_PRESETS, DiskModel, get_disk_model


class TestDiskModel:
    def test_sequential_read_has_no_latency(self):
        hdd = DISK_PRESETS["hdd"]
        assert hdd.read_cost(0, sequential=True) == 0.0
        assert hdd.read_cost(0, sequential=False) == pytest.approx(hdd.access_latency_s)

    def test_random_read_slower_than_sequential(self):
        hdd = DISK_PRESETS["hdd"]
        assert hdd.read_cost(1 << 20, sequential=False) > hdd.read_cost(1 << 20, sequential=True)

    def test_hdd_random_much_slower_than_ssd(self):
        hdd, ssd = DISK_PRESETS["hdd"], DISK_PRESETS["ssd"]
        size = 4 << 20
        assert hdd.read_cost(size, sequential=False) > 10 * ssd.read_cost(size, sequential=False)

    def test_write_penalty_applied(self):
        model = DiskModel("x", 0.0, 100.0, 100.0, write_penalty=2.0)
        assert model.write_cost(100) == pytest.approx(2.0)
        assert model.read_cost(100) == pytest.approx(1.0)

    def test_cost_monotonic_in_bytes(self):
        ssd = DISK_PRESETS["ssd"]
        assert ssd.read_cost(2000) > ssd.read_cost(1000)

    def test_instant_model_is_free(self):
        instant = DISK_PRESETS["instant"]
        assert instant.read_cost(10**9) == 0.0
        assert instant.write_cost(10**9, sequential=False) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DISK_PRESETS["ssd"].read_cost(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskModel("bad", -1.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            DiskModel("bad", 0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            DiskModel("bad", 0.0, 10.0, 10.0, write_penalty=0.0)

    def test_seek_cost(self):
        assert DISK_PRESETS["hdd"].seek_cost() == DISK_PRESETS["hdd"].access_latency_s


class TestGetDiskModel:
    def test_preset_lookup(self):
        assert get_disk_model("ssd").name == "ssd"

    def test_instance_passthrough(self):
        model = DISK_PRESETS["hdd"]
        assert get_disk_model(model) is model

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown disk model"):
            get_disk_model("floppy")
