"""Tests for repro.pigraph.pi_graph."""

import numpy as np
import pytest

from repro.pigraph.pi_graph import PIEdge, PIGraph
from repro.tuples.hash_table import TupleHashTable


class TestConstruction:
    def test_add_edge_and_weight_accumulation(self):
        pi = PIGraph(3)
        pi.add_edge(0, 1, weight=2)
        pi.add_edge(0, 1, weight=3)
        assert pi.weight(0, 1) == 5
        assert pi.num_edges == 1
        assert pi.total_weight == 5

    def test_out_of_range(self):
        pi = PIGraph(2)
        with pytest.raises(IndexError):
            pi.add_edge(0, 5)

    def test_invalid_weight(self):
        pi = PIGraph(2)
        with pytest.raises(ValueError):
            pi.add_edge(0, 1, weight=0)

    def test_from_tuple_table(self):
        assignment = np.array([0, 0, 1, 1], dtype=np.int64)
        table = TupleHashTable(4, assignment)
        table.add(0, 2)
        table.add(1, 3)
        table.add(2, 0)
        table.add(0, 1)
        pi = PIGraph.from_tuple_table(table, 2)
        assert pi.weight(0, 1) == 2
        assert pi.weight(1, 0) == 1
        assert pi.weight(0, 0) == 1
        assert pi.total_weight == table.num_tuples

    def test_from_digraph(self, small_csr):
        pi = PIGraph.from_digraph(small_csr)
        assert pi.num_partitions == small_csr.num_vertices
        assert pi.num_edges == small_csr.num_edges
        assert pi.total_weight == small_csr.num_edges


class TestQueries:
    @pytest.fixture
    def pi(self):
        graph = PIGraph(4)
        graph.add_edge(0, 1, weight=5)
        graph.add_edge(1, 2, weight=1)
        graph.add_edge(2, 0, weight=2)
        graph.add_edge(3, 3, weight=7)
        return graph

    def test_edges_sorted(self, pi):
        edges = pi.edges()
        assert [(e.src, e.dst) for e in edges] == [(0, 1), (1, 2), (2, 0), (3, 3)]

    def test_edges_of(self, pi):
        incident = pi.edges_of(0)
        assert {(e.src, e.dst) for e in incident} == {(0, 1), (2, 0)}

    def test_neighbors_excludes_self(self, pi):
        assert pi.neighbors(0) == {1, 2}
        assert pi.neighbors(3) == set()

    def test_degree_counts_self_edge_once(self, pi):
        assert pi.degree(3) == 1
        assert pi.degree(0) == 2

    def test_weighted_degree(self, pi):
        assert pi.weighted_degree(0) == 7
        assert pi.weighted_degree(3) == 7

    def test_degree_array_matches_degree(self, pi):
        degrees = pi.degree_array()
        for p in range(4):
            assert degrees[p] == pi.degree(p)

    def test_active_partitions(self):
        pi = PIGraph(5)
        pi.add_edge(1, 3)
        assert pi.active_partitions() == [1, 3]

    def test_adjacency_symmetric(self, pi):
        adjacency = pi.adjacency()
        assert adjacency[0][1] == 5
        assert adjacency[1][0] == 5
        assert adjacency[3][3] == 7

    def test_has_edge(self, pi):
        assert pi.has_edge(0, 1)
        assert not pi.has_edge(1, 0)


class TestPIEdge:
    def test_endpoints(self):
        edge = PIEdge(1, 2, 9)
        assert edge.endpoints() == (1, 2)
        assert edge.weight == 9
