"""Cross-module integration tests: the full system on realistic workloads."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.baselines.nn_descent import NNDescent
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.graph.datasets import load_dataset, small_dataset
from repro.graph.knn_graph import KNNGraph
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import compare_heuristics
from repro.pigraph.traversal import PAPER_HEURISTICS
from repro.similarity.workloads import generate_dense_profiles, generate_sparse_profiles


class TestFullPipelineSparse:
    """The complete engine on a recommender-style sparse workload."""

    def test_sparse_workload_converges_to_good_recall(self):
        profiles = generate_sparse_profiles(250, 800, items_per_user=25,
                                            num_communities=5, seed=51)
        exact = brute_force_knn(profiles, 8, measure="jaccard")
        config = EngineConfig(k=8, num_partitions=5, heuristic="degree-low-high",
                              partitioner="greedy-locality", seed=51)
        with KNNEngine(profiles, config) as engine:
            run = engine.run(num_iterations=5, exact_graph=exact)
        assert run.convergence.recalls[-1] > 0.55
        assert run.convergence.recalls == sorted(run.convergence.recalls)


class TestEngineVsNNDescent:
    def test_comparable_quality(self):
        profiles = generate_dense_profiles(200, dim=10, num_communities=6,
                                           noise=0.2, seed=52)
        exact = brute_force_knn(profiles, 8, measure="cosine")
        config = EngineConfig(k=8, num_partitions=4, heuristic="degree-low-high", seed=52)
        with KNNEngine(profiles, config) as engine:
            engine_run = engine.run(num_iterations=5, exact_graph=exact)
        descent = NNDescent(k=8, measure="cosine", seed=52).run(profiles)
        engine_recall = engine_run.convergence.recalls[-1]
        descent_recall = descent.graph.recall_against(exact)
        assert engine_recall > 0.7
        assert abs(engine_recall - descent_recall) < 0.3


class TestHeuristicShapeOnDatasets:
    """The qualitative claim of Table 1 must hold on the synthetic datasets."""

    @pytest.mark.parametrize("name", ["gen-rel", "gnutella"])
    def test_degree_heuristics_reduce_operations(self, name):
        graph = load_dataset(name, seed=1) if name == "gen-rel" else small_dataset(
            2000, 8000, seed=1)
        pi = PIGraph.from_digraph(graph)
        results = compare_heuristics(pi, list(PAPER_HEURISTICS))
        sequential = results["sequential"].load_unload_operations
        for heuristic in ("degree-high-low", "degree-low-high"):
            improvement = (sequential - results[heuristic].load_unload_operations) / sequential
            assert improvement > 0.0
            assert improvement < 0.5


class TestDiskModelShape:
    def test_hdd_simulated_time_exceeds_ssd(self):
        profiles = generate_dense_profiles(150, dim=8, seed=53)
        results = {}
        for model in ("hdd", "ssd"):
            config = EngineConfig(k=5, num_partitions=4, disk_model=model, seed=53)
            with KNNEngine(profiles, config) as engine:
                results[model] = engine.run_iteration().io_stats.simulated_io_seconds
        assert results["hdd"] > results["ssd"]


class TestScalingShape:
    def test_work_grows_with_graph_size(self):
        evaluations = []
        for n in (100, 200, 400):
            profiles = generate_dense_profiles(n, dim=8, seed=54)
            config = EngineConfig(k=5, num_partitions=4, seed=54)
            with KNNEngine(profiles, config) as engine:
                evaluations.append(engine.run_iteration().similarity_evaluations)
        assert evaluations[0] < evaluations[1] < evaluations[2]

    def test_more_partitions_more_load_unload_operations(self):
        profiles = generate_dense_profiles(240, dim=8, seed=55)
        operations = []
        for m in (2, 6, 12):
            config = EngineConfig(k=5, num_partitions=m, seed=55)
            with KNNEngine(profiles, config) as engine:
                operations.append(engine.run_iteration().load_unload_operations)
        assert operations[0] < operations[1] < operations[2]


class TestInitialGraphFromDataset:
    def test_engine_accepts_dataset_derived_initial_graph(self):
        graph = small_dataset(300, 1800, seed=56)
        profiles = generate_dense_profiles(300, dim=8, seed=56)
        # take up to K out-neighbours of the dataset graph as the initial KNN
        initial = KNNGraph(300, 6)
        for v in range(300):
            for u in graph.out_neighbors(v)[:6]:
                initial.add_candidate(v, int(u), 0.0)
        config = EngineConfig(k=6, num_partitions=5, seed=56)
        with KNNEngine(profiles, config, initial_graph=initial) as engine:
            run = engine.run(num_iterations=2)
        assert run.final_graph.num_vertices == 300
        assert run.final_graph.average_score() > 0.0
