"""Parity suite: every vectorised batch kernel must match its scalar measure.

The vectorised phase-4 pipeline routes all eight similarity measures through
batch kernels (CSR set kernels for sparse profiles, matrix kernels for dense
profiles).  These tests assert that, on random dense and sparse profiles
including degenerate cases (empty sets, zero vectors, constant vectors), the
batch results agree with the scalar reference measures to within 1e-12.
"""

import numpy as np
import pytest

from repro.similarity import measures as m
from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.storage.profile_store import ProfileSlice

SET_MEASURES = sorted(m.SET_MEASURES)
VECTOR_MEASURES = sorted(m.VECTOR_MEASURES)
TOL = 1e-12


def _random_sparse_profiles(rng, num_users=40, num_items=25):
    profiles = []
    for user in range(num_users):
        size = int(rng.integers(0, 12))
        profiles.append(set(rng.choice(num_items, size=size, replace=False).tolist()))
    # degenerate cases: empty profiles and a duplicated profile
    profiles[0] = set()
    profiles[1] = set()
    profiles[2] = set(profiles[3])
    return profiles


def _random_dense_matrix(rng, num_users=40, dim=12):
    matrix = rng.normal(size=(num_users, dim))
    matrix[0] = 0.0                      # zero vector
    matrix[1] = 3.5                      # constant vector (degenerate pearson)
    matrix[2] = matrix[3]                # exact duplicate
    return matrix


def _random_pairs(rng, num_users, count=300):
    pairs = rng.integers(0, num_users, size=(count, 2))
    pairs[0] = (0, 1)                    # both-degenerate pair
    pairs[1] = (2, 3)                    # identical-profile pair
    pairs[2] = (5, 5)                    # self pair
    return pairs


@pytest.mark.parametrize("measure", SET_MEASURES)
def test_sparse_store_batch_matches_scalar(measure):
    rng = np.random.default_rng(11)
    profiles = _random_sparse_profiles(rng)
    store = SparseProfileStore(profiles)
    pairs = _random_pairs(rng, store.num_users)
    fn = m.get_measure(measure)
    expected = np.asarray([fn(profiles[a], profiles[b]) for a, b in pairs])
    got = store.similarity_pairs(pairs, measure)
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


@pytest.mark.parametrize("measure", SET_MEASURES)
def test_sparse_slice_batch_matches_scalar(measure):
    rng = np.random.default_rng(13)
    profiles = _random_sparse_profiles(rng)
    # slice over a non-contiguous subset with gaps in the id space
    users = sorted(rng.choice(len(profiles), size=25, replace=False).tolist())
    piece = ProfileSlice("sparse", {u: profiles[u] for u in users})
    users_arr = np.asarray(users)
    pairs = users_arr[rng.integers(0, len(users), size=(200, 2))]
    fn = m.get_measure(measure)
    expected = np.asarray([fn(profiles[a], profiles[b]) for a, b in pairs])
    got = piece.similarity_pairs(pairs, measure)
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


@pytest.mark.parametrize("measure", VECTOR_MEASURES)
def test_dense_store_batch_matches_scalar(measure):
    rng = np.random.default_rng(17)
    matrix = _random_dense_matrix(rng)
    store = DenseProfileStore(matrix)
    pairs = _random_pairs(rng, store.num_users)
    fn = m.get_measure(measure)
    expected = np.asarray([fn(matrix[a], matrix[b]) for a, b in pairs])
    got = store.similarity_pairs(pairs, measure)
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


@pytest.mark.parametrize("measure", VECTOR_MEASURES)
def test_dense_slice_batch_matches_scalar(measure):
    rng = np.random.default_rng(19)
    matrix = _random_dense_matrix(rng)
    users = sorted(rng.choice(len(matrix), size=25, replace=False).tolist())
    piece = ProfileSlice("dense", {u: matrix[u] for u in users}, dim=matrix.shape[1])
    users_arr = np.asarray(users)
    pairs = users_arr[rng.integers(0, len(users), size=(200, 2))]
    fn = m.get_measure(measure)
    expected = np.asarray([fn(matrix[a], matrix[b]) for a, b in pairs])
    got = piece.similarity_pairs(pairs, measure)
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


def test_set_csr_kernels_match_scalar_directly():
    rng = np.random.default_rng(23)
    profiles = _random_sparse_profiles(rng, num_users=30, num_items=500)
    csr = m.SetProfileCSR.from_sets(profiles)
    left = rng.integers(0, 30, size=150)
    right = rng.integers(0, 30, size=150)
    for measure in SET_MEASURES:
        fn = m.get_measure(measure)
        expected = np.asarray([fn(profiles[a], profiles[b])
                               for a, b in zip(left, right)])
        got = csr.measure_pairs(measure, left, right)
        np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


def test_cosine_from_norms_matches_plain_batch():
    rng = np.random.default_rng(29)
    left = rng.normal(size=(100, 8))
    right = rng.normal(size=(100, 8))
    left[0] = 0.0
    norms_l = np.linalg.norm(left, axis=1)
    norms_r = np.linalg.norm(right, axis=1)
    np.testing.assert_allclose(
        m.cosine_from_norms(left, right, norms_l, norms_r),
        m.cosine_similarity_batch(left, right), atol=TOL, rtol=0)


def test_unknown_measure_raises_keyerror():
    csr = m.SetProfileCSR.from_sets([{1, 2}, {2, 3}])
    with pytest.raises(KeyError):
        csr.measure_pairs("nope", np.asarray([0]), np.asarray([1]))


def test_custom_registered_vector_measure_still_scores_batches():
    """A measure added to MEASURES without a batch kernel must fall back to
    the per-pair loop, not crash (regression for the batch-routing rewrite)."""
    m.MEASURES["dot"] = lambda a, b: float(np.dot(a, b))
    try:
        matrix = np.arange(12.0).reshape(4, 3)
        store = DenseProfileStore(matrix)
        pairs = np.array([[0, 1], [2, 3]])
        expected = [float(np.dot(matrix[a], matrix[b])) for a, b in pairs]
        np.testing.assert_allclose(store.similarity_pairs(pairs, "dot"), expected)
        piece = ProfileSlice("dense", {u: matrix[u] for u in range(4)}, dim=3)
        np.testing.assert_allclose(piece.similarity_pairs(pairs, "dot"), expected)
    finally:
        del m.MEASURES["dot"]


def test_sparse_store_mutation_keeps_batch_and_scalar_consistent():
    """Mutating a profile via the store API must invalidate the cached CSR,
    and get() must not hand out a mutable reference that could bypass it."""
    store = SparseProfileStore([{1, 2}, {1, 2}])
    pairs = np.array([[0, 1]])
    assert store.similarity_pairs(pairs, "jaccard")[0] == pytest.approx(1.0)
    store.get(0).clear()          # mutating the returned copy is a no-op
    assert store.get(0) == {1, 2}
    store.set(0, set())           # real mutations go through the API
    assert store.similarity_pairs(pairs, "jaccard")[0] == pytest.approx(
        store.similarity(0, 1, "jaccard")) == 0.0
    store.add_item(0, 1)
    assert store.similarity_pairs(pairs, "jaccard")[0] == pytest.approx(
        store.similarity(0, 1, "jaccard")) == 0.5
    store.remove_item(1, 2)
    assert store.similarity_pairs(pairs, "jaccard")[0] == pytest.approx(
        store.similarity(0, 1, "jaccard")) == 1.0
