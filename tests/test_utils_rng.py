"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(123).integers(0, 1000, size=10)
        b = make_rng(123).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 10**9, size=10)
        b = make_rng(2).integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(5)
        assert make_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        rng = make_rng(np.random.SeedSequence(7))
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(42, 3)
        assert len(rngs) == 3
        draws = [rng.integers(0, 10**9, size=5).tolist() for rng in rngs]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic_for_same_seed(self):
        first = [r.integers(0, 10**6, size=3).tolist() for r in spawn_rngs(9, 2)]
        second = [r.integers(0, 10**6, size=3).tolist() for r in spawn_rngs(9, 2)]
        assert first == second

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(0), 2)
        assert len(rngs) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert list(spawn_rngs(1, 0)) == []


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(10, "abc") == derive_seed(10, "abc")

    def test_salt_changes_value(self):
        assert derive_seed(10, "abc") != derive_seed(10, "abd")

    def test_none_base(self):
        assert derive_seed(None, "x") == derive_seed(0, "x")

    def test_within_int32(self):
        assert 0 <= derive_seed(2**40, "dataset") < 2**31
