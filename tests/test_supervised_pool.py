"""Supervised scoring pool: dead/hung workers, respawn, serial degradation.

Faults are injected deterministically through a :class:`FaultPlan`:
``kill_worker`` makes the worker executing one shard die with ``os._exit``
(no exception, no cleanup — exactly what a OOM-kill or segfault looks like
to the coordinator) and ``hang_worker`` puts it to sleep past the per-shard
watchdog timeout.  Supervision must respawn and retry until the batch
succeeds — with bit-identical scores — and degrade to the in-process path
only after the retry budget is exhausted.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.parallel import (ProcessScoringPool, ScoringPoolBroken,
                                 active_shared_row_indexes, fork_available)
from repro.similarity.workloads import generate_dense_profiles
from repro.storage.profile_store import OnDiskProfileStore
from repro.testing import FaultPlan

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="process pool needs fork")

NUM_USERS = 80


@pytest.fixture
def dense_store(tmp_path):
    profiles = generate_dense_profiles(NUM_USERS, dim=6, num_communities=3,
                                       seed=31)
    return OnDiskProfileStore.create(tmp_path / "store", profiles,
                                     disk_model="instant")


@pytest.fixture
def pairs():
    rng = np.random.default_rng(11)
    return rng.integers(0, NUM_USERS, size=(300, 2)).astype(np.int64)


class TestPoolSupervision:
    def test_killed_worker_respawns_and_result_is_identical(self, dense_store,
                                                            pairs):
        with ProcessScoringPool(dense_store, num_workers=2) as clean_pool:
            expected = clean_pool.score(np.arange(NUM_USERS), pairs, "cosine")
        plan = FaultPlan().kill_worker(call=1, shard=0)
        pool = ProcessScoringPool(dense_store, num_workers=2, fault_plan=plan)
        try:
            got = pool.score(np.arange(NUM_USERS), pairs, "cosine")
        finally:
            pool.terminate()
        np.testing.assert_array_equal(got, expected)
        assert pool.respawns >= 1
        assert "worker" in plan.fired_kinds()

    def test_hung_worker_times_out_and_retries(self, dense_store, pairs):
        with ProcessScoringPool(dense_store, num_workers=2) as clean_pool:
            expected = clean_pool.score(np.arange(NUM_USERS), pairs, "cosine")
        plan = FaultPlan().hang_worker(call=1, shard=0, seconds=60.0)
        pool = ProcessScoringPool(dense_store, num_workers=2,
                                  shard_timeout=0.5, fault_plan=plan)
        try:
            got = pool.score(np.arange(NUM_USERS), pairs, "cosine")
        finally:
            pool.terminate()
        np.testing.assert_array_equal(got, expected)
        assert pool.respawns >= 1

    def test_exhausted_retries_raise_scoring_pool_broken(self, dense_store,
                                                         pairs):
        # every attempt (initial + 1 retry) gets its worker killed
        plan = FaultPlan().kill_worker(call=1, shard=0).kill_worker(call=2,
                                                                    shard=0)
        pool = ProcessScoringPool(dense_store, num_workers=2, max_retries=1,
                                  fault_plan=plan)
        try:
            with pytest.raises(ScoringPoolBroken):
                pool.score(np.arange(NUM_USERS), pairs, "cosine")
        finally:
            pool.terminate()

    def test_terminate_is_idempotent_and_shutdown_safe_after(self,
                                                             dense_store):
        pool = ProcessScoringPool(dense_store, num_workers=2)
        pool.terminate()
        pool.terminate()
        pool.shutdown()  # no executor left: must not raise


class TestEngineDegradation:
    def _config(self, plan=None, **overrides):
        return EngineConfig(k=4, num_partitions=4, backend="process",
                            num_workers=2, seed=5, fault_plan=plan,
                            **overrides)

    def test_persistent_worker_death_degrades_to_serial(self, caplog):
        profiles = generate_dense_profiles(NUM_USERS, dim=6,
                                           num_communities=3, seed=31)
        with KNNEngine(profiles, self._config()) as clean:
            reference = clean.run(2)
        # kill the targeted worker on every attempt of the first score
        # call: initial + max_retries(3) retries = 4 consecutive failures
        plan = FaultPlan()
        for call in range(1, 5):
            plan.kill_worker(call=call, shard=0)
        with caplog.at_level(logging.WARNING):
            with KNNEngine(profiles, self._config(plan)) as engine:
                run = engine.run(2)
                assert engine._iteration_runner._pool_degraded
                assert engine._iteration_runner._pool is None
        # bit-identical results despite the mid-run backend switch
        assert (run.final_graph.edge_fingerprint()
                == reference.final_graph.edge_fingerprint())
        assert any("degrading to" in record.message
                   for record in caplog.records)

    def test_single_kill_recovers_without_degrading(self):
        profiles = generate_dense_profiles(NUM_USERS, dim=6,
                                           num_communities=3, seed=31)
        with KNNEngine(profiles, self._config()) as clean:
            reference = clean.run(2)
        plan = FaultPlan().kill_worker(call=1, shard=1)
        with KNNEngine(profiles, self._config(plan)) as engine:
            run = engine.run(2)
            assert not engine._iteration_runner._pool_degraded
        assert (run.final_graph.edge_fingerprint()
                == reference.final_graph.edge_fingerprint())

    def test_shard_timeout_config_reaches_the_pool(self):
        profiles = generate_dense_profiles(NUM_USERS, dim=6,
                                           num_communities=3, seed=31)
        config = self._config(shard_timeout_seconds=12.5)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            pool = engine._iteration_runner._pool
            assert pool is not None and pool._shard_timeout == 12.5

    def test_no_shared_index_segments_leak_after_faulty_runs(self):
        profiles = generate_dense_profiles(NUM_USERS, dim=6,
                                           num_communities=3, seed=31)
        plan = FaultPlan().kill_worker(call=1, shard=0)
        with KNNEngine(profiles, self._config(plan)) as engine:
            engine.run(2)
        assert active_shared_row_indexes() == []
