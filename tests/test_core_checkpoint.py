"""Tests for repro.core.checkpoint."""

import pytest

from repro.core.checkpoint import (
    has_checkpoint,
    load_checkpoint,
    load_knn_graph,
    save_checkpoint,
    save_knn_graph,
)
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import generate_dense_profiles


@pytest.fixture
def scored_graph():
    graph = KNNGraph.random(60, 5, seed=3)
    # give edges distinct scores so equality checks are meaningful
    for index, (src, dst, _) in enumerate(list(graph.edges())):
        graph.add_candidate(src, dst, index * 0.001 + 0.1)
    return graph


class TestGraphSerialisation:
    def test_roundtrip_preserves_edges_and_scores(self, scored_graph, tmp_path):
        path = tmp_path / "graph.bin"
        save_knn_graph(path, scored_graph)
        loaded = load_knn_graph(path)
        assert loaded.num_vertices == scored_graph.num_vertices
        assert loaded.k == scored_graph.k
        assert loaded.edge_difference(scored_graph) == 0
        for v in (0, 13, 59):
            assert loaded.neighbor_scores(v) == pytest.approx(
                scored_graph.neighbor_scores(v))

    def test_empty_graph_roundtrip(self, tmp_path):
        path = tmp_path / "empty.bin"
        save_knn_graph(path, KNNGraph(10, 3))
        loaded = load_knn_graph(path)
        assert loaded.num_vertices == 10
        assert loaded.num_edges == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTCHECK" + b"\x00" * 40)
        with pytest.raises(ValueError, match="magic"):
            load_knn_graph(path)

    def test_truncated_file_rejected(self, scored_graph, tmp_path):
        path = tmp_path / "graph.bin"
        save_knn_graph(path, scored_graph)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            load_knn_graph(path)


class TestCheckpointManifest:
    def test_save_and_load(self, scored_graph, tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=4, metadata={"k": 5})
        assert has_checkpoint(tmp_path)
        graph, iteration, metadata = load_checkpoint(tmp_path)
        assert iteration == 4
        assert metadata == {"k": 5}
        assert graph.edge_difference(scored_graph) == 0

    def test_missing_checkpoint(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path)

    def test_manifest_graph_mismatch_detected(self, scored_graph, tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=1)
        other = KNNGraph.random(20, 2, seed=1)
        save_knn_graph(tmp_path / "knn_graph_00001.bin", other)
        with pytest.raises(ValueError, match="does not match"):
            load_checkpoint(tmp_path)

    def test_overwriting_keeps_latest(self, scored_graph, tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=1)
        later = KNNGraph.random(60, 5, seed=9)
        save_checkpoint(tmp_path, later, iteration=2)
        graph, iteration, _ = load_checkpoint(tmp_path)
        assert iteration == 2
        assert graph.edge_difference(later) == 0


class TestResumeRun:
    def test_resumed_run_matches_uninterrupted_run(self, tmp_path):
        """Stopping after 2 iterations and resuming for 2 more must equal a 4-iteration run."""
        profiles = generate_dense_profiles(140, dim=8, num_communities=4, seed=77)
        config = EngineConfig(k=5, num_partitions=4, seed=77)

        with KNNEngine(profiles, config) as engine:
            uninterrupted = engine.run(num_iterations=4).final_graph

        with KNNEngine(profiles, config) as engine:
            engine.run(num_iterations=2)
            save_checkpoint(tmp_path, engine.graph, iteration=engine.iterations_run)

        graph, iteration, _ = load_checkpoint(tmp_path)
        assert iteration == 2
        with KNNEngine(profiles, config, initial_graph=graph) as resumed:
            final = resumed.run(num_iterations=2).final_graph

        assert final.edge_difference(uninterrupted) == 0
