"""Tests for repro.core.checkpoint."""

import os

import numpy as np
import pytest

from repro.core.checkpoint import (
    has_checkpoint,
    load_checkpoint,
    load_knn_graph,
    load_portable_checkpoint,
    load_score_cache,
    save_checkpoint,
    save_knn_graph,
    save_portable_checkpoint,
    save_score_cache,
    snapshot_profile_store,
)
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.iteration import Phase4ScoreCache
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.storage.profile_store import OnDiskProfileStore


@pytest.fixture
def scored_graph():
    graph = KNNGraph.random(60, 5, seed=3)
    # give edges distinct scores so equality checks are meaningful
    for index, (src, dst, _) in enumerate(list(graph.edges())):
        graph.add_candidate(src, dst, index * 0.001 + 0.1)
    return graph


class TestGraphSerialisation:
    def test_roundtrip_preserves_edges_and_scores(self, scored_graph, tmp_path):
        path = tmp_path / "graph.bin"
        save_knn_graph(path, scored_graph)
        loaded = load_knn_graph(path)
        assert loaded.num_vertices == scored_graph.num_vertices
        assert loaded.k == scored_graph.k
        assert loaded.edge_difference(scored_graph) == 0
        for v in (0, 13, 59):
            assert loaded.neighbor_scores(v) == pytest.approx(
                scored_graph.neighbor_scores(v))

    def test_empty_graph_roundtrip(self, tmp_path):
        path = tmp_path / "empty.bin"
        save_knn_graph(path, KNNGraph(10, 3))
        loaded = load_knn_graph(path)
        assert loaded.num_vertices == 10
        assert loaded.num_edges == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTCHECK" + b"\x00" * 40)
        with pytest.raises(ValueError, match="magic"):
            load_knn_graph(path)

    def test_truncated_file_rejected(self, scored_graph, tmp_path):
        path = tmp_path / "graph.bin"
        save_knn_graph(path, scored_graph)
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            load_knn_graph(path)


class TestCheckpointManifest:
    def test_save_and_load(self, scored_graph, tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=4, metadata={"k": 5})
        assert has_checkpoint(tmp_path)
        graph, iteration, metadata = load_checkpoint(tmp_path)
        assert iteration == 4
        assert metadata == {"k": 5}
        assert graph.edge_difference(scored_graph) == 0

    def test_missing_checkpoint(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path)

    def test_manifest_graph_mismatch_detected(self, scored_graph, tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=1)
        other = KNNGraph.random(20, 2, seed=1)
        save_knn_graph(tmp_path / "knn_graph_00001.bin", other)
        with pytest.raises(ValueError, match="does not match"):
            load_checkpoint(tmp_path)

    def test_overwriting_keeps_latest(self, scored_graph, tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=1)
        later = KNNGraph.random(60, 5, seed=9)
        save_checkpoint(tmp_path, later, iteration=2)
        graph, iteration, _ = load_checkpoint(tmp_path)
        assert iteration == 2
        assert graph.edge_difference(later) == 0


class TestScoreCacheSerialisation:
    def _cache(self, n=40, entries=200):
        cache = Phase4ScoreCache(max_entries=10_000)
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, n * n, size=entries, dtype=np.int64))
        cache.replace([keys], [rng.random(len(keys))], "jaccard",
                      generation=7, num_vertices=n)
        return cache

    def test_roundtrip(self, tmp_path):
        cache = self._cache()
        path = tmp_path / "cache.bin"
        save_score_cache(path, cache)
        loaded = load_score_cache(path)
        assert loaded.measure == "jaccard"
        assert loaded.generation == 7
        assert loaded.num_vertices == cache.num_vertices
        assert loaded.max_entries == cache.max_entries
        np.testing.assert_array_equal(loaded.keys, cache.keys)
        np.testing.assert_array_equal(loaded.values, cache.values)

    def test_empty_cache_roundtrip(self, tmp_path):
        path = tmp_path / "empty.bin"
        save_score_cache(path, Phase4ScoreCache(max_entries=5))
        loaded = load_score_cache(path)
        assert loaded.keys is None and loaded.generation is None
        assert loaded.max_entries == 5

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTCACHE" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            load_score_cache(path)

    def test_truncated_rejected(self, tmp_path):
        cache = self._cache()
        path = tmp_path / "cache.bin"
        save_score_cache(path, cache)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(ValueError, match="truncated"):
            load_score_cache(path)

    def test_negative_header_counts_rejected(self, tmp_path):
        cache = self._cache()
        path = tmp_path / "cache.bin"
        save_score_cache(path, cache)
        raw = bytearray(path.read_bytes())
        # corrupt num_entries (third int64 of the header) to -1
        raw[8 + 16:8 + 24] = np.int64(-1).tobytes()
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="corrupt header"):
            load_score_cache(path)


class TestProfileSnapshot:
    def test_sparse_v3_segments_are_hard_linked(self, tmp_path):
        profiles = generate_sparse_profiles(80, 200, items_per_user=10, seed=3)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles)
        dest = snapshot_profile_store(store, tmp_path / "snap")
        segments = sorted(store.base_dir.glob("profiles_seg_*.bin"))
        assert segments
        for segment in segments:
            assert os.stat(segment).st_ino == os.stat(dest / segment.name).st_ino
        # mutable files are copies, never links
        for name in ("profiles_meta.json", "profiles_journal_rows.bin",
                     "profiles_item_ids.bin"):
            assert (os.stat(store.base_dir / name).st_ino
                    != os.stat(dest / name).st_ino)

    def test_snapshot_immune_to_later_updates_and_compaction(self, tmp_path):
        """Journal appends and compaction segment rewrites on the live store
        must not leak into the snapshot — this is what the atomic
        temp-file+rename replacement in the store buys."""
        profiles = generate_sparse_profiles(80, 200, items_per_user=10, seed=3)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles,
                                          journal_limit=4)
        rng = np.random.default_rng(5)
        store.apply_changes([ProfileChange(user=int(u), kind="add",
                                           item=int(rng.integers(0, 200)))
                             for u in range(3)])
        dest = snapshot_profile_store(store, tmp_path / "snap")
        frozen = OnDiskProfileStore(dest)
        expected = {user: frozen.load_users([user]).get(user)
                    for user in range(80)}
        # churn past the journal limit so the live store compacts (rewrites
        # segment files) and appends more journal entries
        for burst in range(3):
            store.apply_changes([ProfileChange(user=int(u), kind="add",
                                               item=int(rng.integers(0, 200)))
                                 for u in range(burst * 10, burst * 10 + 8)])
        frozen_after = OnDiskProfileStore(dest)
        for user in range(80):
            assert frozen_after.load_users([user]).get(user) == expected[user]

    def test_snapshot_onto_the_live_store_rejected(self, tmp_path):
        """The copy loop unlinks targets first; snapshotting a store onto
        its own directory would destroy it, so it must refuse up front."""
        profiles = generate_sparse_profiles(30, 100, items_per_user=5, seed=3)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles)
        before = store.load_users([0]).get(0)
        with pytest.raises(ValueError, match="source directory itself"):
            snapshot_profile_store(store, store.base_dir)
        # and the store is untouched
        assert store.load_users([0]).get(0) == before

    def test_dense_snapshot_is_a_copy(self, tmp_path):
        profiles = generate_dense_profiles(40, dim=6, seed=3)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles)
        dest = snapshot_profile_store(store, tmp_path / "snap")
        # dense rows are updated in place through a memmap — linking would
        # corrupt old checkpoints, so the matrix must be copied
        assert (os.stat(store.base_dir / "profiles_dense.bin").st_ino
                != os.stat(dest / "profiles_dense.bin").st_ino)
        store.apply_changes([ProfileChange(user=0, kind="set",
                                           vector=np.full(6, 9.0))])
        frozen = OnDiskProfileStore(dest)
        assert not np.allclose(frozen.load_users([0]).get(0), np.full(6, 9.0))


class TestPortableCheckpoint:
    def test_save_and_load_roundtrip(self, scored_graph, tmp_path):
        profiles = generate_sparse_profiles(80, 200, items_per_user=10, seed=9)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles)
        cache = Phase4ScoreCache()
        cache.replace([np.asarray([5, 9], dtype=np.int64)],
                      [np.asarray([0.5, 0.25])], "jaccard", 0, 60)
        save_portable_checkpoint(tmp_path / "ckpt", scored_graph, 3,
                                 profile_store=store, score_cache=cache,
                                 metadata={"note": "x"})
        graph, iteration, metadata, loaded_store, loaded_cache = (
            load_portable_checkpoint(tmp_path / "ckpt"))
        assert iteration == 3 and metadata == {"note": "x"}
        assert graph.edge_difference(scored_graph) == 0
        assert loaded_store.num_users == 80
        assert loaded_store.load_users([4]).get(4) == store.load_users([4]).get(4)
        np.testing.assert_array_equal(loaded_cache.keys, cache.keys)

    def test_without_store_and_cache(self, scored_graph, tmp_path):
        save_portable_checkpoint(tmp_path, scored_graph, 1)
        graph, iteration, _, store, cache = load_portable_checkpoint(tmp_path)
        assert iteration == 1 and store is None and cache is None

    def test_engine_checkpoint_resume_is_bit_identical(self, tmp_path):
        """Interrupt after 2 iterations, resume from the portable checkpoint
        for 2 more (same churn feed): identical to an uninterrupted run."""
        profiles = generate_sparse_profiles(100, 250, items_per_user=10,
                                            num_communities=4, seed=31)
        config = EngineConfig(k=5, num_partitions=4, seed=31)

        def make_feed(rng):
            def feed(_iteration):
                users = rng.choice(100, size=6, replace=False)
                return [ProfileChange(user=int(u), kind="add",
                                      item=int(rng.integers(0, 250)))
                        for u in users]
            return feed

        with KNNEngine(profiles, config) as engine:
            uninterrupted = engine.run(
                num_iterations=4,
                profile_change_feed=make_feed(np.random.default_rng(8)))

        rng = np.random.default_rng(8)
        with KNNEngine(profiles, config) as engine:
            engine.run(num_iterations=2, profile_change_feed=make_feed(rng))
            engine.save_checkpoint(tmp_path / "ckpt")

        with KNNEngine.from_checkpoint(tmp_path / "ckpt", config=config) as resumed:
            assert resumed.iterations_run == 2
            run = resumed.run(num_iterations=2, profile_change_feed=make_feed(rng))
        assert run.final_graph.edge_difference(
            uninterrupted.final_graph) == 0
        # save_checkpoint pruned the churn-touched pairs and advanced the
        # cache to the snapshot generation, so reuse continues seamlessly
        # from the very first resumed iteration
        assert run.iterations[0].full_rescore is False
        assert run.iterations[0].reused_scores > 0
        assert run.iterations[1].reused_scores > 0

    def test_from_checkpoint_without_snapshot_rejected(self, scored_graph,
                                                       tmp_path):
        save_checkpoint(tmp_path, scored_graph, iteration=1)
        with pytest.raises(ValueError, match="no profile snapshot"):
            KNNEngine.from_checkpoint(tmp_path)

    def test_generation_collision_does_not_reuse_stale_scores(self, tmp_path):
        """Checkpoint saved after churn was applied (cache one generation
        behind P(t)): the fresh working store also numbers from 0, so a
        naively restored cache would claim 'nothing changed' and reuse
        pre-churn scores.  save_checkpoint instead prunes the touched pairs
        and advances the cache to the snapshot generation, so the resumed
        run reuses only still-valid scores — and stays bit-identical."""
        profiles = generate_sparse_profiles(90, 250, items_per_user=10,
                                            num_communities=4, seed=41)
        config = EngineConfig(k=5, num_partitions=4, seed=41)
        rng = np.random.default_rng(6)
        churn = [ProfileChange(user=int(u), kind="add",
                               item=int(rng.integers(0, 250)))
                 for u in rng.choice(90, size=20, replace=False)]

        with KNNEngine(profiles, config) as engine:
            engine.enqueue_profile_changes(churn)
            engine.run_iteration()
            uninterrupted = engine.run_iteration().graph

        with KNNEngine(profiles, config) as engine:
            engine.enqueue_profile_changes(churn)
            engine.run_iteration()            # cache gen 0, store gen 1
            engine.save_checkpoint(tmp_path / "ckpt")

        with KNNEngine.from_checkpoint(tmp_path / "ckpt") as resumed:
            result = resumed.run_iteration()
        assert result.graph.edge_difference(uninterrupted) == 0
        # the pruned cache was restored: churn-touched pairs rescored,
        # everything else reused — never a stale score
        assert result.full_rescore is False
        assert result.reused_scores > 0

    def test_unknown_deltas_at_save_time_drop_the_cache_on_resume(self, tmp_path):
        """When the store cannot enumerate the rows touched since scoring
        (here: a journal compaction truncated the delta history), the cache
        is saved as-is and the resume generation check drops it — one full
        rescore, never a stale reuse."""
        profiles = generate_sparse_profiles(90, 250, items_per_user=10,
                                            num_communities=4, seed=59)
        config = EngineConfig(k=5, num_partitions=4, seed=59)
        rng = np.random.default_rng(6)
        # > journal limit (max(64, 90/4) = 64 rows) so phase 5 compacts
        churn = [ProfileChange(user=int(u), kind="add",
                               item=int(rng.integers(0, 250)))
                 for u in rng.choice(90, size=70, replace=False)]

        with KNNEngine(profiles, config) as engine:
            engine.enqueue_profile_changes(churn)
            engine.run_iteration()
            uninterrupted = engine.run_iteration().graph

        with KNNEngine(profiles, config) as engine:
            engine.enqueue_profile_changes(churn)
            engine.run_iteration()
            assert engine.profile_store.touched_rows_since(0) is None
            engine.save_checkpoint(tmp_path / "ckpt")

        with KNNEngine.from_checkpoint(tmp_path / "ckpt") as resumed:
            result = resumed.run_iteration()
        assert result.full_rescore is True
        assert result.reused_scores == 0
        assert result.graph.edge_difference(uninterrupted) == 0

    def test_from_checkpoint_workdir_collision_rejected(self, tmp_path):
        profiles = generate_sparse_profiles(90, 250, items_per_user=10, seed=61)
        config = EngineConfig(k=5, num_partitions=4, seed=61)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            engine.save_checkpoint(tmp_path / "ckpt")
        with pytest.raises(ValueError, match="overwrite the snapshot"):
            KNNEngine.from_checkpoint(tmp_path / "ckpt", config=config,
                                      workdir=tmp_path / "ckpt")
        # the snapshot is untouched and still resumable
        with KNNEngine.from_checkpoint(tmp_path / "ckpt", config=config) as ok:
            ok.run_iteration()

    def test_cache_rebased_when_it_matches_the_snapshot(self, tmp_path):
        """No churn between scoring and checkpointing: the cache describes
        exactly the snapshot profiles, so resume re-keys it to the fresh
        store and the first resumed iteration reuses immediately."""
        profiles = generate_sparse_profiles(90, 250, items_per_user=10,
                                            num_communities=4, seed=43)
        config = EngineConfig(k=5, num_partitions=4, seed=43)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            uninterrupted = engine.run_iteration().graph

        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()            # cache gen 0 == store gen 0
            engine.save_checkpoint(tmp_path / "ckpt")

        with KNNEngine.from_checkpoint(tmp_path / "ckpt") as resumed:
            result = resumed.run_iteration()
        assert result.full_rescore is False
        assert result.reused_scores > 0
        assert result.graph.edge_difference(uninterrupted) == 0

    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_pending_queued_updates_survive_the_checkpoint(self, tmp_path, kind):
        """Changes buffered but not yet applied at save time must be applied
        by the resumed run's next iteration, exactly as an uninterrupted
        run would have."""
        if kind == "dense":
            profiles = generate_dense_profiles(90, dim=6, num_communities=3,
                                               seed=53)
            pending = [ProfileChange(user=4, kind="set",
                                     vector=np.arange(6, dtype=np.float64))]
        else:
            profiles = generate_sparse_profiles(90, 250, items_per_user=10,
                                                seed=53)
            pending = [ProfileChange(user=4, kind="add", item=123),
                       ProfileChange(user=9, kind="remove", item=1)]
        config = EngineConfig(k=5, num_partitions=4, seed=53)

        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            engine.enqueue_profile_changes(pending)
            uninterrupted_result = engine.run_iteration()
            assert uninterrupted_result.profile_updates_applied == len(
                {c.user for c in pending})
            uninterrupted = uninterrupted_result.graph

        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            engine.enqueue_profile_changes(pending)
            engine.save_checkpoint(tmp_path / "ckpt")
            assert len(engine.update_queue) == len(pending)  # peek, not drain

        with KNNEngine.from_checkpoint(tmp_path / "ckpt") as resumed:
            assert len(resumed.update_queue) == len(pending)
            result = resumed.run_iteration()
        assert result.profile_updates_applied == len({c.user for c in pending})
        assert result.graph.edge_difference(uninterrupted) == 0

    def test_reserved_metadata_keys_rejected(self, tmp_path):
        """Caller metadata must not shadow the engine's own manifest state
        (a shadowed pending_updates would lose queued churn on resume)."""
        profiles = generate_sparse_profiles(90, 250, items_per_user=10, seed=67)
        with KNNEngine(profiles, EngineConfig(k=5, num_partitions=4,
                                              seed=67)) as engine:
            engine.run_iteration()
            with pytest.raises(ValueError, match="reserved"):
                engine.save_checkpoint(tmp_path / "ckpt",
                                       metadata={"pending_updates": ["x"]})
            with pytest.raises(ValueError, match="reserved"):
                engine.save_checkpoint(tmp_path / "ckpt",
                                       metadata={"engine_config": {}})
            # non-reserved metadata still flows through
            engine.save_checkpoint(tmp_path / "ckpt", metadata={"note": "y"})
        _, _, metadata, _, _ = load_portable_checkpoint(tmp_path / "ckpt")
        assert metadata["note"] == "y"
        assert "engine_config" in metadata

    def test_from_checkpoint_restores_saved_config(self, tmp_path):
        profiles = generate_sparse_profiles(90, 250, items_per_user=10, seed=47)
        config = EngineConfig(k=7, num_partitions=5, heuristic="degree-low-high",
                              measure="overlap", seed=47)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            engine.save_checkpoint(tmp_path / "ckpt")
        with KNNEngine.from_checkpoint(tmp_path / "ckpt") as resumed:
            assert resumed.config == config

    def test_from_checkpoint_without_saved_config_rejected(self, scored_graph,
                                                           tmp_path):
        profiles = generate_sparse_profiles(80, 200, items_per_user=10, seed=9)
        store = OnDiskProfileStore.create(tmp_path / "store", profiles)
        # a checkpoint written without the engine wrapper has no config
        save_portable_checkpoint(tmp_path / "ckpt", scored_graph, 1,
                                 profile_store=store)
        with pytest.raises(ValueError, match="engine_config"):
            KNNEngine.from_checkpoint(tmp_path / "ckpt")


class TestZeroCopyResume:
    """``from_checkpoint`` hard-links the snapshot back — it never loads
    ``P(t)`` into memory, and the checkpoint survives the resumed run."""

    def _checkpointed_engine(self, tmp_path, kind="sparse", seed=71, **config_kwargs):
        if kind == "sparse":
            profiles = generate_sparse_profiles(120, 300, items_per_user=10,
                                                num_communities=4, seed=seed)
        else:
            profiles = generate_dense_profiles(120, dim=6, num_communities=4,
                                               seed=seed)
        config = EngineConfig(k=5, num_partitions=4, seed=seed, **config_kwargs)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            engine.save_checkpoint(tmp_path / "ckpt")
        return tmp_path / "ckpt", profiles, config

    def test_sparse_segments_resume_as_hard_links(self, tmp_path):
        ckpt, _, _ = self._checkpointed_engine(tmp_path, "sparse")
        with KNNEngine.from_checkpoint(ckpt) as resumed:
            snapshot = ckpt / "profiles"
            working = resumed.workdir / "profiles"
            segments = sorted(snapshot.glob("profiles_seg_*.bin"))
            assert segments
            for segment in segments:
                assert (os.stat(segment).st_ino
                        == os.stat(working / segment.name).st_ino)
            # mutable files are copies, never links
            for name in ("profiles_meta.json", "profiles_journal_rows.bin",
                         "profiles_item_ids.bin"):
                assert (os.stat(snapshot / name).st_ino
                        != os.stat(working / name).st_ino)
            stats = resumed.resume_clone_stats
            assert stats is not None
            assert stats.linked_files == len(segments)
            # every byte that was eligible for linking was linked — nothing
            # resembling a full profile copy happened
            segment_bytes = sum(s.stat().st_size for s in segments)
            assert stats.linked_bytes == segment_bytes
            assert stats.copied_bytes < segment_bytes

    def test_dense_matrix_resume_is_a_copy_and_isolated(self, tmp_path):
        """Dense rows are updated in place through a memmap, so the matrix
        must be copied — and resumed-run updates must not leak back."""
        ckpt, _, _ = self._checkpointed_engine(tmp_path, "dense")
        frozen_before = OnDiskProfileStore(ckpt / "profiles")
        expected = np.array(frozen_before.load_users([3]).get(3))
        with KNNEngine.from_checkpoint(ckpt) as resumed:
            assert (os.stat(ckpt / "profiles" / "profiles_dense.bin").st_ino
                    != os.stat(resumed.workdir / "profiles"
                               / "profiles_dense.bin").st_ino)
            resumed.enqueue_profile_change(ProfileChange(
                user=3, kind="set", vector=np.full(6, 42.0)))
            resumed.run_iteration()
        frozen = OnDiskProfileStore(ckpt / "profiles")
        np.testing.assert_array_equal(frozen.load_users([3]).get(3), expected)

    def test_resumed_churn_and_compaction_leave_the_checkpoint_intact(self, tmp_path):
        """The resumed store shares inodes with the snapshot; its journal
        appends and compaction segment rewrites must never show through
        (atomic replace gives replaced files fresh inodes)."""
        ckpt, _, _ = self._checkpointed_engine(tmp_path, "sparse",
                                               profile_segment_rows=30)
        frozen = OnDiskProfileStore(ckpt / "profiles")
        expected = {user: frozen.load_users([user]).get(user)
                    for user in range(120)}
        rng = np.random.default_rng(9)
        with KNNEngine.from_checkpoint(ckpt) as resumed:
            # enough churn to overflow the journal and force compaction
            # (segment files rewritten) in the hard-linked working store
            for _ in range(3):
                resumed.enqueue_profile_changes(
                    [ProfileChange(user=int(u), kind="add",
                                   item=int(rng.integers(0, 300)))
                     for u in rng.choice(120, size=40, replace=False)])
                resumed.run_iteration()
        frozen_after = OnDiskProfileStore(ckpt / "profiles")
        for user in range(120):
            assert frozen_after.load_users([user]).get(user) == expected[user]

    @pytest.mark.parametrize("saved,resumed_backend", [
        ("process", "serial"), ("serial", "process")])
    def test_backend_override_at_resume_is_bit_identical(self, tmp_path, saved,
                                                         resumed_backend):
        """A run checkpointed under one backend and resumed under another
        must match the uninterrupted run bit for bit — backends never
        change results, and neither does the resume path."""
        profiles = generate_sparse_profiles(100, 250, items_per_user=10,
                                            num_communities=4, seed=83)
        base = EngineConfig(k=5, num_partitions=4, seed=83)

        def make_feed(rng):
            def feed(_iteration):
                users = rng.choice(100, size=6, replace=False)
                return [ProfileChange(user=int(u), kind="add",
                                      item=int(rng.integers(0, 250)))
                        for u in users]
            return feed

        with KNNEngine(profiles, base) as engine:
            uninterrupted = engine.run(
                num_iterations=4,
                profile_change_feed=make_feed(np.random.default_rng(2)))

        rng = np.random.default_rng(2)
        saved_config = base.with_overrides(backend=saved, num_workers=2)
        with KNNEngine(profiles, saved_config) as engine:
            engine.run(num_iterations=2, profile_change_feed=make_feed(rng))
            engine.save_checkpoint(tmp_path / "ckpt")

        override = base.with_overrides(backend=resumed_backend, num_workers=2)
        with KNNEngine.from_checkpoint(tmp_path / "ckpt",
                                       config=override) as engine:
            assert engine.config.backend == resumed_backend
            run = engine.run(num_iterations=2, profile_change_feed=make_feed(rng))
        assert run.final_graph.edge_difference(uninterrupted.final_graph) == 0
        assert (run.final_graph.edge_fingerprint()
                == uninterrupted.final_graph.edge_fingerprint())

    def test_engine_accepts_an_on_disk_store_directly(self, tmp_path):
        """Constructing an engine over an existing OnDiskProfileStore clones
        it zero-copy instead of round-tripping through memory."""
        profiles = generate_sparse_profiles(90, 250, items_per_user=10, seed=89)
        source = OnDiskProfileStore.create(tmp_path / "store", profiles)
        config = EngineConfig(k=5, num_partitions=4, seed=89)
        with KNNEngine(source, config) as engine:
            assert engine.resume_clone_stats.linked_files > 0
            from_disk = engine.run_iteration().graph.edge_fingerprint()
        with KNNEngine(profiles, config) as engine:
            assert engine.resume_clone_stats is None
            from_memory = engine.run_iteration().graph.edge_fingerprint()
        assert from_disk == from_memory
        # the source store is untouched and still loadable
        assert source.load_users([0]).get(0) == profiles.get(0)


class TestResumeRun:
    def test_resumed_run_matches_uninterrupted_run(self, tmp_path):
        """Stopping after 2 iterations and resuming for 2 more must equal a 4-iteration run."""
        profiles = generate_dense_profiles(140, dim=8, num_communities=4, seed=77)
        config = EngineConfig(k=5, num_partitions=4, seed=77)

        with KNNEngine(profiles, config) as engine:
            uninterrupted = engine.run(num_iterations=4).final_graph

        with KNNEngine(profiles, config) as engine:
            engine.run(num_iterations=2)
            save_checkpoint(tmp_path, engine.graph, iteration=engine.iterations_run)

        graph, iteration, _ = load_checkpoint(tmp_path)
        assert iteration == 2
        with KNNEngine(profiles, config, initial_graph=graph) as resumed:
            final = resumed.run(num_iterations=2).final_graph

        assert final.edge_difference(uninterrupted) == 0
