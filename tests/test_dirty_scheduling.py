"""The dirty-partition scheduling correctness wall.

Dirty scheduling promises that an engine skipping clean residency steps
produces graphs **bit-identical** to the full schedule: per-tuple cache
validity is still checked against the touched-row mask, and the G(t+1)
merge is a pure function of the scored candidate multiset.  These tests
drive hypothesis-generated churn (uniform and partition-localised)
through runs with the toggle on and off across all three scoring
backends and compare fingerprint-for-fingerprint plus final profile
bytes; pin that skipping actually *engages* on a converged graph under
localised drift churn; and walk every situation where the delta history
cannot vouch for the churn — reload, delta-log rollover (compaction),
crash recovery, checkpoint resume — asserting the engine's only answer
is "run everything" (one unskipped pass) while parity still holds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine, _scan_commit_epochs
from repro.core.parallel import fork_available
from repro.similarity.workloads import ProfileChange, generate_dense_profiles
from repro.testing import FaultPlan, InjectedCrash

NUM_USERS = 120
DIM = 8
BACKENDS = ["serial", "thread", "process"]


def _profiles(seed: int = 7):
    return generate_dense_profiles(NUM_USERS, dim=DIM, num_communities=4,
                                   seed=seed)


def _config(**overrides):
    base = dict(k=5, num_partitions=4, heuristic="degree-low-high", seed=17)
    base.update(overrides)
    return EngineConfig(**base)


def _backend_overrides(backend: str) -> dict:
    overrides = {"backend": backend}
    if backend == "thread":
        overrides["num_threads"] = 3
    elif backend == "process":
        overrides["num_workers"] = 2
    return overrides


def _churn_feed(per_iteration, rng_seed: int, users_pool: int = NUM_USERS):
    """Deterministic feed; ``users_pool`` < NUM_USERS localises the churn
    to the first partitions (contiguous split), leaving the rest clean."""
    rng = np.random.default_rng(rng_seed)

    def feed(iteration: int):
        count = per_iteration[iteration] if iteration < len(per_iteration) else 0
        if count == 0:
            return []
        users = rng.choice(users_pool, size=count, replace=False)
        return [ProfileChange(user=int(u), kind="set", vector=rng.random(DIM))
                for u in users]

    return feed


def _final_profile_bytes(engine: KNNEngine) -> bytes:
    return (engine.profile_store.base_dir / "profiles_dense.bin").read_bytes()


def _run_pair(churn_factory, iterations: int = 4, **overrides):
    """The same run twice — dirty scheduling on and off — for comparison."""
    runs = {}
    for dirty in (True, False):
        config = _config(dirty_scheduling=dirty, **overrides)
        with KNNEngine(_profiles(), config) as engine:
            run = engine.run(num_iterations=iterations,
                             profile_change_feed=churn_factory())
            runs[dirty] = (run, _final_profile_bytes(engine))
    return runs


class _DriftHarness:
    """Converged graph + partition-localised small-drift churn.

    The regime where dirty scheduling pays: warm-up iterations converge
    the graph with no churn, then each update batch drifts a cohort of
    rows inside the first partition by a small Gaussian step.  Clean
    partitions then hold stable candidate sets whose scores the cache
    still vouches for, so their steps skip.
    """

    def __init__(self, num_users=600, num_partitions=6, dim=12, seed=3,
                 drift_users=30, drift_rows=100, drift_seed=23):
        self.profiles = generate_dense_profiles(
            num_users, dim=dim, num_communities=5, seed=seed)
        self.matrix = self.profiles.matrix.copy()
        self.num_partitions = num_partitions
        self.drift_users = drift_users
        self.drift_rows = drift_rows
        self.rng = np.random.default_rng(drift_seed)
        self.dim = dim

    def config(self, dirty: bool, **overrides):
        return _config(num_partitions=self.num_partitions,
                       dirty_scheduling=dirty, **overrides)

    def drift_batch(self):
        users = self.rng.choice(self.drift_rows, size=self.drift_users,
                                replace=False)
        changes = []
        for user in users:
            self.matrix[user] = (self.matrix[user]
                                 + self.rng.normal(scale=0.05, size=self.dim))
            changes.append(ProfileChange(user=int(user), kind="set",
                                         vector=self.matrix[user].copy()))
        return changes


def _drive_drift(backend: str, dirty: bool, warmup: int = 5, drifts: int = 3,
                 drift_seed: int = 23):
    """Run warm-up + drift iterations; return (results, final bytes)."""
    harness = _DriftHarness(drift_seed=drift_seed)
    config = harness.config(dirty, **_backend_overrides(backend))
    results = []
    with KNNEngine(harness.profiles, config) as engine:
        for _ in range(warmup):
            results.append(engine.run_iteration())
        for _ in range(drifts):
            engine.enqueue_profile_changes(harness.drift_batch())
            results.append(engine.run_iteration())
        return results, _final_profile_bytes(engine)


class TestDirtyParityWall:
    """Dirty-scheduled fingerprints must equal full-schedule ones, always."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        backend=st.sampled_from(BACKENDS),
        churn_sizes=st.lists(st.integers(min_value=0, max_value=25),
                             min_size=4, max_size=4),
        churn_seed=st.integers(min_value=0, max_value=2**16),
        users_pool=st.sampled_from([NUM_USERS, 30]),
    )
    def test_dirty_bit_identical_to_full_schedule(self, backend, churn_sizes,
                                                  churn_seed, users_pool):
        if backend == "process" and not fork_available():
            backend = "thread"
        runs = _run_pair(lambda: _churn_feed(churn_sizes, churn_seed,
                                             users_pool),
                         **_backend_overrides(backend))
        (dirty_run, dirty_bytes) = runs[True]
        (full_run, full_bytes) = runs[False]
        assert ([r.graph.edge_fingerprint() for r in dirty_run.iterations]
                == [r.graph.edge_fingerprint() for r in full_run.iterations])
        # phase 5 applied the identical churn: final profiles byte-equal
        assert dirty_bytes == full_bytes
        # the toggle off never skips, and on-skips never drop steps
        assert all(r.steps_skipped == 0 for r in full_run.iterations)
        for result in dirty_run.iterations:
            assert 0 <= result.steps_skipped <= result.steps_total
            assert result.steps_total == result.schedule.num_steps

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_converged_drift_skips_and_agrees(self, backend):
        """On a converged graph under localised drift, skipping must both
        engage (steps and loads actually saved) and stay bit-identical."""
        if backend == "process" and not fork_available():
            pytest.skip("process backend needs fork")
        dirty_results, dirty_bytes = _drive_drift(backend, dirty=True)
        full_results, full_bytes = _drive_drift(backend, dirty=False)
        assert ([r.graph.edge_fingerprint() for r in dirty_results]
                == [r.graph.edge_fingerprint() for r in full_results])
        assert dirty_bytes == full_bytes
        drift_window = dirty_results[-3:]
        skipped = sum(r.steps_skipped for r in drift_window)
        assert skipped > 0, "dirty scheduling never engaged"
        # skipped steps translate into partition loads not performed
        assert (sum(r.load_unload_operations for r in drift_window)
                < sum(r.load_unload_operations for r in full_results[-3:]))
        for result in drift_window:
            # the re-simulated schedule describes what actually ran
            assert (result.load_unload_operations
                    == result.schedule.load_unload_operations)

    def test_zero_churn_steady_state_skips_most_steps(self):
        """No churn at all: once candidate sets stabilise, almost every
        step is answerable from the cache without touching a partition."""
        harness = _DriftHarness()
        with KNNEngine(harness.profiles, harness.config(True)) as engine:
            results = [engine.run_iteration() for _ in range(7)]
        last = results[-1]
        assert last.steps_skipped > 0
        assert last.steps_skipped >= last.steps_total // 2

    def test_disabling_incremental_disables_skipping(self):
        """Without the score cache there is nothing to serve steps from."""
        harness = _DriftHarness()
        config = harness.config(True, incremental_phase4=False)
        with KNNEngine(harness.profiles, config) as engine:
            results = [engine.run_iteration() for _ in range(4)]
        assert all(r.steps_skipped == 0 for r in results)
        assert all(r.full_rescore for r in results)


class TestRunEverythingEdges:
    """Every invalidation edge must fall back to the full schedule."""

    def _warm_engine(self, harness):
        engine = KNNEngine(harness.profiles, harness.config(True))
        for _ in range(6):
            engine.run_iteration()
        warm = engine.run_iteration()
        assert warm.steps_skipped > 0, "harness failed to reach skip regime"
        return engine

    def test_reload_with_unchanged_generation_is_still_vouched(self):
        """A reload that finds the same generation proves the files are the
        bytes the cache was scored against (the counter bumps on every
        write): "nothing changed" stays the honest answer and skipping
        continues uninterrupted."""
        harness = _DriftHarness()
        with self._warm_engine(harness) as engine:
            engine.profile_store.reload()
            after = engine.run_iteration()
            assert after.steps_skipped > 0

    def test_reload_forces_one_full_pass_then_reengages(self):
        harness = _DriftHarness()
        with self._warm_engine(harness) as engine:
            # phase 5 of this iteration bumps the store past the generation
            # the score cache was tagged with at phase-4 time
            engine.enqueue_profile_changes(harness.drift_batch())
            engine.run_iteration()
            cache_generation = engine._iteration_runner.score_cache.generation
            engine.profile_store.reload()
            # the reloaded delta floor passed the cache's generation: the
            # history no longer vouches for anything the cache holds
            assert engine.profile_store.touched_rows_since(
                cache_generation) is None
            assignment = np.zeros(engine.profile_store.num_users,
                                  dtype=np.int64)
            assert engine.profile_store.touched_partitions_since(
                cache_generation, assignment) is None
            after = engine.run_iteration()
            assert after.steps_skipped == 0
            assert after.steps_total > 0
            # the pass re-established the history: skipping resumes
            again = engine.run_iteration()
            assert again.steps_skipped > 0

    def test_delta_log_rollover_forces_full_pass(self):
        """Enough store writes between iterations push the delta floor past
        the cache's generation (the compaction-rollover case): the honest
        answer is None and every step executes."""
        from repro.storage.profile_store import _DELTA_LOG_LIMIT

        harness = _DriftHarness()
        with self._warm_engine(harness) as engine:
            store = engine.profile_store
            cache_generation = engine._iteration_runner.score_cache.generation
            rng = np.random.default_rng(11)
            for _ in range(_DELTA_LOG_LIMIT + 1):
                store.apply_changes([ProfileChange(
                    user=0, kind="set", vector=rng.random(harness.dim))])
            assert store.touched_rows_since(cache_generation) is None
            after = engine.run_iteration()
            assert after.steps_skipped == 0

    def test_checkpoint_resume_costs_one_unskipped_pass(self, tmp_path):
        """The per-pair scored-generation map is deliberately not part of a
        checkpoint: the resumed engine's first iteration runs the full
        schedule (scores still reuse via the restored cache), then skipping
        re-engages — and the resumed graphs match the uninterrupted run."""
        harness = _DriftHarness()
        with self._warm_engine(harness) as engine:
            engine.save_checkpoint(tmp_path / "ckpt")
            continued = [engine.run_iteration() for _ in range(2)]
        resumed_engine = KNNEngine.from_checkpoint(tmp_path / "ckpt")
        with resumed_engine:
            cache = resumed_engine._iteration_runner.score_cache
            # the restored cache is vouched for: generation matches the
            # resumed store exactly (else from_checkpoint must drop it)
            if cache.generation is not None:
                assert cache.generation == resumed_engine.profile_store.generation
            resumed = [resumed_engine.run_iteration() for _ in range(2)]
        assert resumed[0].steps_skipped == 0
        assert not resumed[0].full_rescore        # cache reuse still on
        assert resumed[1].steps_skipped > 0       # skipping re-engaged
        assert ([r.graph.edge_fingerprint() for r in resumed]
                == [r.graph.edge_fingerprint() for r in continued])

    def test_crash_recovery_never_trusts_an_unvouched_cache(self, tmp_path):
        """Crash mid-run, recover, finish: the restored score cache is
        adopted only at the store's exact generation, the first recovered
        iteration runs the full schedule, and the final graph and profile
        bytes match a never-crashed twin."""
        TOTAL = 7

        def once_feed(harness):
            # drift batches are produced once ever — a crashed consumer
            # cannot ask the producer to replay; recovering them is the
            # WAL's job (same contract as the crash matrix)
            fed = set()

            def feed(iteration):
                if iteration in fed or iteration < 4:
                    return []
                fed.add(iteration)
                return harness.drift_batch()

            return feed

        twin = _DriftHarness()
        with KNNEngine(twin.profiles, twin.config(True)) as clean:
            clean.run(TOTAL, profile_change_feed=once_feed(twin))
            ref_fingerprint = clean.graph.edge_fingerprint()
            ref_bytes = _final_profile_bytes(clean)

        harness = _DriftHarness()
        feed = once_feed(harness)
        plan = FaultPlan().crash_at("phase4.step", occurrence=40)
        workdir = tmp_path / "work"
        engine = KNNEngine(harness.profiles,
                           harness.config(True, durable=True, fault_plan=plan),
                           workdir=workdir)
        try:
            with pytest.raises(InjectedCrash):
                engine.run(TOTAL, profile_change_feed=feed)
        finally:
            engine.close()
        assert "crash" in plan.fired_kinds()

        recovered = KNNEngine.recover(workdir)
        try:
            cache = recovered._iteration_runner.score_cache
            # the cache survives recovery only at the exact generation the
            # restored store vouches for — never against an unvouched one
            if cache.generation is not None:
                assert (cache.generation
                        == recovered.profile_store.generation)
            remaining = TOTAL - recovered.iterations_run
            assert remaining > 0
            run = recovered.run(remaining, profile_change_feed=feed)
            # the pair-generation map died with the crashed process: the
            # first recovered iteration runs the full schedule (per-tuple
            # score reuse may still apply, but no step skips)
            assert run.iterations[0].steps_skipped == 0
            assert recovered.graph.edge_fingerprint() == ref_fingerprint
            assert _final_profile_bytes(recovered) == ref_bytes
        finally:
            recovered.close()


class TestConvergedStopDurability:
    """Early-convergence stop × durability: the final state is sealed."""

    def _run_to_convergence(self, workdir):
        harness = _DriftHarness()
        engine = KNNEngine(harness.profiles,
                           harness.config(True, durable=True),
                           workdir=workdir)
        with engine:
            run = engine.run(num_iterations=20, convergence_threshold=1e-9,
                             profile_change_feed=lambda i: (
                                 harness.drift_batch() if i == 1 else []))
            assert run.convergence.converged
            assert len(run.iterations) < 20, "never converged early"
            fingerprint = engine.graph.edge_fingerprint()
            iterations_run = engine.iterations_run
            oldest_kept = _scan_commit_epochs(engine.commits_dir)[0][1]
            wal_records = engine._update_queue.wal_records()
            applied = KNNEngine._commit_applied_seq(oldest_kept)
        return workdir, fingerprint, iterations_run, wal_records, applied

    def test_final_epoch_sealed_and_wal_collected_before_return(self, tmp_path):
        (workdir, fingerprint, iterations_run,
         wal_records, applied) = self._run_to_convergence(tmp_path / "work")
        epochs = _scan_commit_epochs(workdir / "commits")
        # the very last iteration before the convergence break was committed
        assert epochs[-1][0] == iterations_run
        assert len(epochs) <= KNNEngine.COMMITS_KEPT
        # WAL garbage collection ran on the final commit: nothing at or
        # below the oldest surviving epoch's applied sequence remains
        assert all(int(r["seq"]) > applied for r in wal_records)

    def test_recovering_a_converged_run_resumes_the_sealed_state(self, tmp_path):
        (workdir, fingerprint, iterations_run,
         _, _) = self._run_to_convergence(tmp_path / "work")
        recovered = KNNEngine.recover(workdir)
        try:
            assert recovered.iterations_run == iterations_run
            assert recovered.graph.edge_fingerprint() == fingerprint
            # every WAL record was applied before the stop: none replays
            assert recovered.wal_replayed == 0
        finally:
            recovered.close()
