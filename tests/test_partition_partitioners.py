"""Tests for repro.partition.partitioners."""

import numpy as np
import pytest

from repro.partition.metrics import locality_cost
from repro.partition.model import build_partitions
from repro.partition.partitioners import (
    ContiguousPartitioner,
    GreedyLocalityPartitioner,
    HashPartitioner,
    LinearDeterministicGreedyPartitioner,
    available_partitioners,
    get_partitioner,
)

ALL_PARTITIONERS = [
    ContiguousPartitioner(),
    HashPartitioner(),
    LinearDeterministicGreedyPartitioner(),
    GreedyLocalityPartitioner(),
]


@pytest.mark.parametrize("partitioner", ALL_PARTITIONERS, ids=lambda p: p.name)
class TestCommonProperties:
    def test_assignment_covers_all_vertices(self, partitioner, medium_graph):
        assignment = partitioner.assign(medium_graph, 4)
        assert len(assignment) == medium_graph.num_vertices
        assert assignment.min() >= 0
        assert assignment.max() < 4

    def test_balance_within_capacity(self, partitioner, medium_graph):
        m = 4
        assignment = partitioner.assign(medium_graph, m)
        capacity = -(-medium_graph.num_vertices // m)
        counts = np.bincount(assignment, minlength=m)
        assert counts.max() <= capacity

    def test_single_partition(self, partitioner, medium_graph):
        assignment = partitioner.assign(medium_graph, 1)
        assert set(assignment.tolist()) == {0}

    def test_too_many_partitions_rejected(self, partitioner, small_csr):
        with pytest.raises(ValueError):
            partitioner.assign(small_csr, small_csr.num_vertices + 1)


class TestContiguous:
    def test_ranges_are_contiguous(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 5)
        # partition ids must be non-decreasing over vertex ids
        assert np.all(np.diff(assignment) >= 0)

    def test_equal_sizes(self):
        from repro.graph.generators import erdos_renyi_graph
        graph = erdos_renyi_graph(100, num_edges=200, seed=1)
        assignment = ContiguousPartitioner().assign(graph, 4)
        counts = np.bincount(assignment)
        assert counts.tolist() == [25, 25, 25, 25]


class TestHash:
    def test_round_robin(self, medium_graph):
        assignment = HashPartitioner().assign(medium_graph, 3)
        assert assignment[0] == 0
        assert assignment[1] == 1
        assert assignment[4] == 1


class TestLDG:
    def test_deterministic_without_shuffle(self, medium_graph):
        a = LinearDeterministicGreedyPartitioner().assign(medium_graph, 4)
        b = LinearDeterministicGreedyPartitioner().assign(medium_graph, 4)
        assert np.array_equal(a, b)

    def test_shuffle_seed_reproducible(self, medium_graph):
        a = LinearDeterministicGreedyPartitioner(shuffle=True, seed=3).assign(medium_graph, 4)
        b = LinearDeterministicGreedyPartitioner(shuffle=True, seed=3).assign(medium_graph, 4)
        assert np.array_equal(a, b)


class TestGreedyLocality:
    def test_beats_hash_on_locality(self, medium_graph):
        m = 4
        greedy = GreedyLocalityPartitioner().assign(medium_graph, m)
        hashed = HashPartitioner().assign(medium_graph, m)
        greedy_cost = locality_cost(build_partitions(medium_graph, greedy, m))
        hash_cost = locality_cost(build_partitions(medium_graph, hashed, m))
        assert greedy_cost <= hash_cost

    def test_deterministic(self, medium_graph):
        a = GreedyLocalityPartitioner().assign(medium_graph, 4)
        b = GreedyLocalityPartitioner().assign(medium_graph, 4)
        assert np.array_equal(a, b)


class TestRegistry:
    def test_get_partitioner_by_name(self):
        assert isinstance(get_partitioner("contiguous"), ContiguousPartitioner)
        assert isinstance(get_partitioner("greedy-locality"), GreedyLocalityPartitioner)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown partitioner"):
            get_partitioner("magic")

    def test_available_names(self):
        names = available_partitioners()
        assert "contiguous" in names
        assert "ldg" in names
