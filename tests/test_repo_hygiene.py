"""Repository hygiene: generated artefacts must never be tracked in git.

Commit b99aa09 accidentally tracked 42 ``__pycache__/*.pyc`` files; this
wall (mirrored by a CI step in ``.github/workflows/ci.yml``) keeps compiled
bytecode and other generated caches out of the index for good.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> "list[str]":
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout (sdist or exported tree)")
    result = subprocess.run(["git", "ls-files"], cwd=REPO_ROOT, check=True,
                            capture_output=True, text=True)
    return result.stdout.splitlines()


def test_no_tracked_bytecode():
    offenders = [name for name in _tracked_files()
                 if name.endswith((".pyc", ".pyo")) or "__pycache__/" in name]
    assert offenders == [], (
        f"compiled bytecode is tracked in git: {offenders[:5]}… — "
        "run `git rm -r --cached` on them; .gitignore should prevent re-adds")


def test_no_tracked_tool_caches():
    offenders = [name for name in _tracked_files()
                 if ".pytest_cache/" in name or ".hypothesis/" in name]
    assert offenders == []


def test_gitignore_covers_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.pyc", ".pytest_cache/", ".hypothesis/"):
        assert pattern in gitignore
