"""Tests for repro.baselines.nn_descent."""

import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.baselines.nn_descent import NNDescent
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import generate_dense_profiles


@pytest.fixture(scope="module")
def profiles():
    return generate_dense_profiles(150, dim=10, num_communities=5, noise=0.15, seed=17)


@pytest.fixture(scope="module")
def exact(profiles):
    return brute_force_knn(profiles, 8, measure="cosine")


class TestNNDescent:
    def test_high_recall_on_clustered_data(self, profiles, exact):
        result = NNDescent(k=8, measure="cosine", seed=1).run(profiles)
        assert result.graph.recall_against(exact) > 0.85

    def test_cheaper_than_all_ordered_pairs(self, profiles):
        # On tiny populations NN-Descent's candidate sets overlap heavily, so the
        # fair economy claim at this scale is against the n*(n-1) ordered pairs a
        # naive all-pairs pass would score; sampling tightens it further.
        result = NNDescent(k=8, measure="cosine", seed=2, sample_rate=0.5).run(profiles)
        n = profiles.num_users
        assert result.similarity_evaluations < n * (n - 1)
        assert result.scan_rate > 0

    def test_converges_and_reports_iterations(self, profiles):
        result = NNDescent(k=8, measure="cosine", seed=3,
                           termination_fraction=0.01).run(profiles)
        assert result.converged
        assert result.iterations == len(result.updates_per_iteration)
        # updates should broadly decrease over iterations
        assert result.updates_per_iteration[-1] < result.updates_per_iteration[0]

    def test_deterministic_given_seed(self, profiles):
        a = NNDescent(k=6, measure="cosine", seed=4).run(profiles)
        b = NNDescent(k=6, measure="cosine", seed=4).run(profiles)
        assert a.graph.edge_difference(b.graph) == 0

    def test_sampling_reduces_evaluations(self, profiles):
        full = NNDescent(k=6, measure="cosine", seed=5, max_iterations=3,
                         termination_fraction=0.0).run(profiles)
        sampled = NNDescent(k=6, measure="cosine", seed=5, sample_rate=0.5,
                            max_iterations=3, termination_fraction=0.0).run(profiles)
        assert sampled.similarity_evaluations < full.similarity_evaluations

    def test_accepts_initial_graph(self, profiles):
        init = KNNGraph.random(profiles.num_users, 6, seed=6)
        result = NNDescent(k=6, measure="cosine", seed=6).run(profiles, initial_graph=init)
        assert result.graph.num_vertices == profiles.num_users

    def test_initial_graph_size_mismatch(self, profiles):
        with pytest.raises(ValueError):
            NNDescent(k=6).run(profiles, initial_graph=KNNGraph.random(10, 3, seed=0))

    def test_rejects_too_few_users(self):
        small = generate_dense_profiles(5, dim=4, seed=7)
        with pytest.raises(ValueError):
            NNDescent(k=5).run(small)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NNDescent(k=0)
        with pytest.raises(ValueError):
            NNDescent(k=2, sample_rate=0.0)
        with pytest.raises(ValueError):
            NNDescent(k=2, sample_rate=1.5)
