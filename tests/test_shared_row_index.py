"""The shared-memory merged-slice row index (PR 5).

Phase 4 builds each residency step's merged id→row index once in the
coordinator and shares it: in-process backends pass it straight into
:meth:`ProfileSlice.merge_indexed`, the process pool publishes it to its
workers through a ``multiprocessing.shared_memory`` segment
(:class:`SharedRowIndex`).  These tests pin

* ``merge_indexed`` ≡ ``merge`` for disjoint slices (dense multi-block
  and sparse CSR), including the no-matrix-allocation property,
* the shared segment's roundtrip through the worker attach path, and
* pool scoring with and without the shared index being bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import parallel
from repro.core.parallel import ProcessScoringPool, SharedRowIndex, fork_available
from repro.similarity.workloads import (generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.storage.profile_store import OnDiskProfileStore

NUM_USERS = 120


@pytest.fixture(params=["dense", "sparse"])
def store(request, tmp_path):
    if request.param == "dense":
        profiles = generate_dense_profiles(NUM_USERS, dim=6, seed=3)
    else:
        profiles = generate_sparse_profiles(NUM_USERS, 200, items_per_user=8,
                                            seed=3)
    return OnDiskProfileStore.create(tmp_path / "store", profiles)


def _index_for(a_ids, b_ids):
    concat = np.concatenate([np.asarray(a_ids, dtype=np.int64),
                             np.asarray(b_ids, dtype=np.int64)])
    order = np.argsort(concat, kind="stable")
    return concat[order], order


class TestMergeIndexed:
    def test_equivalent_to_merge(self, store):
        a = store.load_users(range(0, 50))
        b = store.load_users(range(50, NUM_USERS))
        users, order = _index_for(a.user_ids, b.user_ids)
        plain = a.merge(b)
        indexed = a.merge_indexed(b, users, order)
        np.testing.assert_array_equal(indexed.user_ids, plain.user_ids)
        measure = "cosine" if store.kind == "dense" else "jaccard"
        rng = np.random.default_rng(7)
        pairs = rng.integers(0, NUM_USERS, size=(400, 2), dtype=np.int64)
        np.testing.assert_array_equal(indexed.similarity_pairs(pairs, measure),
                                      plain.similarity_pairs(pairs, measure))

    def test_scattered_ids_equivalent(self, store):
        a = store.load_users([0, 7, 30, 31, 99])
        b = store.load_users([3, 8, 29, 100])
        users, order = _index_for(a.user_ids, b.user_ids)
        plain = a.merge(b)
        indexed = a.merge_indexed(b, users, order)
        measure = "cosine" if store.kind == "dense" else "jaccard"
        loaded = np.concatenate([a.user_ids, b.user_ids])
        pairs = np.random.default_rng(5).choice(loaded, size=(100, 2))
        np.testing.assert_array_equal(indexed.similarity_pairs(pairs, measure),
                                      plain.similarity_pairs(pairs, measure))

    def test_dense_merge_stays_multi_block(self, store):
        if store.kind != "dense":
            pytest.skip("dense-only property")
        a = store.load_users(range(0, 60))
        b = store.load_users(range(60, NUM_USERS))
        users, order = _index_for(a.user_ids, b.user_ids)
        merged = a.merge_indexed(b, users, order)
        # no concatenated matrix was allocated: the original mapped blocks
        # back the merged slice as-is
        assert merged.matrix is None
        assert merged.matrix_blocks[0] is a.matrix
        assert merged.matrix_blocks[1] is b.matrix

    def test_length_mismatch_rejected(self, store):
        a = store.load_users(range(0, 10))
        b = store.load_users(range(10, 20))
        users, order = _index_for(a.user_ids, b.user_ids)
        with pytest.raises(ValueError, match="merge index"):
            a.merge_indexed(b, users[:-1], order[:-1])

    def test_overlapping_users_rejected(self, store):
        a = store.load_users(range(0, 10))
        b = store.load_users(range(5, 15))
        users, order = _index_for(a.user_ids, b.user_ids)
        with pytest.raises(ValueError, match="disjoint"):
            a.merge_indexed(b, users, order)


@pytest.fixture
def drop_worker_attachment():
    """Clear the module-level worker attachment cache after the test."""
    yield
    parallel._WORKER_SLICE = (None, None)
    _, shm = parallel._WORKER_INDEX
    parallel._WORKER_INDEX = (None, None)
    if shm is not None:
        shm.close()


class TestSharedRowIndexSegment:
    def test_roundtrip_through_the_worker_attach_path(self,
                                                      drop_worker_attachment):
        users = np.asarray([2, 5, 9, 11], dtype=np.int64)
        order = np.asarray([1, 3, 0, 2], dtype=np.int64)
        shared = SharedRowIndex(users, order)
        got_users, got_order = parallel._attach_row_index(shared.descriptor)
        np.testing.assert_array_equal(got_users, users)
        np.testing.assert_array_equal(got_order, order)
        shared.close()

    def test_empty_index(self):
        shared = SharedRowIndex(np.empty(0, dtype=np.int64),
                                np.empty(0, dtype=np.int64))
        assert shared.descriptor[1] == 0
        shared.close()
        shared.close()  # idempotent

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            SharedRowIndex(np.zeros(3, dtype=np.int64),
                           np.zeros(2, dtype=np.int64))


@pytest.mark.skipif(not fork_available(), reason="process pool needs fork")
class TestPoolWithSharedIndex:
    def test_pool_scores_identical_with_and_without_index(self, store):
        measure = "cosine" if store.kind == "dense" else "jaccard"
        a_ids = np.arange(0, 50, dtype=np.int64)
        b_ids = np.arange(50, NUM_USERS, dtype=np.int64)
        users, order = _index_for(a_ids, b_ids)
        rng = np.random.default_rng(11)
        tuples = rng.integers(0, NUM_USERS, size=(500, 2), dtype=np.int64)
        parts = [(("p", 0), a_ids), (("p", 1), b_ids)]
        with ProcessScoringPool(store, num_workers=2) as pool:
            shared = SharedRowIndex(users, order)
            try:
                with_index = pool.score(None, tuples, measure, key=("s", 1),
                                        parts=parts, generation=store.generation,
                                        row_index=shared.descriptor)
            finally:
                shared.close()
            # a different step key forces a fresh merge without the index
            without = pool.score(None, tuples, measure, key=("s", 2),
                                 parts=parts, generation=store.generation)
        np.testing.assert_array_equal(with_index, without)

    def test_serial_reference_matches(self, store):
        measure = "cosine" if store.kind == "dense" else "jaccard"
        a_ids = np.arange(0, 50, dtype=np.int64)
        b_ids = np.arange(50, NUM_USERS, dtype=np.int64)
        users, order = _index_for(a_ids, b_ids)
        merged = store.load_users(a_ids).merge_indexed(
            store.load_users(b_ids), users, order)
        rng = np.random.default_rng(11)
        tuples = rng.integers(0, NUM_USERS, size=(500, 2), dtype=np.int64)
        reference = merged.similarity_pairs(tuples, measure)
        parts = [(("p", 0), a_ids), (("p", 1), b_ids)]
        with ProcessScoringPool(store, num_workers=2) as pool:
            shared = SharedRowIndex(users, order)
            try:
                scored = pool.score(None, tuples, measure, key=("s", 1),
                                    parts=parts, generation=store.generation,
                                    row_index=shared.descriptor)
            finally:
                shared.close()
        np.testing.assert_array_equal(scored, reference)
