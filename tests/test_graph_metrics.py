"""Tests for repro.graph.metrics."""

import numpy as np
import pytest

from repro.graph.digraph import CSRDiGraph
from repro.graph.generators import erdos_renyi_graph, powerlaw_fixed_size_graph
from repro.graph.metrics import (
    average_clustering_coefficient,
    degree_gini,
    degree_statistics,
    local_clustering_coefficient,
    reciprocity,
    self_loop_count,
    structural_report,
)


@pytest.fixture
def triangle_graph():
    """0<->1, 1<->2, 0<->2 : a fully reciprocal triangle."""
    edges = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]
    return CSRDiGraph.from_edges(3, edges)


class TestDegreeStatistics:
    def test_means_match_edge_count(self, medium_graph):
        stats = degree_statistics(medium_graph)
        assert stats["out_degree_mean"] == pytest.approx(
            medium_graph.num_edges / medium_graph.num_vertices)
        assert stats["in_degree_mean"] == pytest.approx(stats["out_degree_mean"])
        assert stats["total_degree_max"] >= stats["out_degree_max"]

    def test_isolated_count(self):
        graph = CSRDiGraph.from_edges(5, [(0, 1)])
        assert degree_statistics(graph)["num_isolated"] == 3

    def test_empty_graph(self):
        stats = degree_statistics(CSRDiGraph.from_edges(0, []))
        assert stats["out_degree_mean"] == 0.0


class TestDegreeGini:
    def test_uniform_degrees_have_low_gini(self):
        # ring graph: every vertex has out-degree 1 and in-degree 1
        n = 50
        ring = CSRDiGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
        assert degree_gini(ring) == pytest.approx(0.0, abs=1e-9)

    def test_powerlaw_more_skewed_than_uniform_random(self):
        power = powerlaw_fixed_size_graph(400, 3000, exponent=2.0, seed=1)
        uniform = erdos_renyi_graph(400, num_edges=3000, seed=1)
        assert degree_gini(power) > degree_gini(uniform)

    def test_invalid_kind(self, medium_graph):
        with pytest.raises(ValueError):
            degree_gini(medium_graph, kind="diagonal")

    def test_empty_graph(self):
        assert degree_gini(CSRDiGraph.from_edges(3, [])) == 0.0


class TestReciprocityAndLoops:
    def test_fully_reciprocal(self, triangle_graph):
        assert reciprocity(triangle_graph) == pytest.approx(1.0)

    def test_no_reciprocity(self):
        graph = CSRDiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert reciprocity(graph) == 0.0

    def test_empty(self):
        assert reciprocity(CSRDiGraph.from_edges(2, [])) == 0.0

    def test_self_loops_counted(self):
        graph = CSRDiGraph.from_edges(3, [(0, 0), (1, 2)])
        assert self_loop_count(graph) == 1

    def test_generators_produce_no_self_loops(self, medium_graph):
        assert self_loop_count(medium_graph) == 0


class TestClustering:
    def test_triangle_is_fully_clustered(self, triangle_graph):
        assert local_clustering_coefficient(triangle_graph, 0) == pytest.approx(1.0)
        assert average_clustering_coefficient(triangle_graph) == pytest.approx(1.0)

    def test_star_has_zero_clustering_at_centre(self):
        star = CSRDiGraph.from_edges(5, [(0, i) for i in range(1, 5)])
        assert local_clustering_coefficient(star, 0) == 0.0

    def test_degree_below_two_is_zero(self):
        graph = CSRDiGraph.from_edges(3, [(0, 1)])
        assert local_clustering_coefficient(graph, 2) == 0.0

    def test_sampled_estimate_close_to_exact(self, medium_graph):
        exact = average_clustering_coefficient(medium_graph)
        sampled = average_clustering_coefficient(medium_graph, sample_size=150, seed=1)
        assert abs(exact - sampled) < 0.1


class TestStructuralReport:
    def test_keys_present(self, medium_graph):
        report = structural_report(medium_graph, clustering_sample=100)
        for key in ("num_vertices", "num_edges", "reciprocity", "degree_gini",
                    "avg_clustering", "out_degree_mean", "num_isolated"):
            assert key in report
        assert report["num_edges"] == medium_graph.num_edges
