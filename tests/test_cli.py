"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.graph.datasets import DATASETS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_table1_dataset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--datasets", "not-a-dataset"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for spec in DATASETS.values():
            assert spec.display_name in out

    def test_table1_small_subset(self, capsys):
        assert main(["table1", "--datasets", "gen-rel", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Gen. Rel." in out
        assert "sequential" in out
        assert "paper-reported" in out

    def test_pipeline(self, capsys):
        code = main(["pipeline", "--users", "200", "--k", "5", "--partitions", "4",
                     "--iterations", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4-knn-computation" in out
        assert "load/unload operations" in out

    def test_heuristics(self, capsys):
        assert main(["heuristics", "--dataset", "gen-rel", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "greedy-resident" in out
        assert "cost-aware" in out

    def test_memory(self, capsys):
        code = main(["memory", "--users", "200", "--partitions", "2", "4", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "partitions" in out

    def test_disks(self, capsys):
        assert main(["disks", "--users", "200", "--partitions", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "hdd" in out
        assert "ssd" in out

    def test_quality(self, capsys):
        code = main(["quality", "--users", "150", "--k", "5", "--iterations", "2",
                     "--seed", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NN-Descent recall" in out

    def test_verbose_flag(self, capsys):
        assert main(["--verbose", "datasets"]) == 0

    def test_serve_runs_and_drains(self, capsys, tmp_path):
        code = main(["serve", "--users", "80", "--dim", "8", "--k", "5",
                     "--partitions", "4", "--duration", "1.0",
                     "--clients", "2", "--update-batch", "5",
                     "--seed", "7", "--workdir", str(tmp_path / "svc")])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 80 users" in out
        assert "p99" in out
        assert "drained: final epoch" in out
        assert " 0 failed" in out
