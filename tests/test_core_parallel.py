"""Tests for repro.core.parallel."""

import numpy as np
import pytest

from repro.core.parallel import _num_chunks, score_tuples
from repro.storage.profile_store import OnDiskProfileStore


@pytest.fixture
def dense_slice(dense_profiles, tmp_path):
    store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="instant")
    return store.load_users(range(dense_profiles.num_users))


@pytest.fixture
def pairs(dense_profiles):
    rng = np.random.default_rng(3)
    return rng.integers(0, dense_profiles.num_users, size=(500, 2)).astype(np.int64)


class TestScoreTuples:
    def test_single_thread_matches_slice(self, dense_slice, pairs):
        expected = dense_slice.similarity_pairs(pairs, "cosine")
        got = score_tuples(dense_slice, pairs, "cosine", num_threads=1)
        assert np.allclose(got, expected)

    def test_multi_thread_matches_single_thread(self, dense_slice, pairs):
        single = score_tuples(dense_slice, pairs, "cosine", num_threads=1)
        multi = score_tuples(dense_slice, pairs, "cosine", num_threads=4, chunk_size=64)
        assert np.allclose(single, multi)

    def test_result_alignment_preserved(self, dense_slice, pairs):
        scores = score_tuples(dense_slice, pairs, "cosine", num_threads=3, chunk_size=50)
        for i in (0, 123, 499):
            expected = dense_slice.similarity_pairs(pairs[i:i + 1], "cosine")[0]
            assert scores[i] == pytest.approx(expected)

    def test_empty_input(self, dense_slice):
        out = score_tuples(dense_slice, np.empty((0, 2), dtype=np.int64), "cosine")
        assert out.shape == (0,)

    def test_bad_shape_rejected(self, dense_slice):
        with pytest.raises(ValueError):
            score_tuples(dense_slice, np.zeros((4, 3), dtype=np.int64), "cosine")

    def test_invalid_thread_count(self, dense_slice, pairs):
        with pytest.raises(ValueError):
            score_tuples(dense_slice, pairs, "cosine", num_threads=0)

    def test_chunking_smaller_than_batch(self, dense_slice, pairs):
        scores = score_tuples(dense_slice, pairs[:10], "cosine", num_threads=4, chunk_size=3)
        assert len(scores) == 10

    def test_serial_backend_ignores_threads(self, dense_slice, pairs):
        serial = score_tuples(dense_slice, pairs, "cosine", num_threads=8,
                              chunk_size=16, backend="serial")
        assert np.array_equal(serial, dense_slice.similarity_pairs(pairs, "cosine"))


class TestChunkPlanning:
    """The chunk count is clamped so no chunk of the thread pool is empty."""

    def test_no_empty_chunks_when_tuples_barely_exceed_chunk_size(self):
        # 4097 tuples, chunk_size 4096, 8 threads: 8 balanced chunks, not
        # 8 chunks of which 7 are near-empty
        assert _num_chunks(4097, 8, 4096) == 8

    def test_clamped_to_tuple_count(self):
        # fewer tuples than threads: one chunk per tuple at most
        assert _num_chunks(5, 8, 2) == 5

    def test_at_least_one_chunk_per_thread(self):
        assert _num_chunks(100000, 4, 4096) == 25

    def test_chunk_size_bound_dominates_when_larger(self):
        assert _num_chunks(100000, 2, 4096) == 25

    def test_single_tuple(self):
        assert _num_chunks(1, 8, 4096) == 1

    @pytest.mark.parametrize("n", (2, 3, 4, 5, 9))
    def test_boundary_sizes_score_correctly(self, dense_slice, pairs, n):
        got = score_tuples(dense_slice, pairs[:n], "cosine",
                           num_threads=8, chunk_size=2)
        expected = dense_slice.similarity_pairs(pairs[:n], "cosine")
        assert np.allclose(got, expected)
        # and the plan itself never produces an empty chunk
        chunks = np.array_split(pairs[:n], _num_chunks(n, 8, 2))
        assert all(len(chunk) for chunk in chunks)
