"""Tests for repro.core.parallel."""

import numpy as np
import pytest

from repro.core.parallel import score_tuples
from repro.storage.profile_store import OnDiskProfileStore


@pytest.fixture
def dense_slice(dense_profiles, tmp_path):
    store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="instant")
    return store.load_users(range(dense_profiles.num_users))


@pytest.fixture
def pairs(dense_profiles):
    rng = np.random.default_rng(3)
    return rng.integers(0, dense_profiles.num_users, size=(500, 2)).astype(np.int64)


class TestScoreTuples:
    def test_single_thread_matches_slice(self, dense_slice, pairs):
        expected = dense_slice.similarity_pairs(pairs, "cosine")
        got = score_tuples(dense_slice, pairs, "cosine", num_threads=1)
        assert np.allclose(got, expected)

    def test_multi_thread_matches_single_thread(self, dense_slice, pairs):
        single = score_tuples(dense_slice, pairs, "cosine", num_threads=1)
        multi = score_tuples(dense_slice, pairs, "cosine", num_threads=4, chunk_size=64)
        assert np.allclose(single, multi)

    def test_result_alignment_preserved(self, dense_slice, pairs):
        scores = score_tuples(dense_slice, pairs, "cosine", num_threads=3, chunk_size=50)
        for i in (0, 123, 499):
            expected = dense_slice.similarity_pairs(pairs[i:i + 1], "cosine")[0]
            assert scores[i] == pytest.approx(expected)

    def test_empty_input(self, dense_slice):
        out = score_tuples(dense_slice, np.empty((0, 2), dtype=np.int64), "cosine")
        assert out.shape == (0,)

    def test_bad_shape_rejected(self, dense_slice):
        with pytest.raises(ValueError):
            score_tuples(dense_slice, np.zeros((4, 3), dtype=np.int64), "cosine")

    def test_invalid_thread_count(self, dense_slice, pairs):
        with pytest.raises(ValueError):
            score_tuples(dense_slice, pairs, "cosine", num_threads=0)

    def test_chunking_smaller_than_batch(self, dense_slice, pairs):
        scores = score_tuples(dense_slice, pairs[:10], "cosine", num_threads=4, chunk_size=3)
        assert len(scores) == 10
