"""Tests for repro.similarity.profiles."""

import numpy as np
import pytest

from repro.similarity.profiles import DenseProfileStore, SparseProfileStore


class TestSparseProfileStore:
    def test_construction_and_get(self):
        store = SparseProfileStore([[1, 2], [2, 3], []])
        assert store.num_users == 3
        assert store.get(0) == {1, 2}
        assert store.get(2) == set()

    def test_empty_factory(self):
        store = SparseProfileStore.empty(5)
        assert store.num_users == 5
        assert all(store.get(u) == set() for u in range(5))

    def test_set_add_remove(self):
        store = SparseProfileStore.empty(2)
        store.set(0, [1, 2, 3])
        store.add_item(0, 9)
        store.remove_item(0, 1)
        store.remove_item(0, 777)        # absent: no error
        assert store.get(0) == {2, 3, 9}

    def test_similarity(self):
        store = SparseProfileStore([[1, 2, 3], [2, 3, 4]])
        assert store.similarity(0, 1, "jaccard") == pytest.approx(0.5)

    def test_similarity_pairs(self):
        store = SparseProfileStore([[1, 2], [2, 3], [1, 2]])
        pairs = np.array([[0, 1], [0, 2]])
        scores = store.similarity_pairs(pairs, "jaccard")
        assert scores[1] == pytest.approx(1.0)

    def test_rejects_vector_measure(self):
        store = SparseProfileStore([[1], [2]])
        with pytest.raises(ValueError):
            store.similarity(0, 1, "cosine")

    def test_out_of_range_user(self):
        store = SparseProfileStore([[1]])
        with pytest.raises(IndexError):
            store.get(3)

    def test_subset_and_copy(self):
        store = SparseProfileStore([[1], [2], [3]])
        subset = store.subset([1])
        assert subset.get(1) == {2}
        assert subset.get(0) == set()
        clone = store.copy()
        clone.add_item(0, 99)
        assert 99 not in store.get(0)

    def test_item_universe_and_avg_size(self):
        store = SparseProfileStore([[1, 2], [2, 3, 4]])
        assert store.item_universe() == {1, 2, 3, 4}
        assert store.average_profile_size() == pytest.approx(2.5)

    def test_default_measure(self):
        assert SparseProfileStore([[1]]).default_measure() == "jaccard"

    def test_equality(self):
        assert SparseProfileStore([[1]]) == SparseProfileStore([[1]])
        assert SparseProfileStore([[1]]) != SparseProfileStore([[2]])


class TestDenseProfileStore:
    def test_construction(self):
        store = DenseProfileStore(np.arange(12).reshape(4, 3))
        assert store.num_users == 4
        assert store.dim == 3
        assert np.allclose(store.get(1), [3, 4, 5])

    def test_empty_factory(self):
        store = DenseProfileStore.empty(3, 4)
        assert store.matrix.shape == (3, 4)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            DenseProfileStore(np.zeros(5))

    def test_set_profile(self):
        store = DenseProfileStore.empty(2, 3)
        store.set(0, [1.0, 2.0, 3.0])
        assert np.allclose(store.get(0), [1, 2, 3])
        with pytest.raises(ValueError):
            store.set(0, [1.0, 2.0])

    def test_similarity(self):
        store = DenseProfileStore(np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 0.0]]))
        assert store.similarity(0, 2, "cosine") == pytest.approx(1.0)
        assert store.similarity(0, 1, "cosine") == pytest.approx(0.0)

    def test_similarity_pairs_cosine_and_other(self):
        rng = np.random.default_rng(2)
        store = DenseProfileStore(rng.normal(size=(10, 4)))
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        cos = store.similarity_pairs(pairs, "cosine")
        pearson = store.similarity_pairs(pairs, "pearson")
        assert len(cos) == len(pearson) == 3
        for i, (a, b) in enumerate(pairs):
            assert cos[i] == pytest.approx(store.similarity(a, b, "cosine"))

    def test_rejects_set_measure(self):
        store = DenseProfileStore.empty(2, 2)
        with pytest.raises(ValueError):
            store.similarity(0, 1, "jaccard")

    def test_pairs_shape_validation(self):
        store = DenseProfileStore.empty(2, 2)
        with pytest.raises(ValueError):
            store.similarity_pairs(np.zeros((3, 3)), "cosine")

    def test_subset_copy_independent(self):
        store = DenseProfileStore(np.ones((3, 2)))
        clone = store.copy()
        clone.set(0, [5.0, 5.0])
        assert np.allclose(store.get(0), [1, 1])
        subset = store.subset([2])
        assert np.allclose(subset.get(2), [1, 1])
        assert np.allclose(subset.get(0), [0, 0])

    def test_default_measure(self):
        assert DenseProfileStore.empty(1, 1).default_measure() == "cosine"


class TestApplyProfileChangesBatches:
    def test_sparse_batch_is_all_or_nothing(self):
        from repro.similarity.workloads import ProfileChange
        store = SparseProfileStore([{1, 2}, {3}])
        store.incidence()  # warm the cached CSR
        with pytest.raises(ValueError):
            store.apply_profile_changes([
                ProfileChange(user=0, kind="add", item=99),
                ProfileChange(user=0, kind="set", vector=np.zeros(2)),
            ])
        # nothing applied, and the cached incidence matrix stayed consistent
        assert store.get(0) == {1, 2}
        assert set(store.incidence().row_items(0).tolist()) == {1, 2}

    def test_dense_batch_is_all_or_nothing(self):
        from repro.similarity.workloads import ProfileChange
        store = DenseProfileStore(np.ones((3, 2)))
        with pytest.raises(IndexError):
            store.apply_profile_changes([
                ProfileChange(user=0, kind="set", vector=np.zeros(2)),
                ProfileChange(user=99, kind="set", vector=np.zeros(2)),
            ])
        np.testing.assert_array_equal(store.get(0), np.ones(2))

    def test_sparse_batch_applies_in_order(self):
        from repro.similarity.workloads import ProfileChange
        store = SparseProfileStore([{1}])
        touched = store.apply_profile_changes([
            ProfileChange(user=0, kind="add", item=5),
            ProfileChange(user=0, kind="remove", item=1),
        ])
        assert touched == 1
        assert store.get(0) == {5}
