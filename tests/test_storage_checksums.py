"""Checksummed stores and checkpoints: corruption must be caught, not served.

Every profile-store file carries a CRC32 in the store meta, maintained
incrementally for append-only files; :meth:`verify_checksums` runs at
durability boundaries (open with ``verify=True``, commit, recovery).
Checkpoint directories are sealed with a ``checksums.json`` written last,
so its presence doubles as the commit-completeness marker.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.checkpoint import (save_portable_checkpoint, verify_checkpoint,
                                   write_checkpoint_checksums)
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.storage.profile_store import OnDiskProfileStore, StoreCorruptionError
from repro.testing import FaultPlan


def _dense_store(tmp_path, name="dense"):
    profiles = generate_dense_profiles(40, dim=6, seed=3)
    return OnDiskProfileStore.create(tmp_path / name, profiles,
                                     disk_model="instant")


def _sparse_store(tmp_path, name="sparse"):
    profiles = generate_sparse_profiles(40, 80, items_per_user=6, seed=3)
    return OnDiskProfileStore.create(tmp_path / name, profiles,
                                     disk_model="instant")


class TestProfileStoreChecksums:
    def test_fresh_stores_verify_clean(self, tmp_path):
        assert _dense_store(tmp_path).verify_checksums() == []
        assert _sparse_store(tmp_path).verify_checksums() == []

    def test_checksums_follow_dense_in_place_updates(self, tmp_path):
        store = _dense_store(tmp_path)
        store.apply_changes([ProfileChange(user=1, kind="set",
                                           vector=np.ones(6))])
        assert store.verify_checksums() == []

    def test_checksums_follow_sparse_journal_appends(self, tmp_path):
        store = _sparse_store(tmp_path)
        store.apply_changes([ProfileChange(user=2, kind="add", item=79)])
        assert store.verify_checksums() == []

    def test_flipped_byte_is_detected(self, tmp_path):
        store = _dense_store(tmp_path)
        victim = store.base_dir / "profiles_dense.bin"
        raw = bytearray(victim.read_bytes())
        raw[17] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert "profiles_dense.bin" in store.verify_checksums()
        with pytest.raises(StoreCorruptionError):
            store.verify_checksums(strict=True)

    def test_missing_file_is_detected(self, tmp_path):
        store = _dense_store(tmp_path)
        (store.base_dir / "profiles_norms.bin").unlink()
        assert "profiles_norms.bin" in store.verify_checksums()

    def test_injected_truncation_is_detected(self, tmp_path):
        # a torn journal append (write completes, tail lost) via the fault
        # plan's after-op truncation — exactly the corruption the engine's
        # recovery path must refuse to resume from
        store = _sparse_store(tmp_path)
        store.fault_plan = FaultPlan().truncate_file(
            "write", match="journal_rows", keep_bytes=4, occurrence=1)
        store.apply_changes([ProfileChange(user=2, kind="add", item=79)])
        assert "profiles_journal_rows.bin" in store.verify_checksums()

    def test_open_with_verify_raises_on_corruption(self, tmp_path):
        store = _dense_store(tmp_path)
        base = store.base_dir
        victim = base / "profiles_dense.bin"
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(StoreCorruptionError):
            OnDiskProfileStore(base, disk_model="instant", verify=True)

    def test_open_without_verify_defers_the_check(self, tmp_path):
        store = _dense_store(tmp_path)
        base = store.base_dir
        victim = base / "profiles_dense.bin"
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        reopened = OnDiskProfileStore(base, disk_model="instant")
        assert reopened.verify_checksums() != []


class TestCheckpointChecksums:
    def _checkpoint(self, tmp_path):
        store = _dense_store(tmp_path)
        graph = KNNGraph.random(40, 4, seed=9)
        directory = tmp_path / "ckpt"
        save_portable_checkpoint(directory, graph, 1, profile_store=store)
        write_checkpoint_checksums(directory)
        return directory

    def test_sealed_checkpoint_verifies(self, tmp_path):
        assert verify_checkpoint(self._checkpoint(tmp_path))

    def test_missing_checksums_file_means_never_sealed(self, tmp_path):
        directory = self._checkpoint(tmp_path)
        (directory / "checksums.json").unlink()
        assert not verify_checkpoint(directory)

    def test_tampered_file_fails_verification(self, tmp_path):
        directory = self._checkpoint(tmp_path)
        manifest = directory / "checkpoint.json"
        data = json.loads(manifest.read_text())
        data["iteration"] = 999
        manifest.write_text(json.dumps(data))
        assert not verify_checkpoint(directory)

    def test_deleted_file_fails_verification(self, tmp_path):
        directory = self._checkpoint(tmp_path)
        (directory / "profiles" / "profiles_dense.bin").unlink()
        assert not verify_checkpoint(directory)

    def test_unparseable_checksums_rejected(self, tmp_path):
        directory = self._checkpoint(tmp_path)
        (directory / "checksums.json").write_text("{not json")
        assert not verify_checkpoint(directory)
