"""Tests for repro.core.update_queue."""

import threading

import pytest

from repro.core.update_queue import ProfileUpdateQueue
from repro.similarity.workloads import ProfileChange


class TestQueueBasics:
    def test_enqueue_and_drain(self):
        queue = ProfileUpdateQueue()
        queue.enqueue(ProfileChange(user=0, kind="add", item=1))
        queue.enqueue(ProfileChange(user=1, kind="add", item=2))
        assert len(queue) == 2
        drained = queue.drain()
        assert [c.user for c in drained] == [0, 1]
        assert len(queue) == 0

    def test_drain_empty(self):
        assert ProfileUpdateQueue().drain() == []

    def test_enqueue_many(self):
        queue = ProfileUpdateQueue()
        count = queue.enqueue_many(
            ProfileChange(user=u, kind="add", item=u) for u in range(5))
        assert count == 5
        assert len(queue) == 5

    def test_peek_does_not_remove(self):
        queue = ProfileUpdateQueue()
        queue.enqueue(ProfileChange(user=3, kind="remove", item=9))
        snapshot = queue.peek()
        assert len(snapshot) == 1
        assert len(queue) == 1

    def test_type_check(self):
        with pytest.raises(TypeError):
            ProfileUpdateQueue().enqueue("not a change")

    def test_counters(self):
        queue = ProfileUpdateQueue()
        queue.enqueue_many(ProfileChange(user=u, kind="add", item=0) for u in range(3))
        queue.drain()
        queue.enqueue(ProfileChange(user=0, kind="add", item=1))
        assert queue.total_enqueued == 4
        assert queue.total_applied == 3


class TestThreadSafety:
    def test_concurrent_enqueue(self):
        queue = ProfileUpdateQueue()

        def worker(base):
            for i in range(200):
                queue.enqueue(ProfileChange(user=base + i, kind="add", item=i))

        threads = [threading.Thread(target=worker, args=(t * 1000,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(queue) == 800
        assert queue.total_enqueued == 800
        assert len(queue.drain()) == 800


class TestServingShapedConcurrency:
    """The access pattern the serving runtime produces: many writer threads
    calling ``enqueue_many`` against a durable WAL while a drainer (the
    refresh loop) repeatedly empties the queue mid-stream."""

    NUM_WRITERS = 4
    BATCHES_PER_WRITER = 25
    BATCH_SIZE = 8

    def test_interleaved_enqueue_many_and_drain_with_durable_wal(self, tmp_path):
        queue = ProfileUpdateQueue(wal_path=tmp_path / "wal.bin", fsync=False)
        drained = []
        stop = threading.Event()

        def writer(base):
            for batch in range(self.BATCHES_PER_WRITER):
                queue.enqueue_many(
                    ProfileChange(user=base + batch * self.BATCH_SIZE + i,
                                  kind="add", item=i)
                    for i in range(self.BATCH_SIZE))

        def drainer():
            while not stop.is_set():
                drained.extend(queue.drain())
            drained.extend(queue.drain())

        writers = [threading.Thread(target=writer, args=(t * 10_000,))
                   for t in range(self.NUM_WRITERS)]
        drain_thread = threading.Thread(target=drainer)
        drain_thread.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        drain_thread.join()

        expected = (self.NUM_WRITERS * self.BATCHES_PER_WRITER
                    * self.BATCH_SIZE)
        # nothing lost, nothing duplicated — across memory and the WAL
        assert len(drained) + len(queue) == expected
        assert len(queue) == 0
        assert queue.total_enqueued == expected
        assert queue.total_applied == expected
        assert len({(c.user, c.item) for c in drained}) == expected
        records = queue.wal_records()
        assert len(records) == expected
        seqs = [int(r["seq"]) for r in records]
        # WAL sequence numbers are unique and strictly monotone: replaying
        # the log after a crash can never double-apply or reorder a batch
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == expected
        # each writer's batches appear in its submission order (FIFO per
        # producer survives the interleaving)
        drained_users = [c.user for c in drained]
        for writer_index in range(self.NUM_WRITERS):
            base = writer_index * 10_000
            own = [u for u in drained_users if base <= u < base + 10_000]
            assert own == sorted(own)
        assert queue.last_applied_seq == max(seqs)
        queue.close()

    def test_close_is_idempotent(self, tmp_path):
        queue = ProfileUpdateQueue(wal_path=tmp_path / "wal.bin", fsync=False)
        queue.enqueue(ProfileChange(user=0, kind="add", item=1))
        queue.close()
        queue.close()  # double close must be a no-op, not an error
        # the WAL record written before close survives and is readable
        assert len(queue.wal_records()) == 1

    def test_close_without_wal_is_idempotent(self):
        queue = ProfileUpdateQueue()
        queue.close()
        queue.close()
