"""Tests for repro.core.update_queue."""

import threading

import pytest

from repro.core.update_queue import ProfileUpdateQueue
from repro.similarity.workloads import ProfileChange


class TestQueueBasics:
    def test_enqueue_and_drain(self):
        queue = ProfileUpdateQueue()
        queue.enqueue(ProfileChange(user=0, kind="add", item=1))
        queue.enqueue(ProfileChange(user=1, kind="add", item=2))
        assert len(queue) == 2
        drained = queue.drain()
        assert [c.user for c in drained] == [0, 1]
        assert len(queue) == 0

    def test_drain_empty(self):
        assert ProfileUpdateQueue().drain() == []

    def test_enqueue_many(self):
        queue = ProfileUpdateQueue()
        count = queue.enqueue_many(
            ProfileChange(user=u, kind="add", item=u) for u in range(5))
        assert count == 5
        assert len(queue) == 5

    def test_peek_does_not_remove(self):
        queue = ProfileUpdateQueue()
        queue.enqueue(ProfileChange(user=3, kind="remove", item=9))
        snapshot = queue.peek()
        assert len(snapshot) == 1
        assert len(queue) == 1

    def test_type_check(self):
        with pytest.raises(TypeError):
            ProfileUpdateQueue().enqueue("not a change")

    def test_counters(self):
        queue = ProfileUpdateQueue()
        queue.enqueue_many(ProfileChange(user=u, kind="add", item=0) for u in range(3))
        queue.drain()
        queue.enqueue(ProfileChange(user=0, kind="add", item=1))
        assert queue.total_enqueued == 4
        assert queue.total_applied == 3


class TestThreadSafety:
    def test_concurrent_enqueue(self):
        queue = ProfileUpdateQueue()

        def worker(base):
            for i in range(200):
                queue.enqueue(ProfileChange(user=base + i, kind="add", item=i))

        threads = [threading.Thread(target=worker, args=(t * 1000,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(queue) == 800
        assert queue.total_enqueued == 800
        assert len(queue.drain()) == 800
