"""Tests for repro.partition.metrics."""

import numpy as np
import pytest

from repro.partition.metrics import (
    edge_cut,
    format_partition_report,
    locality_cost,
    partition_balance,
    partition_report,
)
from repro.partition.model import build_partitions
from repro.partition.partitioners import ContiguousPartitioner


@pytest.fixture
def partitioned(medium_graph):
    assignment = ContiguousPartitioner().assign(medium_graph, 4)
    partitions = build_partitions(medium_graph, assignment, 4)
    return medium_graph, partitions, assignment


class TestLocalityCost:
    def test_sums_per_partition_costs(self, partitioned):
        _, partitions, _ = partitioned
        assert locality_cost(partitions) == sum(p.locality_cost for p in partitions)

    def test_single_partition_lower_bound(self, medium_graph):
        assignment = np.zeros(medium_graph.num_vertices, dtype=np.int64)
        single = build_partitions(medium_graph, assignment, 1)
        split = build_partitions(
            medium_graph, ContiguousPartitioner().assign(medium_graph, 8), 8)
        assert locality_cost(single) <= locality_cost(split)


class TestEdgeCut:
    def test_zero_for_single_partition(self, medium_graph):
        assignment = np.zeros(medium_graph.num_vertices, dtype=np.int64)
        assert edge_cut(medium_graph, assignment) == 0

    def test_bounded_by_edges(self, partitioned):
        graph, _, assignment = partitioned
        cut = edge_cut(graph, assignment)
        assert 0 <= cut <= graph.num_edges


class TestBalance:
    def test_perfect_balance(self, partitioned):
        _, partitions, _ = partitioned
        assert partition_balance(partitions) == pytest.approx(1.0)

    def test_empty_list(self):
        assert partition_balance([]) == 1.0


class TestReport:
    def test_report_keys_and_format(self, partitioned):
        graph, partitions, assignment = partitioned
        report = partition_report(graph, partitions, assignment)
        assert report["num_partitions"] == 4
        assert 0.0 <= report["edge_cut_fraction"] <= 1.0
        text = format_partition_report(report)
        assert "locality_cost" in text
        assert "balance" in text
