"""mmap-served profile slices: zero-copy behaviour, parity, read-only safety.

Two protections:

* property-based parity — on random stores, slices served from the mapped
  files (contiguous zero-copy views *and* scattered gathered copies) score
  identically to the copying dict-based loader;
* a regression wall asserting the mapped arrays are served with
  ``writeable=False`` and that no similarity kernel ever writes through
  them (a write would raise, and the backing bytes are checked untouched).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.measures import SET_MEASURES, VECTOR_MEASURES
from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.storage.profile_store import OnDiskProfileStore, ProfileSlice

# -- strategies -------------------------------------------------------------

dense_matrices = st.integers(2, 20).flatmap(
    lambda n: st.integers(1, 6).flatmap(
        lambda d: st.lists(
            st.lists(st.floats(-10, 10, allow_nan=False, width=32),
                     min_size=d, max_size=d),
            min_size=n, max_size=n)))

sparse_profiles_strategy = st.lists(
    st.sets(st.integers(0, 40), max_size=8), min_size=2, max_size=20)


def _subset_ids(num_users: int, draw_mask) -> list:
    ids = [u for u in range(num_users) if draw_mask(u)]
    return ids or [0]


# -- property-based parity ---------------------------------------------------

class TestMmapMatchesCopyingLoader:
    @settings(max_examples=40, deadline=None)
    @given(rows=dense_matrices, mask_seed=st.integers(0, 2**16))
    def test_dense_slices(self, tmp_path_factory, rows, mask_seed):
        matrix = np.asarray(rows, dtype=np.float64)
        store_mem = DenseProfileStore(matrix)
        base = tmp_path_factory.mktemp("prop-dense")
        store = OnDiskProfileStore.create(base, store_mem, disk_model="instant")
        rng = np.random.default_rng(mask_seed)
        ids = _subset_ids(len(matrix), lambda u: rng.random() < 0.6)
        piece = store.load_users(ids)
        # the copying loader: a dict-built slice over the same users
        copying = ProfileSlice("dense", {u: matrix[u] for u in ids},
                               dim=matrix.shape[1])
        for user in ids:
            np.testing.assert_array_equal(piece.get(user), matrix[user])
        pairs = np.asarray(ids, dtype=np.int64)[
            rng.integers(0, len(ids), size=(32, 2))]
        for measure in sorted(VECTOR_MEASURES):
            np.testing.assert_allclose(
                piece.similarity_pairs(pairs, measure),
                copying.similarity_pairs(pairs, measure),
                rtol=0.0, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(profiles=sparse_profiles_strategy, mask_seed=st.integers(0, 2**16))
    def test_sparse_slices(self, tmp_path_factory, profiles, mask_seed):
        store_mem = SparseProfileStore(profiles)
        base = tmp_path_factory.mktemp("prop-sparse")
        store = OnDiskProfileStore.create(base, store_mem, disk_model="instant")
        rng = np.random.default_rng(mask_seed)
        ids = _subset_ids(len(profiles), lambda u: rng.random() < 0.6)
        piece = store.load_users(ids)
        copying = ProfileSlice("sparse", {u: set(profiles[u]) for u in ids})
        for user in ids:
            assert piece.get(user) == set(profiles[user])
        pairs = np.asarray(ids, dtype=np.int64)[
            rng.integers(0, len(ids), size=(32, 2))]
        for measure in sorted(SET_MEASURES):
            np.testing.assert_allclose(
                piece.similarity_pairs(pairs, measure),
                copying.similarity_pairs(pairs, measure),
                rtol=0.0, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(profiles=sparse_profiles_strategy)
    def test_merged_sparse_slices_match(self, tmp_path_factory, profiles):
        base = tmp_path_factory.mktemp("prop-merge-sparse")
        store = OnDiskProfileStore.create(base, SparseProfileStore(profiles),
                                          disk_model="instant")
        half = len(profiles) // 2 or 1
        merged = store.load_users(range(half)).merge(
            store.load_users(range(half, len(profiles))))
        for user in range(len(profiles)):
            assert merged.get(user) == set(profiles[user])
        pairs = np.array([[u, (u + 1) % len(profiles)]
                          for u in range(len(profiles))], dtype=np.int64)
        copying = ProfileSlice("sparse", {u: set(p) for u, p in enumerate(profiles)})
        for measure in sorted(SET_MEASURES):
            np.testing.assert_allclose(
                merged.similarity_pairs(pairs, measure),
                copying.similarity_pairs(pairs, measure),
                rtol=0.0, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(rows=dense_matrices)
    def test_merged_slices_match(self, tmp_path_factory, rows):
        matrix = np.asarray(rows, dtype=np.float64)
        base = tmp_path_factory.mktemp("prop-merge")
        store = OnDiskProfileStore.create(base, DenseProfileStore(matrix),
                                          disk_model="instant")
        half = len(matrix) // 2
        merged = store.load_users(range(half)).merge(
            store.load_users(range(half, len(matrix))))
        assert merged.users == set(range(len(matrix)))
        for user in range(len(matrix)):
            np.testing.assert_array_equal(merged.get(user), matrix[user])


# -- zero-copy and read-only regression wall ---------------------------------

@pytest.fixture
def dense_store(dense_profiles, tmp_path):
    return OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="instant")


@pytest.fixture
def sparse_store(sparse_profiles, tmp_path):
    return OnDiskProfileStore.create(tmp_path, sparse_profiles, disk_model="instant")


class TestZeroCopy:
    def test_contiguous_dense_slice_is_a_mapped_view(self, dense_store):
        piece = dense_store.load_users(range(10, 40))
        assert isinstance(piece.matrix, np.memmap)
        assert not piece.matrix.flags.writeable

    def test_scattered_dense_slice_is_read_only_copy(self, dense_store):
        piece = dense_store.load_users([0, 2, 4, 50])
        assert not isinstance(piece.matrix, np.memmap)
        assert not piece.matrix.flags.writeable

    def test_contiguous_sparse_codes_are_a_mapped_view(self, sparse_store):
        piece = sparse_store.load_users(range(5, 25))
        codes = piece._csr.codes
        # zero-copy: the codes array is (a view of) the mapped file
        assert isinstance(codes, np.memmap) or isinstance(codes.base, np.memmap)

    def test_mapped_view_tracks_inplace_update(self, dense_store, dense_profiles):
        """The zero-copy slice reads the file, not a snapshot."""
        from repro.similarity.workloads import ProfileChange
        piece = dense_store.load_users(range(0, 5))
        new_vector = np.full(dense_profiles.dim, 7.0)
        dense_store.apply_changes([ProfileChange(user=2, kind="set",
                                                 vector=new_vector)])
        np.testing.assert_array_equal(piece.get(2), new_vector)


class TestKernelsNeverWrite:
    def test_dense_kernels_on_read_only_arrays(self, dense_store):
        piece = dense_store.load_users(range(0, 60))
        before = np.array(piece.matrix)  # snapshot of the mapped bytes
        pairs = np.array([[0, 1], [5, 59], [30, 30]], dtype=np.int64)
        for measure in sorted(VECTOR_MEASURES):
            piece.similarity_pairs(pairs, measure)
        np.testing.assert_array_equal(np.array(piece.matrix), before)

    def test_sparse_kernels_on_read_only_arrays(self, sparse_store):
        piece = sparse_store.load_users(range(0, 60))
        codes_before = np.array(piece._csr.codes)
        pairs = np.array([[0, 1], [5, 59]], dtype=np.int64)
        for measure in sorted(SET_MEASURES):
            piece.similarity_pairs(pairs, measure)
        np.testing.assert_array_equal(np.array(piece._csr.codes), codes_before)

    def test_write_through_mapped_matrix_raises(self, dense_store):
        piece = dense_store.load_users(range(0, 10))
        with pytest.raises((ValueError, RuntimeError)):
            piece.matrix[0, 0] = 1.0

    def test_write_through_gathered_matrix_raises(self, dense_store):
        piece = dense_store.load_users([0, 3, 9, 80])
        with pytest.raises((ValueError, RuntimeError)):
            piece.matrix[0, 0] = 1.0

    def test_norms_served_from_disk_match_matrix(self, dense_store):
        piece = dense_store.load_users(range(0, 30))
        np.testing.assert_array_equal(
            piece._norms, np.linalg.norm(np.array(piece.matrix), axis=1))
