"""The service chaos wall: crash the refresh loop everywhere, serve anyway.

The serving runtime's contract is *graceful degradation, never an outage*:
whatever kills the background refresh — an injected crash at any named
point, a hung scoring worker, a torn WAL tail, the process dying mid-drain
— queries keep being answered from the last committed snapshot with zero
failed vouched reads, the loop recovers automatically, and once the dust
settles the final graph and profile bytes match a never-crashed twin
bit-for-bit (no update lost, none applied twice).

Lockstep driver: each update batch is submitted (retried while shed),
then the test waits until the serving epoch has advanced past the batch
and the backlog is empty, and issues a *vouched read* that must succeed.
That makes the service's epoch sequence identical to the twin's iteration
sequence, so bitwise parity is a meaningful assertion rather than a
statistical one.

CI treats this module as must-run: the workflow fails if it is skipped or
deselected (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.parallel import active_shared_row_indexes, fork_available
from repro.service import ServingRuntime
from repro.similarity.workloads import ProfileChange, generate_dense_profiles
from repro.testing import FaultPlan, InjectedCrash

NUM_USERS = 60
DIM = 8
NUM_BATCHES = 4

#: Crash points reached by the *refresh loop* (supervised thread): every
#: engine-level point an iteration+commit passes through, plus the two
#: service-level points bracketing the snapshot swap.  ``wal.appended``
#: and ``service.admission`` fire in the client thread instead and get
#: their own process-death test below.
REFRESH_CRASH_POINTS = [
    "iteration.begin",
    "phase4.step",
    "phase4.done",
    "phase5.before_apply",
    "store.dense_rows_written",
    "commit.before_rename",
    "commit.committed",
    "commit.before_wal_truncate",
    "service.before_swap",
    "service.after_swap",
]

#: Points safe for the seeded random soak: they are only ever reached from
#: inside a refresh cycle, so any occurrence lands in supervised code
#: (``commit.*`` occurrence 1 would fire during ``start()``'s initial
#: epoch-0 seal, outside the supervisor).
SOAK_CRASH_POINTS = [
    "iteration.begin",
    "phase4.step",
    "phase4.done",
    "phase5.before_apply",
    "service.before_swap",
    "service.after_swap",
]


def _profiles():
    return generate_dense_profiles(NUM_USERS, dim=DIM, num_communities=3,
                                   seed=1)


def _config(**overrides):
    return EngineConfig(k=5, num_partitions=4, seed=7, **overrides)


def _batch(index):
    """Deterministic update batch ``index`` (same stream for twin and service)."""
    rng = np.random.default_rng(100 + index)
    return [ProfileChange(user=int(u), kind="set", vector=rng.random(DIM))
            for u in rng.choice(NUM_USERS, size=3, replace=False)]


def _runtime(workdir, plan=None, **overrides):
    return ServingRuntime(
        _profiles(), _config(durable=True, fault_plan=plan), workdir=workdir,
        admission_capacity=64, refresh_poll_interval=0.005,
        backoff_base=0.005, backoff_cap=0.05, max_restarts=25, **overrides)


def _submit_until_accepted(runtime, batch, timeout=60.0):
    deadline = time.time() + timeout
    while True:
        result = runtime.submit_updates(batch)
        if result.accepted:
            return
        assert time.time() < deadline, f"batch kept being shed: {result}"
        time.sleep(0.01)


def _await_epoch(runtime, epoch, timeout=60.0):
    deadline = time.time() + timeout
    while not (runtime.current_epoch >= epoch
               and runtime.pending_updates == 0):
        assert time.time() < deadline, (
            f"epoch {epoch} never served: epoch={runtime.current_epoch} "
            f"pending={runtime.pending_updates} "
            f"state={runtime.supervisor.state} "
            f"error={runtime.supervisor.last_error}")
        time.sleep(0.005)


def _drive_lockstep(runtime, num_batches, first_batch=0):
    """Submit each batch, wait for its epoch, take one vouched read."""
    for index in range(first_batch, num_batches):
        _submit_until_accepted(runtime, _batch(index))
        _await_epoch(runtime, index + 1)
        # the vouched read: must succeed whatever the refresh loop is doing
        assert len(runtime.neighbors(index % NUM_USERS,
                                     deadline_seconds=10.0)) == 5


def _final_state(runtime):
    engine = runtime.engine
    dense = (engine.profile_store.base_dir / "profiles_dense.bin").read_bytes()
    return engine.graph.edge_fingerprint(), dense


@pytest.fixture(scope="module")
def twin():
    """Fingerprint + profile bytes of a never-crashed lockstep twin."""
    with KNNEngine(_profiles(), _config()) as engine:
        for index in range(NUM_BATCHES):
            engine.enqueue_profile_changes(_batch(index))
            engine.run_iteration()
        fingerprint = engine.graph.edge_fingerprint()
        dense = (engine.profile_store.base_dir
                 / "profiles_dense.bin").read_bytes()
    return fingerprint, dense


@pytest.mark.parametrize("point", REFRESH_CRASH_POINTS)
def test_refresh_crash_recovers_without_an_outage(point, tmp_path, twin):
    """Kill the refresh loop at ``point``; serving must never notice."""
    plan = FaultPlan().crash_at(point, occurrence=2)
    runtime = _runtime(tmp_path / "svc", plan=plan)
    runtime.start()
    try:
        _drive_lockstep(runtime, NUM_BATCHES)
        assert "crash" in plan.fired_kinds(), "the scheduled crash never fired"
        assert runtime.restarts >= 1
        assert runtime.stats()["query_failures"] == 0
        runtime.stop(drain=True)
        fingerprint, dense = _final_state(runtime)
        assert (fingerprint, dense) == twin
    finally:
        runtime.close()
    assert active_shared_row_indexes() == []


def test_admission_crash_is_a_recoverable_process_death(tmp_path, twin):
    """A crash on the ingestion path loses nothing that was acknowledged."""
    plan = FaultPlan().crash_at("service.admission", occurrence=2)
    workdir = tmp_path / "svc"
    runtime = _runtime(workdir, plan=plan)
    runtime.start()
    _drive_lockstep(runtime, 1)
    # the second batch dies mid-admission, before its WAL append: the
    # client never saw accepted=True, so nothing of it may survive
    with pytest.raises(InjectedCrash):
        runtime.submit_updates(_batch(1))
    runtime.close()  # the "dead" process releases its handles

    recovered = ServingRuntime.recover(
        workdir, config=_config(durable=True), refresh_poll_interval=0.005,
        backoff_base=0.005, backoff_cap=0.05)
    try:
        assert recovered.current_epoch == 1
        assert recovered.pending_updates == 0  # the half-admitted batch is gone
        _drive_lockstep(recovered, NUM_BATCHES, first_batch=1)
        recovered.stop(drain=True)
        assert _final_state(recovered) == twin
    finally:
        recovered.close()


def test_torn_wal_tail_is_detected_and_exactly_once(tmp_path, twin):
    """Dying mid-WAL-append leaves a torn record; recovery must stop at it."""
    workdir = tmp_path / "svc"
    runtime = _runtime(workdir)
    runtime.start()
    _drive_lockstep(runtime, 2)
    # wedge the refresh loop (the scheduler half of the process is "dead")
    # so the next batch stays in the WAL tail, then tear its first record
    runtime.supervisor.stop()
    wal_path = runtime.engine.update_queue.wal_path
    intact_bytes = wal_path.stat().st_size
    assert runtime.submit_updates(_batch(2)).accepted
    assert wal_path.stat().st_size > intact_bytes
    with open(wal_path, "r+b") as handle:
        handle.truncate(intact_bytes + 5)  # mid-header of the first record
    runtime.close()

    recovered = ServingRuntime.recover(
        workdir, config=_config(durable=True), refresh_poll_interval=0.005,
        backoff_base=0.005, backoff_cap=0.05)
    try:
        # the tear swallowed the whole unacknowledged batch — resubmitting
        # it is therefore exactly-once, not at-least-once
        assert recovered.current_epoch == 2
        assert recovered.pending_updates == 0
        _drive_lockstep(recovered, NUM_BATCHES, first_batch=2)
        recovered.stop(drain=True)
        assert _final_state(recovered) == twin
    finally:
        recovered.close()


def test_drain_crash_recovers_with_nothing_lost(tmp_path, twin):
    """Dying mid-graceful-shutdown must not lose the pending backlog."""
    plan = FaultPlan().crash_at("service.drain", occurrence=1)
    workdir = tmp_path / "svc"
    runtime = _runtime(workdir, plan=plan)
    runtime.start()
    _drive_lockstep(runtime, NUM_BATCHES - 1)
    # freeze the loop, leave the final batch pending, die during stop()
    runtime.supervisor.stop()
    assert runtime.submit_updates(_batch(NUM_BATCHES - 1)).accepted
    with pytest.raises(InjectedCrash):
        runtime.stop(drain=True)
    runtime.close()

    recovered = ServingRuntime.recover(
        workdir, config=_config(durable=True), refresh_poll_interval=0.005,
        backoff_base=0.005, backoff_cap=0.05)
    try:
        # the accepted batch survived in the WAL and replays automatically
        _await_epoch(recovered, NUM_BATCHES)
        recovered.stop(drain=True)
        assert _final_state(recovered) == twin
    finally:
        recovered.close()


def test_hung_worker_stalls_one_refresh_not_the_service(tmp_path, twin):
    """A worker hang inside phase 4 must stay invisible to the query path."""
    if not fork_available():
        pytest.skip("process backend needs fork")
    plan = FaultPlan().hang_worker(call=1, shard=0, seconds=60.0)
    runtime = ServingRuntime(
        _profiles(),
        _config(durable=True, fault_plan=plan, backend="process",
                num_workers=2, shard_timeout_seconds=0.5),
        workdir=tmp_path / "svc", admission_capacity=64,
        refresh_poll_interval=0.005, backoff_base=0.005, backoff_cap=0.05,
        max_restarts=25)
    runtime.start()
    try:
        _drive_lockstep(runtime, NUM_BATCHES)
        assert ("worker", "hang@call1/shard0") in plan.fired
        assert runtime.stats()["query_failures"] == 0
        runtime.stop(drain=True)
        assert _final_state(runtime) == twin
    finally:
        runtime.close()
    assert active_shared_row_indexes() == []


def test_seeded_crash_soak_serves_through_every_failure(tmp_path, twin):
    """Random (seeded) crash schedule under concurrent readers: zero failed
    reads while ready, automatic recovery, bitwise parity at the end."""
    plan = FaultPlan(seed=23).crash_at_random(SOAK_CRASH_POINTS, count=3,
                                              max_occurrence=3)
    runtime = _runtime(tmp_path / "svc", plan=plan)
    runtime.start()
    stop = threading.Event()
    failures = []

    def reader(offset):
        index = offset
        while not stop.is_set():
            try:
                runtime.neighbors(index % NUM_USERS, deadline_seconds=30.0)
            except Exception as exc:  # noqa: BLE001 — any failed read is a bug
                failures.append(repr(exc))
                return
            index += 7
            time.sleep(0.001)

    threads = [threading.Thread(target=reader, args=(offset,), daemon=True)
               for offset in (0, 3)]
    for thread in threads:
        thread.start()
    try:
        _drive_lockstep(runtime, NUM_BATCHES)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
    assert failures == []
    assert plan.fired_kinds().count("crash") >= 1
    assert runtime.restarts >= 1
    assert runtime.stats()["query_failures"] == 0
    runtime.stop(drain=True)
    try:
        assert _final_state(runtime) == twin
    finally:
        runtime.close()
