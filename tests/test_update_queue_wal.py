"""Durable-WAL edge cases for :class:`ProfileUpdateQueue`.

The exactly-once contract rests on three properties tested here: sequence
numbers survive reopen without collision, replay filters strictly by the
committed sequence, and a torn or corrupt tail silently truncates to the
last complete record.  The concurrency tests pin that a drain racing an
``enqueue_many`` never loses or duplicates a change.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.update_queue import (ProfileUpdateQueue, _encode_record,
                                     change_from_manifest, change_to_manifest)
from repro.similarity.workloads import ProfileChange
from repro.testing import FaultPlan, InjectedCrash


def _set_change(user, value=1.0, dim=4):
    return ProfileChange(user=user, kind="set",
                         vector=np.full(dim, value))


def _add_change(user, item):
    return ProfileChange(user=user, kind="add", item=item)


class TestWalRoundTrip:
    def test_records_survive_reopen(self, tmp_path):
        wal = tmp_path / "wal.bin"
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        queue.enqueue_many([_add_change(u, 10 + u) for u in range(5)])
        queue.close()

        reopened = ProfileUpdateQueue(wal_path=wal, fsync=False)
        assert reopened.wal_preexisting
        assert len(reopened) == 0          # records are not auto-loaded
        assert reopened.replay_tail(-1) == 5
        users = [c.user for c in reopened.drain()]
        assert users == list(range(5))

    def test_sequence_resumes_past_existing_records(self, tmp_path):
        wal = tmp_path / "wal.bin"
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        queue.enqueue_many([_add_change(u, u) for u in range(3)])
        queue.close()
        reopened = ProfileUpdateQueue(wal_path=wal, fsync=False)
        reopened.enqueue(_add_change(9, 9))
        seqs = [r["seq"] for r in reopened.wal_records()]
        assert seqs == [0, 1, 2, 3]        # no collision after reopen

    def test_vector_changes_round_trip_bitwise(self, tmp_path):
        wal = tmp_path / "wal.bin"
        vector = np.random.default_rng(3).random(8)
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        queue.enqueue(ProfileChange(user=2, kind="set", vector=vector))
        queue.close()
        reopened = ProfileUpdateQueue(wal_path=wal, fsync=False)
        reopened.replay_tail(-1)
        (change,) = reopened.drain()
        assert np.array_equal(change.vector, vector)

    def test_manifest_codec_round_trip(self):
        change = ProfileChange(user=7, kind="remove", item=42)
        back = change_from_manifest(change_to_manifest(change))
        assert (back.user, back.kind, back.item) == (7, "remove", 42)


class TestExactlyOnce:
    def test_drained_records_are_not_replayed(self, tmp_path):
        wal = tmp_path / "wal.bin"
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        queue.enqueue_many([_add_change(u, u) for u in range(4)])
        queue.drain()                       # "applied" by phase 5
        applied = queue.last_applied_seq
        queue.enqueue_many([_add_change(u, u) for u in (8, 9)])
        queue.close()

        recovered = ProfileUpdateQueue(wal_path=wal, fsync=False)
        assert recovered.replay_tail(applied) == 2
        assert sorted(c.user for c in recovered.drain()) == [8, 9]

    def test_replay_after_truncation_still_exact(self, tmp_path):
        wal = tmp_path / "wal.bin"
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        queue.enqueue_many([_add_change(u, u) for u in range(6)])
        queue.drain()
        applied = queue.last_applied_seq
        queue.enqueue(_add_change(7, 7))
        queue.truncate_wal(applied)         # GC the applied prefix
        queue.close()
        recovered = ProfileUpdateQueue(wal_path=wal, fsync=False)
        # replaying with a bound far in the past cannot resurrect the
        # truncated (applied) records — they are gone, and the survivor's
        # sequence is above the bound either way
        assert recovered.replay_tail(-1) == 1
        assert recovered.drain()[0].user == 7


class TestTornAndCorruptTails:
    def _write_wal(self, path, changes):
        path.write_bytes(b"".join(_encode_record(seq, change)
                                  for seq, change in enumerate(changes)))

    def test_torn_tail_drops_only_the_last_record(self, tmp_path):
        wal = tmp_path / "wal.bin"
        self._write_wal(wal, [_add_change(u, u) for u in range(3)])
        raw = wal.read_bytes()
        wal.write_bytes(raw[:-5])           # crash mid-append of record 2
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        assert [r["seq"] for r in queue.wal_records()] == [0, 1]

    def test_corrupt_record_rejects_it_and_everything_after(self, tmp_path):
        wal = tmp_path / "wal.bin"
        self._write_wal(wal, [_add_change(u, u) for u in range(3)])
        raw = bytearray(wal.read_bytes())
        raw[len(raw) // 2] ^= 0xFF          # flip a bit mid-log
        wal.write_bytes(bytes(raw))
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        records = queue.wal_records()
        assert len(records) < 3
        assert all(r["seq"] == i for i, r in enumerate(records))

    def test_empty_wal_recovery_is_a_no_op(self, tmp_path):
        wal = tmp_path / "wal.bin"
        wal.write_bytes(b"")
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        assert not queue.wal_preexisting
        assert queue.replay_tail(-1) == 0
        assert len(queue) == 0

    def test_missing_wal_file_recovery_is_a_no_op(self, tmp_path):
        queue = ProfileUpdateQueue(wal_path=tmp_path / "absent.bin",
                                   fsync=False)
        assert not queue.wal_preexisting
        assert queue.replay_tail(-1) == 0

    def test_injected_crash_after_append_leaves_durable_records(self, tmp_path):
        wal = tmp_path / "wal.bin"
        plan = FaultPlan().crash_at("wal.appended", occurrence=1)
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False, fault_plan=plan)
        with pytest.raises(InjectedCrash):
            queue.enqueue_many([_add_change(u, u) for u in range(3)])
        queue.close()
        # the crash fired after write+flush: all three records are on disk
        recovered = ProfileUpdateQueue(wal_path=wal, fsync=False)
        assert recovered.replay_tail(-1) == 3


class TestConcurrency:
    def test_concurrent_enqueue_many_and_drain_lose_nothing(self, tmp_path):
        wal = tmp_path / "wal.bin"
        queue = ProfileUpdateQueue(wal_path=wal, fsync=False)
        batches = [[_add_change(b * 100 + i, i) for i in range(20)]
                   for b in range(10)]
        drained = []
        stop = threading.Event()

        def producer():
            for batch in batches:
                queue.enqueue_many(batch)
            stop.set()

        def consumer():
            while not stop.is_set() or len(queue):
                drained.extend(queue.drain())

        threads = [threading.Thread(target=producer),
                   threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        drained.extend(queue.drain())
        expected = sorted(c.user for batch in batches for c in batch)
        assert sorted(c.user for c in drained) == expected
        # WAL saw every record exactly once, in sequence order
        assert [r["seq"] for r in queue.wal_records()] == list(range(200))
        queue.close()

    def test_concurrent_single_enqueues_keep_sequences_unique(self, tmp_path):
        queue = ProfileUpdateQueue(wal_path=tmp_path / "wal.bin", fsync=False)
        def worker(base):
            for i in range(25):
                queue.enqueue(_add_change(base + i, i))
        threads = [threading.Thread(target=worker, args=(b * 100,))
                   for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        seqs = [r["seq"] for r in queue.wal_records()]
        assert sorted(seqs) == list(range(100))
        assert len(set(seqs)) == 100
        queue.close()
