"""Fixture: a fault hook whose literal no registry knows."""


def fault_point(plan, name):
    if plan is not None:
        plan.point(name)


def run_phase(plan):
    fault_point(plan, "phase9.bogus")
    return 0
