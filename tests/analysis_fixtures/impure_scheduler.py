"""Fixture: a declared-pure planner that sneaks in a wall-clock read."""

import time


def _stamp():
    return time.time()


def plan_with_clock(steps):
    return [(_stamp(), step) for step in steps]
