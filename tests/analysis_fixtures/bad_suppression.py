"""Fixture: a suppression comment with no reason is itself a finding."""


def noop():
    return None  # repro: allow[durability]
