"""Fixture: publishes a temp file without flushing it to disk first."""

import json
import os


def publish(payload, path):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)


def side_write(path, blob):
    path.write_bytes(blob)
