"""Fixture: the fsyncless rename again, suppressed with a written reason."""

import json
import os


def publish(payload, path):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    # repro: allow[durability] fixture: the harness fsyncs the directory afterwards
    os.replace(tmp, path)
