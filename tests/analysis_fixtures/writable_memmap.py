"""Fixture: a writable memory map opened outside the storage layer."""

import numpy as np


def open_rows(path, rows, dim):
    return np.memmap(path, dtype="float32", mode="r+", shape=(rows, dim))
