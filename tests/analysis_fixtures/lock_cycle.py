"""Fixture: opposite-order lock acquisition plus a blocking hold."""

import os
import threading


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            with self._a:
                return 2

    def flush_under_lock(self, handle):
        with self._a:
            os.fsync(handle)
