"""The invariant lint, proven against a corpus of deliberately-broken fixtures.

Every rule gets at least one failing fixture with an **exact** rule-id and
line assertion — if a rule drifts (wrong id, wrong anchor line, or stops
firing), these tests fail before the CI gate silently weakens.  The
committed tree itself must analyze clean (the smoke test at the bottom),
and the gate wiring (CI step + perf-suite preflight) is pinned so it
cannot be dropped without a test noticing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULE_IDS, analyze
from repro.analysis import crashpoints, deadcode, durability, locks, memmaps, purity
from repro.analysis.runner import AnalysisConfig, _discover_tests
from repro.analysis.sources import (CodeIndex, SourceFile, discover_sources,
                                    literal_tuple_entries)
from repro.analysis.suppress import apply_suppressions, collect_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "analysis_fixtures"


@pytest.fixture(scope="module")
def findex():
    """CodeIndex over the fixture corpus (module names ``fixtures.<stem>``)."""
    sources = [SourceFile.parse(path, f"fixtures.{path.stem}")
               for path in sorted(FIXTURES.glob("*.py"))]
    return CodeIndex.build(sources)


@pytest.fixture(scope="module")
def real_index():
    config = AnalysisConfig.for_repo(REPO_ROOT)
    sources = discover_sources(config.src_root, package=config.package)
    return CodeIndex.build(sources), config


def _real_registry(index, config):
    registry_source = next(s for s in index.sources
                           if s.module == config.fault_registry_module)
    registry = {}
    for constant in config.fault_registry_names:
        for point, line in literal_tuple_entries(registry_source,
                                                 constant).items():
            registry[point] = (registry_source.path, line)
    return registry


# -- purity ------------------------------------------------------------------

def test_purity_flags_wall_clock_at_exact_line(findex):
    manifest = (FIXTURES / "impure_scheduler.py", 1)
    findings = purity.check(findex, {
        "fixtures.impure_scheduler.plan_with_clock": manifest})
    assert [(f.rule_id, f.path.name, f.line) for f in findings] == [
        ("purity", "impure_scheduler.py", 7)]
    assert "time.time" in findings[0].message
    assert "_stamp" in findings[0].message  # the witness call chain


def test_purity_flags_orphaned_manifest_entry(findex):
    manifest = (FIXTURES / "impure_scheduler.py", 3)
    findings = purity.check(findex, {
        "fixtures.impure_scheduler.no_such_planner": manifest})
    assert [(f.rule_id, f.line) for f in findings] == [("purity", 3)]
    assert "matches no function" in findings[0].message


# -- lock discipline ---------------------------------------------------------

def test_lock_order_cycle_detected_at_witness_edge(findex):
    findings = [f for f in locks.check(findex)
                if f.path.name == "lock_cycle.py"]
    assert [(f.rule_id, f.line) for f in findings] == [("lock-discipline", 19)]
    assert "cycle" in findings[0].message


def test_blocking_call_under_hot_lock(findex):
    findings = [f for f in locks.check(findex, hot_locks=("Pair._a",))
                if f.path.name == "lock_cycle.py" and "hot lock" in f.message]
    assert [(f.rule_id, f.line) for f in findings] == [("lock-discipline", 24)]
    assert "Pair._a" in findings[0].message


# -- crash points ------------------------------------------------------------

def test_unregistered_crash_point_flagged_at_call_site(findex):
    findings = crashpoints.check(findex, registry={}, test_sources=[])
    assert [(f.rule_id, f.path.name, f.line) for f in findings] == [
        ("crash-point", "unregistered_crash_point.py", 10)]
    assert "phase9.bogus" in findings[0].message


def test_registered_point_without_site_or_test_reference(findex):
    registry = {"phase9.bogus": (FIXTURES / "unregistered_crash_point.py", 10),
                "ghost.point": (FIXTURES / "unregistered_crash_point.py", 3)}
    findings = crashpoints.check(findex, registry, test_sources=[])
    ghost = [f for f in findings if "ghost.point" in f.message]
    assert {f.line for f in ghost} == {3}
    assert any("no production call site" in f.message for f in ghost)
    # no test source mentions either point
    assert any("referenced by no test" in f.message for f in ghost)
    assert any("referenced by no test" in f.message and "phase9.bogus"
               in f.message for f in findings)


def test_real_tree_lost_test_reference_is_detected(real_index):
    """Dropping the crash matrix from the test set must surface findings."""
    index, config = real_index
    registry = _real_registry(index, config)
    # this file's own literals count as references, so drop it as well
    tests_without_matrix = [
        source for source in _discover_tests(config.test_root)
        if source.path.name not in ("test_crash_matrix.py",
                                    "test_static_analysis.py")]
    findings = crashpoints.check(index, registry, tests_without_matrix)
    lost = [f for f in findings if "commit.begin" in f.message
            and "referenced by no test" in f.message]
    assert lost, "losing the matrix's commit.begin reference must be flagged"


def test_real_tree_unregistered_literal_is_detected(real_index):
    """Removing a point from the registry must flag its production hook."""
    index, config = real_index
    registry = _real_registry(index, config)
    registry.pop("wal.appended")
    findings = crashpoints.check(index, registry,
                                 _discover_tests(config.test_root))
    hits = [f for f in findings if "wal.appended" in f.message
            and "not registered" in f.message]
    assert hits and hits[0].path.name == "update_queue.py"


# -- durability --------------------------------------------------------------

def test_fsyncless_rename_flagged_at_replace_line(findex):
    findings = [f for f in durability.check(findex)
                if f.path.name == "fsyncless_rename.py"]
    assert [(f.rule_id, f.line) for f in findings] == [("durability", 10)]
    assert "without a preceding flush+fsync" in findings[0].message


def test_bare_write_in_durable_module_flagged(findex):
    findings = [f for f in durability.check(
                    findex, durable_modules=("fixtures.fsyncless_rename",))
                if "bare write" in f.message]
    assert [(f.rule_id, f.path.name, f.line) for f in findings] == [
        ("durability", "fsyncless_rename.py", 14)]


# -- memmap hygiene ----------------------------------------------------------

def test_writable_memmap_outside_storage_flagged(findex):
    findings = [f for f in memmaps.check(findex)
                if f.path.name == "writable_memmap.py"]
    assert [(f.rule_id, f.line) for f in findings] == [("memmap-hygiene", 7)]
    assert "mode=r+" in findings[0].message


# -- suppression protocol ----------------------------------------------------

def test_suppression_with_reason_silences_the_finding(findex):
    path = FIXTURES / "suppressed_ok.py"
    findings = [f for f in durability.check(findex) if f.path == path]
    assert [(f.rule_id, f.line) for f in findings] == [("durability", 11)]
    suppressions = {path: collect_suppressions(path, path.read_text())}
    kept, suppressed = apply_suppressions(findings, suppressions)
    assert kept == []
    assert suppressed == 1


def test_suppression_without_reason_is_itself_a_finding():
    path = FIXTURES / "bad_suppression.py"
    entry = collect_suppressions(path, path.read_text())
    assert [(f.rule_id, f.line) for f in entry.findings] == [("suppression", 5)]
    assert "without a reason" in entry.findings[0].message
    # and it suppresses nothing
    assert entry.by_line == {}


def test_suppression_only_matches_its_rule_id():
    path = FIXTURES / "suppressed_ok.py"
    suppressions = collect_suppressions(path, path.read_text())
    assert suppressions.allows(11, "durability")
    assert not suppressions.allows(11, "purity")
    assert not suppressions.allows(10, "durability")


# -- dead imports (advisory) -------------------------------------------------

def test_dead_import_detector_flags_unused_and_spares_used(tmp_path):
    victim = tmp_path / "victim.py"
    victim.write_text("import os\nimport json\n\n\ndef f():\n"
                      "    return json.dumps({})\n")
    index = CodeIndex.build([SourceFile.parse(victim, "fixtures.victim")])
    findings = deadcode.check(index)
    assert [(f.rule_id, f.line) for f in findings] == [("dead-import", 1)]
    assert "'os'" in findings[0].message


# -- the committed tree and the gate wiring ----------------------------------

def test_committed_tree_analyzes_clean():
    report = analyze(REPO_ROOT)
    assert report.is_clean, "\n" + report.render()
    assert report.summary().startswith("invariant lint: clean (5 rules")


def test_rule_ids_match_the_rule_modules():
    assert RULE_IDS == (purity.RULE_ID, locks.RULE_ID, crashpoints.RULE_ID,
                        durability.RULE_ID, memmaps.RULE_ID)


def test_ci_and_perf_suite_run_the_lint():
    ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert "python -m repro.analysis --strict" in ci
    assert "invariant lint: clean (5 rules" in ci  # the must-run guard grep
    perf = (REPO_ROOT / "benchmarks" / "run_perf_suite.py").read_text()
    assert "from repro.analysis" in perf or "repro.analysis" in perf
    assert "--skip-invariant-lint" in perf  # documented escape hatch
