"""Tests for repro.tuples.generator."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_fixed_size_graph, random_knn_graph
from repro.partition.model import build_partitions
from repro.partition.partitioners import ContiguousPartitioner, HashPartitioner
from repro.tuples.generator import (
    brute_force_two_hop_pairs,
    generate_candidate_tuples,
    partition_bridge_tuples,
)


def _bridge_pairs_via_partitions(graph, num_partitions, partitioner=None):
    partitioner = partitioner or ContiguousPartitioner()
    assignment = partitioner.assign(graph, num_partitions)
    partitions = build_partitions(graph, assignment, num_partitions)
    pairs = set()
    for partition in partitions:
        arr = partition_bridge_tuples(partition)
        pairs.update((int(s), int(d)) for s, d in arr if s != d)
    return pairs, assignment, partitions


class TestPartitionBridgeTuples:
    def test_matches_brute_force_two_hop(self, medium_graph):
        pairs, _, _ = _bridge_pairs_via_partitions(medium_graph, 4)
        expected = set(map(tuple, brute_force_two_hop_pairs(medium_graph).tolist()))
        assert pairs == expected

    def test_partitioner_choice_does_not_change_pairs(self, medium_graph):
        contiguous, _, _ = _bridge_pairs_via_partitions(medium_graph, 4, ContiguousPartitioner())
        hashed, _, _ = _bridge_pairs_via_partitions(medium_graph, 4, HashPartitioner())
        assert contiguous == hashed

    def test_empty_partition(self, small_csr):
        assignment = ContiguousPartitioner().assign(small_csr, 2)
        partitions = build_partitions(small_csr, assignment, 2)
        # a partition with no in or out edges yields no pairs
        empty = partitions[0]
        empty.in_edges = np.empty((0, 2), dtype=np.int64)
        assert partition_bridge_tuples(empty).shape == (0, 2)

    def test_max_pairs_per_bridge_caps_output(self):
        graph = random_knn_graph(100, 10, seed=3)
        assignment = ContiguousPartitioner().assign(graph, 2)
        partitions = build_partitions(graph, assignment, 2)
        full = sum(len(partition_bridge_tuples(p)) for p in partitions)
        capped = sum(len(partition_bridge_tuples(p, max_pairs_per_bridge=4))
                     for p in partitions)
        assert capped < full


class TestGenerateCandidateTuples:
    def test_contains_direct_and_two_hop_edges(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        table = generate_candidate_tuples(medium_graph, partitions, assignment)
        stored = set(map(tuple, table.all_tuples().tolist()))
        direct = {(int(s), int(d)) for s, d in medium_graph.edges_array() if s != d}
        two_hop = set(map(tuple, brute_force_two_hop_pairs(medium_graph).tolist()))
        assert stored == direct | two_hop

    def test_exclude_direct_edges(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        table = generate_candidate_tuples(medium_graph, partitions, assignment,
                                          include_direct_edges=False)
        stored = set(map(tuple, table.all_tuples().tolist()))
        assert stored == set(map(tuple, brute_force_two_hop_pairs(medium_graph).tolist()))

    def test_no_self_tuples(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        table = generate_candidate_tuples(medium_graph, partitions, assignment)
        tuples = table.all_tuples()
        assert (tuples[:, 0] != tuples[:, 1]).all()

    def test_number_of_partitions_invariant(self, medium_graph):
        results = []
        for m in (2, 5, 8):
            assignment = ContiguousPartitioner().assign(medium_graph, m)
            partitions = build_partitions(medium_graph, assignment, m)
            table = generate_candidate_tuples(medium_graph, partitions, assignment)
            results.append(set(map(tuple, table.all_tuples().tolist())))
        assert results[0] == results[1] == results[2]


class TestBruteForceTwoHop:
    def test_small_example(self, small_csr):
        pairs = set(map(tuple, brute_force_two_hop_pairs(small_csr).tolist()))
        # edges: 0->1,0->2,1->2,2->0,3->0,3->4,4->3
        # bridges: via 1: (0,2); via 2: (0,0)x,(1,0); via 0: (2,1),(2,2)x,(3,1),(3,2);
        # via 3: (4,0),(4,4)x; via 4: (3,3)x
        assert pairs == {(0, 2), (1, 0), (2, 1), (3, 1), (3, 2), (4, 0)}

    def test_empty_graph(self):
        from repro.graph.digraph import CSRDiGraph
        empty = CSRDiGraph.from_edges(3, [])
        assert brute_force_two_hop_pairs(empty).shape == (0, 2)
