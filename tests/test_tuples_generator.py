"""Tests for repro.tuples.generator."""

import numpy as np
import pytest

from repro.graph.generators import powerlaw_fixed_size_graph, random_knn_graph
from repro.partition.model import build_partitions
from repro.partition.partitioners import ContiguousPartitioner, HashPartitioner
from repro.tuples.generator import (
    brute_force_two_hop_pairs,
    generate_candidate_tuples,
    partition_bridge_tuples,
)


def _bridge_pairs_via_partitions(graph, num_partitions, partitioner=None):
    partitioner = partitioner or ContiguousPartitioner()
    assignment = partitioner.assign(graph, num_partitions)
    partitions = build_partitions(graph, assignment, num_partitions)
    pairs = set()
    for partition in partitions:
        arr = partition_bridge_tuples(partition)
        pairs.update((int(s), int(d)) for s, d in arr if s != d)
    return pairs, assignment, partitions


class TestPartitionBridgeTuples:
    def test_matches_brute_force_two_hop(self, medium_graph):
        pairs, _, _ = _bridge_pairs_via_partitions(medium_graph, 4)
        expected = set(map(tuple, brute_force_two_hop_pairs(medium_graph).tolist()))
        assert pairs == expected

    def test_partitioner_choice_does_not_change_pairs(self, medium_graph):
        contiguous, _, _ = _bridge_pairs_via_partitions(medium_graph, 4, ContiguousPartitioner())
        hashed, _, _ = _bridge_pairs_via_partitions(medium_graph, 4, HashPartitioner())
        assert contiguous == hashed

    def test_empty_partition(self, small_csr):
        assignment = ContiguousPartitioner().assign(small_csr, 2)
        partitions = build_partitions(small_csr, assignment, 2)
        # a partition with no in or out edges yields no pairs
        empty = partitions[0]
        empty.in_edges = np.empty((0, 2), dtype=np.int64)
        assert partition_bridge_tuples(empty).shape == (0, 2)

    def test_max_pairs_per_bridge_caps_output(self):
        graph = random_knn_graph(100, 10, seed=3)
        assignment = ContiguousPartitioner().assign(graph, 2)
        partitions = build_partitions(graph, assignment, 2)
        full = sum(len(partition_bridge_tuples(p)) for p in partitions)
        capped = sum(len(partition_bridge_tuples(p, max_pairs_per_bridge=4))
                     for p in partitions)
        assert capped < full


def _bridge_tuples_scalar_reference(partition, max_pairs_per_bridge=None):
    """The pre-batching per-bridge merge scan, kept as the row-order oracle."""
    in_edges, out_edges = partition.in_edges, partition.out_edges
    if len(in_edges) == 0 or len(out_edges) == 0:
        return np.empty((0, 2), dtype=np.int64)
    in_bridges, out_bridges = in_edges[:, 1], out_edges[:, 0]
    chunks = []
    i = j = 0
    while i < len(in_edges) and j < len(out_edges):
        if in_bridges[i] < out_bridges[j]:
            i += 1
            continue
        if in_bridges[i] > out_bridges[j]:
            j += 1
            continue
        bridge = in_bridges[i]
        i_end, j_end = i, j
        while i_end < len(in_edges) and in_bridges[i_end] == bridge:
            i_end += 1
        while j_end < len(out_edges) and out_bridges[j_end] == bridge:
            j_end += 1
        sources = in_edges[i:i_end, 0]
        destinations = out_edges[j:j_end, 1]
        if (max_pairs_per_bridge is not None
                and len(sources) * len(destinations) > max_pairs_per_bridge):
            keep_s = max(1, int(np.sqrt(max_pairs_per_bridge)))
            keep_d = max(1, max_pairs_per_bridge // keep_s)
            sources = sources[:keep_s]
            destinations = destinations[:keep_d]
        chunks.append(np.column_stack([np.repeat(sources, len(destinations)),
                                       np.tile(destinations, len(sources))]))
        i, j = i_end, j_end
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(chunks, axis=0)


class TestBatchedCrossProductsMatchScalarScan:
    """The batched repeat/gather pass must reproduce the per-bridge scan
    *row for row* (same pairs, same order, same per-bridge truncation)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("cap", [None, 1, 4, 17])
    def test_row_exact_parity(self, seed, cap):
        graph = random_knn_graph(120, 6, seed=seed)
        for partitioner in (ContiguousPartitioner(), HashPartitioner()):
            assignment = partitioner.assign(graph, 4)
            partitions = build_partitions(graph, assignment, 4)
            for partition in partitions:
                got = partition_bridge_tuples(partition, max_pairs_per_bridge=cap)
                expected = _bridge_tuples_scalar_reference(
                    partition, max_pairs_per_bridge=cap)
                np.testing.assert_array_equal(got, expected)

    def test_power_law_hubs_row_exact(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 3)
        partitions = build_partitions(medium_graph, assignment, 3)
        for partition in partitions:
            for cap in (None, 9):
                np.testing.assert_array_equal(
                    partition_bridge_tuples(partition, max_pairs_per_bridge=cap),
                    _bridge_tuples_scalar_reference(partition,
                                                    max_pairs_per_bridge=cap))


class TestGenerateCandidateTuples:
    def test_contains_direct_and_two_hop_edges(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        table = generate_candidate_tuples(medium_graph, partitions, assignment)
        stored = set(map(tuple, table.all_tuples().tolist()))
        direct = {(int(s), int(d)) for s, d in medium_graph.edges_array() if s != d}
        two_hop = set(map(tuple, brute_force_two_hop_pairs(medium_graph).tolist()))
        assert stored == direct | two_hop

    def test_exclude_direct_edges(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        table = generate_candidate_tuples(medium_graph, partitions, assignment,
                                          include_direct_edges=False)
        stored = set(map(tuple, table.all_tuples().tolist()))
        assert stored == set(map(tuple, brute_force_two_hop_pairs(medium_graph).tolist()))

    def test_no_self_tuples(self, medium_graph):
        assignment = ContiguousPartitioner().assign(medium_graph, 4)
        partitions = build_partitions(medium_graph, assignment, 4)
        table = generate_candidate_tuples(medium_graph, partitions, assignment)
        tuples = table.all_tuples()
        assert (tuples[:, 0] != tuples[:, 1]).all()

    def test_number_of_partitions_invariant(self, medium_graph):
        results = []
        for m in (2, 5, 8):
            assignment = ContiguousPartitioner().assign(medium_graph, m)
            partitions = build_partitions(medium_graph, assignment, m)
            table = generate_candidate_tuples(medium_graph, partitions, assignment)
            results.append(set(map(tuple, table.all_tuples().tolist())))
        assert results[0] == results[1] == results[2]


class TestBruteForceTwoHop:
    def test_small_example(self, small_csr):
        pairs = set(map(tuple, brute_force_two_hop_pairs(small_csr).tolist()))
        # edges: 0->1,0->2,1->2,2->0,3->0,3->4,4->3
        # bridges: via 1: (0,2); via 2: (0,0)x,(1,0); via 0: (2,1),(2,2)x,(3,1),(3,2);
        # via 3: (4,0),(4,4)x; via 4: (3,3)x
        assert pairs == {(0, 2), (1, 0), (2, 1), (3, 1), (3, 2), (4, 0)}

    def test_empty_graph(self):
        from repro.graph.digraph import CSRDiGraph
        empty = CSRDiGraph.from_edges(3, [])
        assert brute_force_two_hop_pairs(empty).shape == (0, 2)
