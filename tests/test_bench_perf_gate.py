"""Tests for the CI perf-regression comparator (benchmarks/check_perf_regression.py)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_perf_regression import (MIN_SKIP_RATE, PHASE4_KEY,
                                   RESUME_RSS_SLACK_KB, RESUME_RSS_TOLERANCE,
                                   SHARDED_MIN_SPEEDUP,
                                   SHARDED_SPEEDUP_MIN_CPUS,
                                   compare_backend_sweep,
                                   compare_dirty_scheduling,
                                   compare_fingerprints,
                                   compare_incremental_parity, compare_phase4,
                                   compare_phase24, compare_phase45,
                                   compare_recovery, compare_resume,
                                   compare_resume_rss, compare_serving,
                                   compare_sharded)


def _report(phase4_seconds, fingerprint="abc", phase45_seconds=None,
            phase24_seconds=None, parity=None, cpu_count=None,
            backend_sweep=None):
    report = {"pipeline": {"phase_seconds": {PHASE4_KEY: phase4_seconds},
                           "graph_fingerprint": fingerprint}}
    update = {}
    if phase45_seconds is not None:
        update["phase45_seconds"] = phase45_seconds
    if phase24_seconds is not None:
        update["phase24_seconds"] = phase24_seconds
    if parity is not None:
        update["incremental_fingerprints_match"] = parity
    if update:
        report["update_workload"] = update
    if cpu_count is not None:
        report["cpu_count"] = cpu_count
    if backend_sweep is not None:
        report["backend_sweep"] = backend_sweep
    return report


def _sweep_row(backend, phase4_seconds, workers=4, num_users=2000):
    return {"num_users": num_users, "backend": backend, "workers": workers,
            "phase4_seconds": phase4_seconds}


class TestComparePhase4:
    def test_within_tolerance_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(1.15), tolerance=0.20)
        assert ok

    def test_improvement_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(0.4), tolerance=0.20)
        assert ok

    def test_regression_beyond_tolerance_fails(self):
        ok, message = compare_phase4(_report(1.0), _report(1.3), tolerance=0.20)
        assert not ok
        assert "REGRESSION" in message

    def test_boundary_exactly_at_tolerance_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(1.2), tolerance=0.20)
        assert ok

    def test_zero_baseline_does_not_divide(self):
        ok, _ = compare_phase4(_report(0.0), _report(1.0), tolerance=0.20)
        assert ok


class TestComparePhase45:
    def test_within_tolerance_passes(self):
        ok, _ = compare_phase45(_report(1.0, phase45_seconds=5.0),
                                _report(1.0, phase45_seconds=5.5), tolerance=0.20)
        assert ok

    def test_regression_beyond_tolerance_fails(self):
        ok, message = compare_phase45(_report(1.0, phase45_seconds=5.0),
                                      _report(1.0, phase45_seconds=6.5),
                                      tolerance=0.20)
        assert not ok
        assert "REGRESSION" in message

    def test_missing_baseline_section_skips(self):
        """Old baselines (pre-update-workload) must not fail the gate."""
        ok, message = compare_phase45(_report(1.0),
                                      _report(1.0, phase45_seconds=6.5),
                                      tolerance=0.20)
        assert ok
        assert "skipped" in message

    def test_missing_fresh_section_fails(self):
        """HEAD always emits the section; a missing one means the bench broke."""
        ok, message = compare_phase45(_report(1.0, phase45_seconds=5.0),
                                      _report(1.0), tolerance=0.20)
        assert not ok
        assert "FRESH" in message

    def test_missing_fresh_key_fails(self):
        """A present section without the gated key must not read as a pass."""
        baseline = _report(1.0, phase45_seconds=5.0)
        fresh = _report(1.0)
        fresh["update_workload"] = {"dense": {}, "sparse": {}}
        ok, message = compare_phase45(baseline, fresh, tolerance=0.20)
        assert not ok
        assert "phase45_seconds" in message

    def test_zero_baseline_does_not_divide(self):
        ok, _ = compare_phase45(_report(1.0, phase45_seconds=0.0),
                                _report(1.0, phase45_seconds=1.0), tolerance=0.20)
        assert ok


class TestComparePhase24:
    def test_regression_beyond_tolerance_fails(self):
        ok, message = compare_phase24(_report(1.0, phase24_seconds=5.0),
                                      _report(1.0, phase24_seconds=6.5),
                                      tolerance=0.20)
        assert not ok
        assert "REGRESSION" in message

    def test_within_tolerance_passes(self):
        ok, _ = compare_phase24(_report(1.0, phase24_seconds=5.0),
                                _report(1.0, phase24_seconds=5.4),
                                tolerance=0.20)
        assert ok

    def test_old_baseline_skips(self):
        ok, message = compare_phase24(_report(1.0),
                                      _report(1.0, phase24_seconds=9.0),
                                      tolerance=0.20)
        assert ok
        assert "skipped" in message

    def test_old_fresh_report_skips(self):
        ok, message = compare_phase24(_report(1.0, phase24_seconds=5.0),
                                      _report(1.0), tolerance=0.20)
        assert ok
        assert "skipped" in message


class TestIncrementalParity:
    def test_matching_fingerprints_pass(self):
        ok, _ = compare_incremental_parity(_report(1.0, parity=True))
        assert ok

    def test_diverging_fingerprints_fail(self):
        ok, message = compare_incremental_parity(_report(1.0, parity=False))
        assert not ok
        assert "DIVERGE" in message

    def test_pre_incremental_report_skips(self):
        ok, message = compare_incremental_parity(_report(1.0))
        assert ok
        assert "skipped" in message


class TestCompareResume:
    @staticmethod
    def _resume_section(full_copy=False, matches=True, linked=1000,
                        linkable=1000):
        return {"resume": {"full_profile_copy": full_copy,
                           "resumed_fingerprint_matches": matches,
                           "linked_files": 8, "linked_bytes": linked,
                           "linkable_bytes": linkable, "copied_bytes": 64,
                           "resume_seconds": 0.01, "peak_rss_kb_delta": 128}}

    def test_zero_copy_resume_passes(self):
        ok, message = compare_resume(self._resume_section())
        assert ok
        assert "hard-linked" in message

    def test_materialised_copy_fails(self):
        ok, message = compare_resume(self._resume_section(full_copy=True,
                                                          linked=0))
        assert not ok
        assert "MATERIALISED" in message

    def test_fingerprint_divergence_fails(self):
        ok, message = compare_resume(self._resume_section(matches=False))
        assert not ok
        assert "DIVERGES" in message

    def test_missing_fresh_section_fails(self):
        """HEAD's suite always emits the section; losing it must not read
        as a silent pass."""
        ok, message = compare_resume(_report(1.0))
        assert not ok
        assert "FRESH" in message


class TestCompareResumeRss:
    """The resume peak-RSS gate: ratio-plus-slack, baseline-skippable."""

    @staticmethod
    def _with_rss(delta):
        return {"resume": {"peak_rss_kb_delta": delta}}

    def test_unchanged_rss_passes(self):
        ok, message = compare_resume_rss(self._with_rss(37728),
                                         self._with_rss(37728))
        assert ok
        assert "within limit" in message

    def test_growth_within_limit_passes(self):
        baseline = 37728
        limit = baseline * (1.0 + RESUME_RSS_TOLERANCE) + RESUME_RSS_SLACK_KB
        ok, _ = compare_resume_rss(self._with_rss(baseline),
                                   self._with_rss(int(limit)))
        assert ok

    def test_growth_beyond_limit_fails(self):
        baseline = 37728
        limit = baseline * (1.0 + RESUME_RSS_TOLERANCE) + RESUME_RSS_SLACK_KB
        ok, message = compare_resume_rss(self._with_rss(baseline),
                                         self._with_rss(int(limit) + 1))
        assert not ok
        assert "REGRESSION" in message

    def test_small_baseline_protected_by_absolute_slack(self):
        """RSS noise on a tiny baseline must not trip the ratio alone."""
        ok, _ = compare_resume_rss(self._with_rss(100),
                                   self._with_rss(100 + RESUME_RSS_SLACK_KB))
        assert ok

    def test_old_baseline_skips(self):
        ok, message = compare_resume_rss({"resume": {}},
                                         self._with_rss(999999))
        assert ok
        assert "skipped" in message

    def test_missing_fresh_value_fails(self):
        """The bench dropping the measurement must not read as a pass."""
        ok, message = compare_resume_rss(self._with_rss(37728),
                                         {"resume": {}})
        assert not ok
        assert "FRESH" in message


class TestCompareServing:
    """The serving load-bench gate: availability, isolation, backpressure."""

    @staticmethod
    def _section(failures=0, isolation=True, shed=28200,
                 during_refresh=815067, min_refresh=2.39):
        return {"serving": {
            "queries": 843435,
            "query_failures": failures,
            "queries_during_refresh": during_refresh,
            "p99_sustained_seconds": 1.2e-05,
            "p99_burst_seconds": 1.2e-05,
            "min_refresh_seconds": min_refresh,
            "burst_shed_changes": shed,
            "snapshot_isolation_proven": isolation,
        }}

    def test_healthy_section_passes(self):
        ok, message = compare_serving(self._section())
        assert ok
        assert "0 failed" in message
        assert "shed" in message

    def test_missing_section_fails(self):
        ok, message = compare_serving({})
        assert not ok
        assert "FRESH" in message

    def test_any_failed_read_fails(self):
        ok, message = compare_serving(self._section(failures=1))
        assert not ok
        assert "failed reads" in message

    def test_missing_failure_count_fails(self):
        """A section without the SLO counter must not read as zero failures."""
        section = self._section()
        del section["serving"]["query_failures"]
        ok, _ = compare_serving(section)
        assert not ok

    def test_unproven_isolation_fails(self):
        ok, message = compare_serving(self._section(isolation=False))
        assert not ok
        assert "UNPROVEN" in message

    def test_nothing_shed_fails(self):
        ok, message = compare_serving(self._section(shed=0))
        assert not ok
        assert "shed nothing" in message


class TestCompareRecovery:
    @staticmethod
    def _recovery_section(matches=True):
        return {"recovery": {"recovered_fingerprint_matches": matches,
                             "recover_seconds": 0.05, "wal_replayed": 100,
                             "resumed_at_iteration": 2}}

    def test_matching_recovery_passes(self):
        ok, message = compare_recovery(self._recovery_section())
        assert ok
        assert "fingerprint matches" in message

    def test_fingerprint_divergence_fails(self):
        ok, message = compare_recovery(self._recovery_section(matches=False))
        assert not ok
        assert "DIVERGES" in message

    def test_missing_fresh_section_fails(self):
        """HEAD's suite always emits the section; losing it must not read
        as a silent pass."""
        ok, message = compare_recovery(_report(1.0))
        assert not ok
        assert "FRESH" in message


class TestBackendSweepCpuAware:
    def test_process_rows_skipped_on_cpu_mismatch(self):
        """A 1-core container must not gate process rows against a multicore
        baseline (the rows measure different things)."""
        baseline = _report(1.0, cpu_count=8,
                           backend_sweep=[_sweep_row("process", 0.5)])
        fresh = _report(1.0, cpu_count=1,
                        backend_sweep=[_sweep_row("process", 2.0)])
        ok, messages = compare_backend_sweep(baseline, fresh, tolerance=0.20)
        assert ok  # 4x slower, but skipped — not a regression verdict
        assert any("skipped" in m and "cpu_count" in m for m in messages)

    def test_process_rows_gated_on_matching_cpu(self):
        baseline = _report(1.0, cpu_count=4,
                           backend_sweep=[_sweep_row("process", 0.5)])
        fresh = _report(1.0, cpu_count=4,
                        backend_sweep=[_sweep_row("process", 2.0)])
        ok, messages = compare_backend_sweep(baseline, fresh, tolerance=0.20)
        assert not ok
        assert any("REGRESSION" in m for m in messages)

    def test_thread_pool_rows_skipped_on_cpu_mismatch(self):
        """GIL-releasing thread pools are as core-count-dependent as the
        process pool; their rows must skip on mismatch too."""
        baseline = _report(1.0, cpu_count=8,
                           backend_sweep=[_sweep_row("thread", 0.5)])
        fresh = _report(1.0, cpu_count=1,
                        backend_sweep=[_sweep_row("thread", 2.0)])
        ok, messages = compare_backend_sweep(baseline, fresh, tolerance=0.20)
        assert ok
        assert any("skipped" in m for m in messages)

    def test_serial_rows_gated_despite_cpu_mismatch(self):
        baseline = _report(1.0, cpu_count=8,
                           backend_sweep=[_sweep_row("serial", 0.5, workers=1)])
        fresh = _report(1.0, cpu_count=1,
                        backend_sweep=[_sweep_row("serial", 2.0, workers=1)])
        ok, _ = compare_backend_sweep(baseline, fresh, tolerance=0.20)
        assert not ok

    def test_quick_reports_without_sweep_skip(self):
        ok, messages = compare_backend_sweep(_report(1.0), _report(1.0),
                                             tolerance=0.20)
        assert ok
        assert any("skipped" in m for m in messages)


class TestCompareDirtyScheduling:
    """The dirty-scheduling gate: parity is hard-failed, never warned."""

    @staticmethod
    def _section(fingerprints=True, profiles=True, skip_rate=0.78):
        return {"dirty_scheduling": {
            "fingerprints_match": fingerprints,
            "profiles_match": profiles,
            "min_skip_rate": skip_rate,
            "phase4_seconds_full": 1.0,
            "phase4_seconds_dirty": 0.4,
        }}

    def test_matching_section_passes(self):
        ok, message = compare_dirty_scheduling(self._section())
        assert ok
        assert "skip rate" in message

    def test_missing_section_fails(self):
        ok, message = compare_dirty_scheduling({})
        assert not ok
        assert "missing" in message

    def test_fingerprint_divergence_fails(self):
        ok, message = compare_dirty_scheduling(self._section(fingerprints=False))
        assert not ok
        assert "DIVERGE" in message

    def test_profile_byte_divergence_fails(self):
        ok, message = compare_dirty_scheduling(self._section(profiles=False))
        assert not ok
        assert "profile bytes" in message

    def test_skip_rate_below_floor_fails(self):
        ok, message = compare_dirty_scheduling(
            self._section(skip_rate=MIN_SKIP_RATE - 0.01))
        assert not ok
        assert "skip rate" in message

    def test_exactly_at_the_floor_passes(self):
        ok, _ = compare_dirty_scheduling(self._section(skip_rate=MIN_SKIP_RATE))
        assert ok

    def test_missing_skip_rate_fails(self):
        ok, _ = compare_dirty_scheduling(self._section(skip_rate=None))
        assert not ok


class TestCompareSharded:
    """The shard-parallel gate: parity and budget hard-fail everywhere;
    the speedup clause is cpu-aware like the backend sweep."""

    @staticmethod
    def _fresh(fingerprints=True, profiles=True, within_budget=True,
               speedup=2.4, cpu_count=8, million=None):
        report = {"cpu_count": cpu_count,
                  "sharded": {
                      "fingerprints_match": fingerprints,
                      "profiles_match": profiles,
                      "within_budget": within_budget,
                      "process_speedup_over_thread": speedup,
                      "phase4_seconds_thread": 1.0,
                      "phase4_seconds_process": 1.0 / speedup if speedup
                      else None,
                  }}
        if million is not None:
            report["sharded_million"] = million
        return report

    def test_healthy_section_passes(self):
        ok, message = compare_sharded(self._fresh())
        assert ok
        assert "bit-identical" in message

    def test_missing_section_fails(self):
        ok, message = compare_sharded({})
        assert not ok
        assert "FRESH" in message

    def test_fingerprint_divergence_fails(self):
        ok, message = compare_sharded(self._fresh(fingerprints=False))
        assert not ok
        assert "DIVERGE" in message

    def test_profile_byte_divergence_fails(self):
        ok, message = compare_sharded(self._fresh(profiles=False))
        assert not ok
        assert "profile bytes" in message

    def test_budget_breach_fails(self):
        ok, message = compare_sharded(self._fresh(within_budget=False))
        assert not ok
        assert "budget" in message

    def test_slow_process_on_multicore_fails(self):
        ok, message = compare_sharded(
            self._fresh(speedup=SHARDED_MIN_SPEEDUP - 0.1,
                        cpu_count=SHARDED_SPEEDUP_MIN_CPUS))
        assert not ok
        assert "speedup" in message

    def test_exactly_at_the_speedup_floor_passes(self):
        ok, _ = compare_sharded(
            self._fresh(speedup=SHARDED_MIN_SPEEDUP,
                        cpu_count=SHARDED_SPEEDUP_MIN_CPUS))
        assert ok

    def test_slow_process_on_one_core_skips_honestly(self):
        """A 1-core container measures pool overhead, not parallelism —
        the speedup clause must skip with an explicit message, never fake
        a multicore verdict (pass or fail)."""
        ok, message = compare_sharded(self._fresh(speedup=0.74, cpu_count=1))
        assert ok
        assert "skipped" in message
        assert "cpu_count=1" in message

    def test_missing_speedup_on_multicore_fails(self):
        """The bench dropping the measurement must not read as a pass
        when the machine could have measured it."""
        ok, _ = compare_sharded(
            self._fresh(speedup=None, cpu_count=SHARDED_SPEEDUP_MIN_CPUS))
        assert not ok

    def test_parity_still_gated_on_one_core(self):
        """Honest speedup skipping must not weaken the parity clauses."""
        ok, message = compare_sharded(
            self._fresh(fingerprints=False, cpu_count=1))
        assert not ok
        assert "DIVERGE" in message

    def test_million_tier_within_budget_passes(self):
        million = {"within_budget": True, "peak_worker_bytes": 2000000,
                   "worker_budget_bytes": 8000000, "phase4_seconds": 68.7}
        ok, message = compare_sharded(self._fresh(million=million))
        assert ok
        assert "1M-user tier ok" in message

    def test_million_tier_budget_breach_fails(self):
        million = {"within_budget": False, "peak_worker_bytes": 9000000,
                   "worker_budget_bytes": 8000000}
        ok, message = compare_sharded(self._fresh(million=million))
        assert not ok
        assert "1M-user" in message

    def test_absent_million_tier_is_not_required(self):
        """--quick runs do not carry the tier; its absence must not fail."""
        ok, message = compare_sharded(self._fresh(million=None))
        assert ok
        assert "1M-user" not in message


class TestCompareFingerprints:
    def test_unchanged(self):
        same, _ = compare_fingerprints(_report(1.0, "aaa"), _report(1.0, "aaa"))
        assert same

    def test_changed_is_flagged(self):
        same, message = compare_fingerprints(_report(1.0, "aaa"), _report(1.0, "bbb"))
        assert not same
        assert "CHANGED" in message
