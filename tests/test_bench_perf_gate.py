"""Tests for the CI perf-regression comparator (benchmarks/check_perf_regression.py)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_perf_regression import PHASE4_KEY, compare_fingerprints, compare_phase4


def _report(phase4_seconds, fingerprint="abc"):
    return {"pipeline": {"phase_seconds": {PHASE4_KEY: phase4_seconds},
                         "graph_fingerprint": fingerprint}}


class TestComparePhase4:
    def test_within_tolerance_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(1.15), tolerance=0.20)
        assert ok

    def test_improvement_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(0.4), tolerance=0.20)
        assert ok

    def test_regression_beyond_tolerance_fails(self):
        ok, message = compare_phase4(_report(1.0), _report(1.3), tolerance=0.20)
        assert not ok
        assert "REGRESSION" in message

    def test_boundary_exactly_at_tolerance_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(1.2), tolerance=0.20)
        assert ok

    def test_zero_baseline_does_not_divide(self):
        ok, _ = compare_phase4(_report(0.0), _report(1.0), tolerance=0.20)
        assert ok


class TestCompareFingerprints:
    def test_unchanged(self):
        same, _ = compare_fingerprints(_report(1.0, "aaa"), _report(1.0, "aaa"))
        assert same

    def test_changed_is_flagged(self):
        same, message = compare_fingerprints(_report(1.0, "aaa"), _report(1.0, "bbb"))
        assert not same
        assert "CHANGED" in message
