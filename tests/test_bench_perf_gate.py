"""Tests for the CI perf-regression comparator (benchmarks/check_perf_regression.py)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_perf_regression import (PHASE4_KEY, compare_fingerprints,
                                   compare_phase4, compare_phase45)


def _report(phase4_seconds, fingerprint="abc", phase45_seconds=None):
    report = {"pipeline": {"phase_seconds": {PHASE4_KEY: phase4_seconds},
                           "graph_fingerprint": fingerprint}}
    if phase45_seconds is not None:
        report["update_workload"] = {"phase45_seconds": phase45_seconds}
    return report


class TestComparePhase4:
    def test_within_tolerance_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(1.15), tolerance=0.20)
        assert ok

    def test_improvement_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(0.4), tolerance=0.20)
        assert ok

    def test_regression_beyond_tolerance_fails(self):
        ok, message = compare_phase4(_report(1.0), _report(1.3), tolerance=0.20)
        assert not ok
        assert "REGRESSION" in message

    def test_boundary_exactly_at_tolerance_passes(self):
        ok, _ = compare_phase4(_report(1.0), _report(1.2), tolerance=0.20)
        assert ok

    def test_zero_baseline_does_not_divide(self):
        ok, _ = compare_phase4(_report(0.0), _report(1.0), tolerance=0.20)
        assert ok


class TestComparePhase45:
    def test_within_tolerance_passes(self):
        ok, _ = compare_phase45(_report(1.0, phase45_seconds=5.0),
                                _report(1.0, phase45_seconds=5.5), tolerance=0.20)
        assert ok

    def test_regression_beyond_tolerance_fails(self):
        ok, message = compare_phase45(_report(1.0, phase45_seconds=5.0),
                                      _report(1.0, phase45_seconds=6.5),
                                      tolerance=0.20)
        assert not ok
        assert "REGRESSION" in message

    def test_missing_baseline_section_skips(self):
        """Old baselines (pre-update-workload) must not fail the gate."""
        ok, message = compare_phase45(_report(1.0),
                                      _report(1.0, phase45_seconds=6.5),
                                      tolerance=0.20)
        assert ok
        assert "skipped" in message

    def test_missing_fresh_section_fails(self):
        """HEAD always emits the section; a missing one means the bench broke."""
        ok, message = compare_phase45(_report(1.0, phase45_seconds=5.0),
                                      _report(1.0), tolerance=0.20)
        assert not ok
        assert "FRESH" in message

    def test_missing_fresh_key_fails(self):
        """A present section without the gated key must not read as a pass."""
        baseline = _report(1.0, phase45_seconds=5.0)
        fresh = _report(1.0)
        fresh["update_workload"] = {"dense": {}, "sparse": {}}
        ok, message = compare_phase45(baseline, fresh, tolerance=0.20)
        assert not ok
        assert "phase45_seconds" in message

    def test_zero_baseline_does_not_divide(self):
        ok, _ = compare_phase45(_report(1.0, phase45_seconds=0.0),
                                _report(1.0, phase45_seconds=1.0), tolerance=0.20)
        assert ok


class TestCompareFingerprints:
    def test_unchanged(self):
        same, _ = compare_fingerprints(_report(1.0, "aaa"), _report(1.0, "aaa"))
        assert same

    def test_changed_is_flagged(self):
        same, message = compare_fingerprints(_report(1.0, "aaa"), _report(1.0, "bbb"))
        assert not same
        assert "CHANGED" in message
