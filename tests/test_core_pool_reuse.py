"""Persistent scoring pool: reuse across iterations, parity across updates.

The engine now keeps one :class:`ProcessScoringPool` alive for a whole run;
workers invalidate their cached mmap slices through the profile store's
``generation`` counter after every phase-5 update batch.  These tests pin

* that the pool object really is reused across iterations (the amortisation
  the ISSUE asks for),
* that graph fingerprints stay identical across serial / thread / process
  backends *while profiles change between iterations* — stale worker caches
  would break this instantly,
* the single-worker and no-fork fallbacks to in-process scoring.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.parallel import ProcessScoringPool, score_tuples
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)
from repro.storage.profile_store import OnDiskProfileStore

NUM_USERS = 150


def _dense_feed(rng, dim=8, num_users=NUM_USERS):
    def feed(_iteration):
        users = rng.choice(num_users, size=12, replace=False)
        return [ProfileChange(user=int(u), kind="set", vector=rng.random(dim))
                for u in users]
    return feed


def _sparse_feed(rng):
    def feed(_iteration):
        users = rng.choice(NUM_USERS, size=12, replace=False)
        return [ProfileChange(user=int(u), kind="add",
                              item=int(rng.integers(0, 200)))
                for u in users]
    return feed


def _run_fingerprints(profiles, feed_factory, **overrides):
    config = EngineConfig(k=5, num_partitions=4, heuristic="degree-low-high",
                          seed=17, **overrides)
    rng = np.random.default_rng(99)
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=3, profile_change_feed=feed_factory(rng))
    return [result.graph.edge_fingerprint() for result in run.iterations]


class TestPoolReuseParityAcrossUpdates:
    def test_dense_backends_identical_under_churn(self):
        profiles = generate_dense_profiles(NUM_USERS, dim=8, num_communities=4,
                                           seed=23)
        serial = _run_fingerprints(profiles, _dense_feed, backend="serial")
        threaded = _run_fingerprints(profiles, _dense_feed, backend="thread",
                                     num_threads=3)
        process = _run_fingerprints(profiles, _dense_feed, backend="process",
                                    num_workers=3)
        assert serial == threaded == process

    def test_sparse_backends_identical_under_churn(self):
        """Sparse updates replace journal/segment files — the hard case for
        worker caches: a stale mmap would change scores or crash."""
        profiles = generate_sparse_profiles(NUM_USERS, 200, items_per_user=10,
                                            num_communities=4, seed=23)
        serial = _run_fingerprints(profiles, _sparse_feed, backend="serial")
        process = _run_fingerprints(profiles, _sparse_feed, backend="process",
                                    num_workers=3)
        assert serial == process

    def test_pool_object_survives_iterations(self):
        profiles = generate_dense_profiles(80, dim=6, num_communities=3, seed=29)
        config = EngineConfig(k=4, num_partitions=4, backend="process",
                              num_workers=2, seed=5)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            pool_first = engine._iteration_runner._pool
            assert pool_first is not None
            engine.enqueue_profile_changes(
                [ProfileChange(user=0, kind="set", vector=np.ones(6))])
            engine.run_iteration()
            assert engine._iteration_runner._pool is pool_first
        # close() shut the pool down and dropped it
        assert engine._iteration_runner._pool is None

    def test_single_worker_skips_pool_with_warning(self, caplog):
        profiles = generate_dense_profiles(80, dim=6, num_communities=3, seed=31)
        config = EngineConfig(k=4, num_partitions=4, backend="process",
                              num_workers=1, seed=5)
        with caplog.at_level(logging.WARNING, logger="repro.core.iteration"):
            with KNNEngine(profiles, config) as engine:
                engine.run_iteration()
                assert engine._iteration_runner._pool is None
                engine.run_iteration()
        warnings = [record for record in caplog.records
                    if "skipping the worker pool" in record.message]
        assert len(warnings) == 1  # warned once, not per iteration

    def test_single_worker_fallback_matches_serial(self):
        profiles = generate_dense_profiles(80, dim=6, num_communities=3, seed=31)
        feed = lambda rng: _dense_feed(rng, dim=6, num_users=80)
        serial = _run_fingerprints(profiles, feed, backend="serial")
        fallback = _run_fingerprints(profiles, feed, backend="process",
                                     num_workers=1)
        assert serial == fallback

    def test_score_tuples_generation_invalidates_worker_cache(self, tmp_path):
        """The public score_tuples process path must not serve pre-update
        scores from a worker's span-keyed slice cache after apply_changes."""
        profiles = generate_dense_profiles(40, dim=6, num_communities=2, seed=3)
        store = OnDiskProfileStore.create(tmp_path, profiles,
                                          disk_model="instant")
        pairs = np.array([[0, 1], [2, 3], [0, 3]], dtype=np.int64)
        with ProcessScoringPool(store, num_workers=2) as pool:
            piece = store.load_users(range(40))
            before = score_tuples(piece, pairs, "cosine", backend="process",
                                  pool=pool, generation=store.generation)
            np.testing.assert_array_equal(
                before, piece.similarity_pairs(pairs, "cosine"))
            store.apply_changes([ProfileChange(user=0, kind="set",
                                               vector=np.ones(6))])
            reloaded = store.load_users(range(40))
            after = score_tuples(reloaded, pairs, "cosine", backend="process",
                                 pool=pool, generation=store.generation)
            np.testing.assert_array_equal(
                after, reloaded.similarity_pairs(pairs, "cosine"))
            assert not np.array_equal(before, after)

    def test_no_fork_platform_falls_back(self, monkeypatch):
        import repro.core.iteration as iteration_module
        monkeypatch.setattr(iteration_module, "fork_available", lambda: False)
        profiles = generate_dense_profiles(80, dim=6, num_communities=3, seed=37)
        config = EngineConfig(k=4, num_partitions=4, backend="process",
                              num_workers=4, seed=5)
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            assert engine._iteration_runner._pool is None
        feed = lambda rng: _dense_feed(rng, dim=6, num_users=80)
        serial = _run_fingerprints(profiles, feed, backend="serial")
        fallback = _run_fingerprints(profiles, feed,
                                     backend="process", num_workers=4)
        assert serial == fallback
