"""Tests for repro.graph.digraph."""

import numpy as np
import pytest

from repro.graph.digraph import CSRDiGraph, DiGraph, degree_histogram


class TestDiGraphBasics:
    def test_empty_graph(self):
        graph = DiGraph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_edge_and_query(self, small_digraph):
        assert small_digraph.num_vertices == 5
        assert small_digraph.num_edges == 7
        assert small_digraph.has_edge(0, 1)
        assert not small_digraph.has_edge(1, 0)

    def test_add_duplicate_edge_is_noop(self, small_digraph):
        assert small_digraph.add_edge(0, 1) is False
        assert small_digraph.num_edges == 7

    def test_remove_edge(self, small_digraph):
        assert small_digraph.remove_edge(0, 1) is True
        assert small_digraph.num_edges == 6
        assert small_digraph.remove_edge(0, 1) is False

    def test_degrees(self, small_digraph):
        assert small_digraph.out_degree(0) == 2
        assert small_digraph.in_degree(0) == 2
        assert small_digraph.degree(0) == 4

    def test_neighbors(self, small_digraph):
        assert small_digraph.out_neighbors(0) == {1, 2}
        assert small_digraph.in_neighbors(2) == {0, 1}

    def test_vertex_out_of_range(self, small_digraph):
        with pytest.raises(IndexError):
            small_digraph.add_edge(0, 10)
        with pytest.raises(IndexError):
            small_digraph.out_neighbors(-1)

    def test_add_vertex(self, small_digraph):
        new_id = small_digraph.add_vertex()
        assert new_id == 5
        assert small_digraph.out_degree(new_id) == 0

    def test_copy_is_independent(self, small_digraph):
        clone = small_digraph.copy()
        clone.add_edge(4, 0)
        assert not small_digraph.has_edge(4, 0)
        assert small_digraph == small_digraph.copy()

    def test_set_out_neighbors_replaces(self, small_digraph):
        small_digraph.set_out_neighbors(0, [3, 4])
        assert small_digraph.out_neighbors(0) == {3, 4}
        assert 0 in small_digraph.in_neighbors(3)
        assert 0 not in small_digraph.in_neighbors(1)

    def test_set_out_neighbors_drops_self_loop(self, small_digraph):
        small_digraph.set_out_neighbors(0, [0, 1])
        assert small_digraph.out_neighbors(0) == {1}

    def test_set_out_neighbors_edge_count(self, small_digraph):
        before = small_digraph.num_edges
        small_digraph.set_out_neighbors(0, [1])  # was {1, 2}
        assert small_digraph.num_edges == before - 1

    def test_edges_sorted(self, small_digraph):
        edges = list(small_digraph.edges())
        assert edges == sorted(edges)

    def test_degree_arrays(self, small_digraph):
        out = small_digraph.out_degree_array()
        assert out.sum() == small_digraph.num_edges
        assert small_digraph.in_degree_array().sum() == small_digraph.num_edges

    def test_from_edges_roundtrip(self, small_digraph):
        rebuilt = DiGraph.from_edges(5, small_digraph.edges())
        assert rebuilt == small_digraph


class TestCSRDiGraph:
    def test_from_digraph_matches(self, small_digraph):
        csr = small_digraph.to_csr()
        assert csr.num_vertices == small_digraph.num_vertices
        assert csr.num_edges == small_digraph.num_edges
        for v in range(5):
            assert set(csr.out_neighbors(v)) == small_digraph.out_neighbors(v)
            assert set(csr.in_neighbors(v)) == small_digraph.in_neighbors(v)

    def test_from_edges_dedupes(self):
        csr = CSRDiGraph.from_edges(3, [(0, 1), (0, 1), (1, 2)])
        assert csr.num_edges == 2

    def test_from_edges_empty(self):
        csr = CSRDiGraph.from_edges(4, [])
        assert csr.num_edges == 0
        assert csr.num_vertices == 4

    def test_from_edges_out_of_range(self):
        with pytest.raises(ValueError):
            CSRDiGraph.from_edges(2, [(0, 5)])

    def test_neighbors_sorted(self, small_csr):
        for v in range(small_csr.num_vertices):
            row = small_csr.out_neighbors(v)
            assert np.all(np.diff(row) >= 0)

    def test_edges_array_shape(self, small_csr):
        arr = small_csr.edges_array()
        assert arr.shape == (small_csr.num_edges, 2)

    def test_has_edge(self, small_csr):
        assert small_csr.has_edge(0, 2)
        assert not small_csr.has_edge(2, 1)

    def test_degree_arrays_consistent(self, small_csr):
        assert small_csr.out_degree_array().sum() == small_csr.num_edges
        assert small_csr.in_degree_array().sum() == small_csr.num_edges
        assert np.array_equal(
            small_csr.degree_array(),
            small_csr.out_degree_array() + small_csr.in_degree_array(),
        )

    def test_roundtrip_to_digraph(self, small_digraph):
        assert small_digraph.to_csr().to_digraph() == small_digraph

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRDiGraph(np.array([0, 5]), np.array([1]), np.array([0, 1]), np.array([0]))


class TestDegreeHistogram:
    def test_total_histogram_sums_to_vertices(self, small_csr):
        hist = degree_histogram(small_csr, "total")
        assert sum(hist.values()) == small_csr.num_vertices

    def test_kinds(self, small_csr):
        assert degree_histogram(small_csr, "in") != {}
        assert degree_histogram(small_csr, "out") != {}

    def test_invalid_kind(self, small_csr):
        with pytest.raises(ValueError):
            degree_histogram(small_csr, "sideways")
