"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.digraph import CSRDiGraph, DiGraph
from repro.graph.knn_graph import KNNGraph
from repro.partition.model import build_partitions
from repro.partition.partitioners import ContiguousPartitioner, HashPartitioner
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import count_load_unload_operations
from repro.similarity.measures import cosine_similarity, jaccard_similarity
from repro.tuples.generator import brute_force_two_hop_pairs, generate_candidate_tuples
from repro.tuples.hash_table import TupleHashTable

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# -- strategies --------------------------------------------------------------

@st.composite
def edge_lists(draw, max_vertices=30, max_edges=120):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=num_edges, max_size=num_edges))
    edges = [(s, d) for s, d in edges if s != d]
    return n, edges


@st.composite
def scored_candidates(draw):
    n = draw(st.integers(min_value=3, max_value=25))
    k = draw(st.integers(min_value=1, max_value=5))
    count = draw(st.integers(min_value=0, max_value=60))
    entries = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                  st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)),
        min_size=count, max_size=count))
    return n, k, entries


# -- graph invariants ---------------------------------------------------------

class TestGraphProperties:
    @SETTINGS
    @given(edge_lists())
    def test_csr_preserves_edge_set(self, data):
        n, edges = data
        csr = CSRDiGraph.from_edges(n, edges)
        assert set(map(tuple, csr.edges_array().tolist())) == set(edges)

    @SETTINGS
    @given(edge_lists())
    def test_in_and_out_degree_sums_equal(self, data):
        n, edges = data
        csr = CSRDiGraph.from_edges(n, edges)
        assert csr.out_degree_array().sum() == csr.in_degree_array().sum() == csr.num_edges

    @SETTINGS
    @given(edge_lists())
    def test_digraph_csr_roundtrip(self, data):
        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        assert graph.to_csr().to_digraph() == graph

    @SETTINGS
    @given(edge_lists())
    def test_reverse_adjacency_consistent(self, data):
        n, edges = data
        csr = CSRDiGraph.from_edges(n, edges)
        for v in range(n):
            for u in csr.in_neighbors(v):
                assert csr.has_edge(int(u), v)


class TestKNNGraphProperties:
    @SETTINGS
    @given(scored_candidates())
    def test_out_degree_never_exceeds_k(self, data):
        n, k, entries = data
        graph = KNNGraph(n, k)
        for vertex, neighbor, score in entries:
            graph.add_candidate(vertex, neighbor, score)
        for v in range(n):
            assert len(graph.neighbors(v)) <= k
            assert v not in graph.neighbors(v)

    @SETTINGS
    @given(scored_candidates())
    def test_kept_neighbors_are_the_best_offered(self, data):
        n, k, entries = data
        graph = KNNGraph(n, k)
        best = {}
        for vertex, neighbor, score in entries:
            graph.add_candidate(vertex, neighbor, score)
            if vertex != neighbor:
                key = (vertex, neighbor)
                best[key] = max(best.get(key, float("-inf")), score)
        for v in range(n):
            offered = sorted((s for (src, _), s in best.items() if src == v), reverse=True)
            kept = sorted(graph.neighbor_scores(v).values(), reverse=True)
            assert len(kept) == min(k, len(offered))
            # the kept multiset must equal the top-k of the offered multiset
            assert kept == pytest.approx(offered[:len(kept)])

    @SETTINGS
    @given(scored_candidates())
    def test_edge_difference_is_a_metric_on_identity(self, data):
        n, k, entries = data
        graph = KNNGraph(n, k)
        for vertex, neighbor, score in entries:
            graph.add_candidate(vertex, neighbor, score)
        assert graph.edge_difference(graph.copy()) == 0


class TestSimilarityProperties:
    @SETTINGS
    @given(st.lists(st.integers(0, 50), max_size=20), st.lists(st.integers(0, 50), max_size=20))
    def test_jaccard_symmetric_and_bounded(self, a, b):
        s = jaccard_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(jaccard_similarity(b, a))

    @SETTINGS
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=15))
    def test_jaccard_identity(self, items):
        assert jaccard_similarity(items, items) == pytest.approx(1.0)

    @SETTINGS
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=8),
           st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=8))
    def test_cosine_symmetric_and_bounded(self, a, b):
        size = min(len(a), len(b))
        a, b = np.asarray(a[:size]), np.asarray(b[:size])
        s = cosine_similarity(a, b)
        assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9
        assert s == pytest.approx(cosine_similarity(b, a))


class TestPartitionProperties:
    @SETTINGS
    @given(edge_lists(max_vertices=40), st.integers(min_value=1, max_value=6))
    def test_partitions_cover_vertices_and_edges(self, data, m):
        n, edges = data
        m = min(m, n)
        csr = CSRDiGraph.from_edges(n, edges)
        assignment = ContiguousPartitioner().assign(csr, m)
        partitions = build_partitions(csr, assignment, m)
        covered = sorted(int(v) for p in partitions for v in p.vertices)
        assert covered == list(range(n))
        assert sum(p.num_out_edges for p in partitions) == csr.num_edges
        assert sum(p.num_in_edges for p in partitions) == csr.num_edges


class TestTupleProperties:
    @SETTINGS
    @given(edge_lists(max_vertices=25, max_edges=80), st.integers(min_value=1, max_value=4))
    def test_candidate_tuples_equal_two_hop_plus_direct(self, data, m):
        n, edges = data
        m = min(m, n)
        csr = CSRDiGraph.from_edges(n, edges)
        assignment = HashPartitioner().assign(csr, m)
        partitions = build_partitions(csr, assignment, m)
        table = generate_candidate_tuples(csr, partitions, assignment)
        stored = set(map(tuple, table.all_tuples().tolist()))
        expected = set(map(tuple, brute_force_two_hop_pairs(csr).tolist()))
        expected |= {(int(s), int(d)) for s, d in csr.edges_array() if s != d}
        assert stored == expected

    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=100))
    def test_hash_table_never_stores_duplicates_or_self_pairs(self, pairs):
        table = TupleHashTable(15, np.zeros(15, dtype=np.int64))
        table.add_many(pairs)
        stored = list(table.iter_tuples())
        assert len(stored) == len(set(stored))
        assert all(s != d for s, d in stored)
        assert set(stored) == {(s, d) for s, d in pairs if s != d}


class TestSchedulerProperties:
    @SETTINGS
    @given(edge_lists(max_vertices=20, max_edges=60))
    def test_every_heuristic_schedules_every_tuple(self, data):
        n, edges = data
        csr = CSRDiGraph.from_edges(n, edges)
        pi = PIGraph.from_digraph(csr)
        if pi.num_edges == 0:
            return
        for heuristic in ("sequential", "degree-high-low", "degree-low-high",
                          "greedy-resident"):
            result = count_load_unload_operations(pi, heuristic)
            assert result.tuples_scheduled == pi.total_weight
            assert result.loads == result.unloads
            assert result.loads >= 1
