"""Tests for the array-backed bulk-update path of :class:`KNNGraph`.

The property at the heart of the vectorised phase 4: for any candidate
stream with distinct scores, ``add_candidates_batch`` must produce a graph
identical (same edges, same scores) to feeding the same stream through
per-edge ``add_candidate`` calls in order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.knn_graph import KNNGraph, _descending_score_argsort


def _random_candidates(rng, num_vertices, count):
    src = rng.integers(0, num_vertices, size=count)
    dst = rng.integers(0, num_vertices, size=count)
    # continuous scores are distinct with probability 1, making the
    # sequential result order-independent and the parity exact
    scores = rng.random(count)
    return src, dst, scores


def _assert_graphs_identical(a: KNNGraph, b: KNNGraph):
    assert a.edge_difference(b) == 0
    for v in range(a.num_vertices):
        assert a.neighbor_scores(v) == pytest.approx(b.neighbor_scores(v))


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_batch_parity(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 60, 5
        src, dst, scores = _random_candidates(rng, n, 800)
        sequential = KNNGraph(n, k)
        for s, d, sc in zip(src, dst, scores):
            sequential.add_candidate(int(s), int(d), float(sc))
        batched = KNNGraph(n, k)
        batched.add_candidates_batch(src, dst, scores)
        _assert_graphs_identical(sequential, batched)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_multiple_batches_with_incumbents(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 40, 4
        sequential = KNNGraph(n, k)
        batched = KNNGraph(n, k)
        for _ in range(5):
            src, dst, scores = _random_candidates(rng, n, 300)
            for s, d, sc in zip(src, dst, scores):
                sequential.add_candidate(int(s), int(d), float(sc))
            batched.add_candidates_batch(src, dst, scores)
        _assert_graphs_identical(sequential, batched)

    def test_assume_unique_fast_path_parity(self):
        rng = np.random.default_rng(9)
        n, k = 50, 6
        # unique (src, dst) pairs, as guaranteed by the tuple hash table
        keys = rng.choice(n * n, size=1200, replace=False)
        src, dst = keys // n, keys % n
        keep = src != dst
        src, dst = src[keep], dst[keep]
        scores = rng.random(len(src))
        general = KNNGraph(n, k)
        general.add_candidates_batch(src, dst, scores)
        fast = KNNGraph(n, k)
        fast.add_candidates_batch(src, dst, scores, assume_unique=True)
        _assert_graphs_identical(general, fast)

    def test_duplicate_pairs_keep_best_score(self):
        graph = KNNGraph(5, 2)
        graph.add_candidates_batch([0, 0, 0], [1, 1, 2], [0.2, 0.9, 0.5])
        assert graph.score(0, 1) == pytest.approx(0.9)
        assert graph.score(0, 2) == pytest.approx(0.5)

    def test_batch_improves_existing_scores(self):
        graph = KNNGraph(5, 3)
        graph.add_candidate(0, 1, 0.1)
        graph.add_candidate(0, 2, 0.8)
        changed = graph.add_candidates_batch([0, 0], [1, 2], [0.5, 0.3])
        assert changed == 1                      # only (0, 1) improved
        assert graph.score(0, 1) == pytest.approx(0.5)
        assert graph.score(0, 2) == pytest.approx(0.8)


class TestDescendingScoreRadixSort:
    """The order-isomorphic score-key radix pass replacing the merge's last
    global comparison sort.  The contract: bit-identical permutation to
    ``np.argsort(-scores, kind="stable")`` for every NaN-free float64 input,
    with −0.0/+0.0 tie semantics pinned (they compare equal, so stability
    must preserve arrival order across the two encodings)."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(
        st.floats(allow_nan=False, width=64),
        min_size=1, max_size=300))
    def test_matches_stable_comparison_sort(self, values):
        scores = np.asarray(values, dtype=np.float64)
        np.testing.assert_array_equal(
            _descending_score_argsort(scores),
            np.argsort(-scores, kind="stable"))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(
        st.sampled_from([0.0, -0.0, 1.0, -1.0, 0.5, -0.5,
                         np.inf, -np.inf, 5e-324, -5e-324]),
        min_size=1, max_size=120))
    def test_heavy_ties_including_signed_zeros(self, values):
        """Duplicates everywhere: stability is the whole answer here, and
        −0.0 must tie with +0.0 (fold, not order, the two encodings)."""
        scores = np.asarray(values, dtype=np.float64)
        np.testing.assert_array_equal(
            _descending_score_argsort(scores),
            np.argsort(-scores, kind="stable"))

    def test_signed_zero_tie_keeps_arrival_order(self):
        scores = np.asarray([-0.0, 1.0, 0.0, -0.0, 0.0])
        order = _descending_score_argsort(scores)
        # 1.0 first, then the four (equal) zeros in arrival order
        np.testing.assert_array_equal(order, [1, 0, 2, 3, 4])

    def test_nan_scores_rejected_at_the_public_api(self):
        """The radix key map is only order-isomorphic on non-NaN floats, so
        NaN batches must fail loudly instead of mis-ranking candidates."""
        graph = KNNGraph(10, 3)
        with pytest.raises(ValueError, match="NaN"):
            graph.add_candidates_batch(
                np.asarray([0, 0]), np.asarray([1, 2]),
                np.asarray([0.5, np.nan]))

    def test_batch_path_unchanged_with_zero_ties(self):
        """End to end through add_candidates_batch: scores containing both
        zero encodings still produce the documented deterministic graph."""
        n, k = 20, 3
        src = np.asarray([0, 0, 0, 0, 0], dtype=np.int64)
        dst = np.asarray([1, 2, 3, 4, 5], dtype=np.int64)
        scores = np.asarray([0.0, -0.0, 0.0, -0.0, 0.5])
        graph = KNNGraph(n, k)
        graph.add_candidates_batch(src, dst, scores, assume_unique=True)
        # 0.5 wins, then the earliest zero-scored rows in arrival order
        assert graph.neighbors(0) == [5, 1, 2]


class TestBatchValidation:
    def test_self_pairs_filtered(self):
        graph = KNNGraph(5, 2)
        assert graph.add_candidates_batch([1, 2], [1, 3], [0.5, 0.6]) == 1
        assert graph.neighbors(1) == []
        assert graph.neighbors(2) == [3]

    def test_out_of_range_raises(self):
        graph = KNNGraph(3, 1)
        with pytest.raises(IndexError):
            graph.add_candidates_batch([0], [9], [1.0])
        with pytest.raises(IndexError):
            graph.add_candidates_batch([-1], [1], [1.0])

    def test_length_mismatch_raises(self):
        graph = KNNGraph(3, 1)
        with pytest.raises(ValueError):
            graph.add_candidates_batch([0, 1], [1], [1.0])

    def test_empty_batch_is_noop(self):
        graph = KNNGraph(3, 1)
        assert graph.add_candidates_batch([], [], []) == 0
        assert graph.num_edges == 0


class TestLazyHeap:
    def test_score_improvements_keep_worst_score_correct(self):
        graph = KNNGraph(5, 2)
        graph.add_candidate(0, 1, 0.2)
        graph.add_candidate(0, 2, 0.5)
        # improve the weakest neighbour repeatedly; the stale heap entries
        # must never surface as the worst score
        graph.add_candidate(0, 1, 0.6)
        assert graph.worst_score(0) == pytest.approx(0.5)
        graph.add_candidate(0, 2, 0.9)
        assert graph.worst_score(0) == pytest.approx(0.6)
        # eviction must pick the true weakest neighbour (1 at 0.6)
        assert graph.add_candidate(0, 3, 0.7) is True
        assert set(graph.neighbors(0)) == {2, 3}

    def test_many_improvements_bound_heap_size(self):
        graph = KNNGraph(4, 2)
        graph.add_candidate(0, 1, 0.0)
        graph.add_candidate(0, 2, 0.0)
        for step in range(1, 200):
            graph.add_candidate(0, 1, step * 0.01)
        assert len(graph._heaps[0]) <= 2 * graph.k + 4
        assert graph.score(0, 1) == pytest.approx(1.99)
        assert graph.worst_score(0) == pytest.approx(0.0)


class TestVectorisedViews:
    def test_edge_array_sorted_per_vertex(self):
        graph = KNNGraph(6, 3)
        graph.add_candidates_batch([2, 2, 0], [5, 1, 3], [0.4, 0.9, 0.2])
        arr = graph.edge_array()
        assert arr.tolist() == [[0, 3], [2, 1], [2, 5]]

    def test_edge_difference_and_recall_match_setwise(self):
        rng = np.random.default_rng(3)
        n, k = 30, 4
        a = KNNGraph(n, k)
        b = KNNGraph(n, k)
        for g, seed in ((a, 10), (b, 11)):
            r = np.random.default_rng(seed)
            s, d, sc = _random_candidates(r, n, 400)
            g.add_candidates_batch(s, d, sc)
        edges_a = {(int(s), int(d)) for s, d, _ in a.edges()}
        edges_b = {(int(s), int(d)) for s, d, _ in b.edges()}
        assert a.edge_difference(b) == len(edges_a ^ edges_b)
        assert a.recall_against(b) == pytest.approx(
            len(edges_a & edges_b) / len(edges_b))
