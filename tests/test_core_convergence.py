"""Tests for repro.core.convergence."""

import pytest

from repro.core.convergence import ConvergenceTracker
from repro.graph.knn_graph import KNNGraph


class TestConvergenceTracker:
    def test_identical_graphs_converge(self):
        graph = KNNGraph.random(40, 4, seed=1)
        tracker = ConvergenceTracker(threshold=0.01)
        rate = tracker.record(graph, graph.copy())
        assert rate == 0.0
        assert tracker.converged

    def test_different_graphs_do_not_converge(self):
        a = KNNGraph.random(40, 4, seed=2)
        b = KNNGraph.random(40, 4, seed=3)
        tracker = ConvergenceTracker(threshold=0.01)
        rate = tracker.record(a, b)
        assert rate > 0.01
        assert not tracker.converged

    def test_recall_recorded_with_exact_graph(self):
        exact = KNNGraph.random(30, 3, seed=4)
        tracker = ConvergenceTracker(threshold=0.5, exact_graph=exact)
        tracker.record(KNNGraph.random(30, 3, seed=5), exact.copy())
        assert tracker.recalls == [pytest.approx(1.0)]
        assert tracker.latest_recall == pytest.approx(1.0)

    def test_no_recall_without_exact_graph(self):
        tracker = ConvergenceTracker()
        tracker.record(KNNGraph.random(20, 2, seed=6), KNNGraph.random(20, 2, seed=7))
        assert tracker.recalls == []
        assert tracker.latest_recall is None

    def test_history_grows(self):
        tracker = ConvergenceTracker()
        a = KNNGraph.random(20, 2, seed=8)
        b = KNNGraph.random(20, 2, seed=9)
        tracker.record(a, b)
        tracker.record(b, b.copy())
        assert tracker.iterations_recorded == 2
        assert len(tracker.change_rates) == 2
        assert len(tracker.average_scores) == 2

    def test_summary_keys(self):
        tracker = ConvergenceTracker()
        tracker.record(KNNGraph.random(20, 2, seed=10), KNNGraph.random(20, 2, seed=11))
        summary = tracker.summary()
        assert set(summary) == {"iterations", "converged", "change_rates",
                                "recalls", "average_scores"}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(threshold=1.5)

    def test_empty_tracker_not_converged(self):
        assert not ConvergenceTracker().converged
