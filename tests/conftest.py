"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import CSRDiGraph, DiGraph
from repro.graph.generators import powerlaw_fixed_size_graph
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import generate_dense_profiles, generate_sparse_profiles


@pytest.fixture
def small_digraph() -> DiGraph:
    """A tiny hand-built digraph used by unit tests.

    Edges: 0->1, 0->2, 1->2, 2->0, 3->0, 3->4, 4->3 (5 vertices, 7 edges).
    """
    graph = DiGraph(5)
    for src, dst in [(0, 1), (0, 2), (1, 2), (2, 0), (3, 0), (3, 4), (4, 3)]:
        graph.add_edge(src, dst)
    return graph


@pytest.fixture
def small_csr(small_digraph) -> CSRDiGraph:
    return small_digraph.to_csr()


@pytest.fixture
def medium_graph() -> CSRDiGraph:
    """A 200-vertex power-law graph, deterministic."""
    return powerlaw_fixed_size_graph(200, 1200, exponent=2.2, seed=42)


@pytest.fixture
def dense_profiles():
    """Dense profiles for 120 users with planted communities."""
    return generate_dense_profiles(120, dim=8, num_communities=4, noise=0.2, seed=7)


@pytest.fixture
def sparse_profiles():
    """Sparse profiles for 120 users over a 300-item catalogue."""
    return generate_sparse_profiles(120, 300, items_per_user=15, num_communities=4, seed=7)


@pytest.fixture
def random_knn():
    """A random KNN graph over 120 users with K=6."""
    return KNNGraph.random(120, 6, seed=13)
