"""Tests for repro.tuples.hash_table."""

import numpy as np
import pytest

from repro.tuples.hash_table import TupleHashTable


@pytest.fixture
def table():
    # 10 vertices split into 2 partitions: 0-4 -> 0, 5-9 -> 1
    assignment = np.array([0] * 5 + [1] * 5, dtype=np.int64)
    return TupleHashTable(10, assignment)


class TestAdd:
    def test_add_new_tuple(self, table):
        assert table.add(0, 5) is True
        assert (0, 5) in table
        assert table.num_tuples == 1

    def test_duplicate_rejected(self, table):
        table.add(0, 5)
        assert table.add(0, 5) is False
        assert table.num_tuples == 1

    def test_self_pair_rejected(self, table):
        assert table.add(3, 3) is False
        assert table.num_tuples == 0

    def test_direction_matters(self, table):
        table.add(0, 5)
        assert table.add(5, 0) is True
        assert table.num_tuples == 2

    def test_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.add(0, 99)

    def test_add_many(self, table):
        added = table.add_many([(0, 1), (0, 1), (2, 2), (3, 7)])
        assert added == 2
        assert len(table) == 2


class TestAddArray:
    def test_bulk_insert_dedupes(self, table):
        pairs = np.array([[0, 1], [0, 1], [1, 6], [6, 6], [2, 3]])
        added = table.add_array(pairs)
        assert added == 3
        assert table.num_tuples == 3

    def test_bulk_insert_respects_existing(self, table):
        table.add(0, 1)
        added = table.add_array(np.array([[0, 1], [1, 2]]))
        assert added == 1

    def test_empty_array(self, table):
        assert table.add_array(np.empty((0, 2), dtype=np.int64)) == 0

    def test_bad_shape(self, table):
        with pytest.raises(ValueError):
            table.add_array(np.zeros((3, 3), dtype=np.int64))

    def test_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.add_array(np.array([[0, 50]]))

    def test_interleaved_scalar_and_bulk_dedup(self):
        """Regression: bulk inserts must dedup against scalar adds and back.

        The original ``add_array`` scanned a Python set per key; the
        array-native rewrite must preserve exact dedup semantics when scalar
        and bulk insertion interleave in any order.
        """
        assignment = np.arange(30) % 4
        mixed = TupleHashTable(30, assignment)
        scalar = TupleHashTable(30, assignment)
        rng = np.random.default_rng(7)
        batches = [rng.integers(0, 30, size=(80, 2)) for _ in range(4)]
        for batch in batches:
            # scalar-insert the first half, bulk-insert the whole batch, then
            # scalar-insert the second half again (all duplicates)
            mixed.add_many(map(tuple, batch[:40]))
            mixed.add_array(batch)
            mixed.add_many(map(tuple, batch[40:]))
            scalar.add_many(map(tuple, batch))
        assert mixed.num_tuples == scalar.num_tuples
        assert set(mixed.iter_tuples()) == set(scalar.iter_tuples())
        assert mixed.bucket_sizes() == scalar.bucket_sizes()
        assert sum(mixed.bucket_sizes().values()) == mixed.num_tuples

    def test_bulk_then_bulk_dedup_counts(self):
        assignment = np.zeros(10, dtype=np.int64)
        table = TupleHashTable(10, assignment)
        first = table.add_array(np.array([[0, 1], [1, 2], [2, 3]]))
        second = table.add_array(np.array([[1, 2], [2, 3], [3, 4]]))
        assert (first, second) == (3, 1)
        assert table.num_tuples == 4

    def test_matches_scalar_path(self):
        assignment = np.arange(20) % 3
        scalar_table = TupleHashTable(20, assignment)
        array_table = TupleHashTable(20, assignment)
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 20, size=(200, 2))
        scalar_table.add_many(map(tuple, pairs))
        array_table.add_array(pairs)
        assert scalar_table.num_tuples == array_table.num_tuples
        assert set(map(tuple, scalar_table.all_tuples().tolist())) == set(
            map(tuple, array_table.all_tuples().tolist()))


class TestBuckets:
    def test_bucketing_by_partition_pair(self, table):
        table.add(0, 1)   # (0, 0)
        table.add(0, 6)   # (0, 1)
        table.add(7, 2)   # (1, 0)
        table.add(8, 9)   # (1, 1)
        assert set(table.partition_pairs()) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert table.bucket_sizes()[(0, 1)] == 1

    def test_tuples_for(self, table):
        table.add(0, 6)
        table.add(1, 7)
        tuples = table.tuples_for(0, 1)
        assert tuples.shape == (2, 2)
        assert set(map(tuple, tuples.tolist())) == {(0, 6), (1, 7)}

    def test_tuples_for_empty_pair(self, table):
        assert table.tuples_for(1, 0).shape == (0, 2)

    def test_all_tuples_roundtrip(self, table):
        expected = {(0, 5), (2, 3), (9, 1)}
        for s, d in expected:
            table.add(s, d)
        assert set(map(tuple, table.all_tuples().tolist())) == expected
        assert set(table.iter_tuples()) == expected

    def test_bucket_sizes_sum_to_total(self, table):
        rng = np.random.default_rng(1)
        table.add_array(rng.integers(0, 10, size=(100, 2)))
        assert sum(table.bucket_sizes().values()) == table.num_tuples

    def test_memory_estimate_grows(self, table):
        before = table.memory_estimate_bytes()
        table.add(0, 1)
        assert table.memory_estimate_bytes() > before


class TestConstruction:
    def test_assignment_length_check(self):
        with pytest.raises(ValueError):
            TupleHashTable(5, np.zeros(3, dtype=np.int64))
