"""The incremental phase-4 differential wall.

The generation-keyed score cache promises that an engine run with
``incremental_phase4=True`` produces graphs **bit-identical** to a full
rescore, while pushing only tuples with at least one touched endpoint (or
never-scored pairs) through a similarity kernel.  These tests drive random
phase-5 churn through the update queue and compare the two modes
fingerprint-for-fingerprint across all three scoring backends, pin the
exact clean/dirty partition of a candidate batch at the cache level, and
assert that the rescored-tuple counts scale with the churn, not the graph.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.iteration import AdaptiveCachePolicy, Phase4ScoreCache
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)

NUM_USERS = 120
NUM_ITEMS = 300


def _profiles(kind: str, seed: int = 7):
    if kind == "dense":
        return generate_dense_profiles(NUM_USERS, dim=8, num_communities=4,
                                       seed=seed)
    return generate_sparse_profiles(NUM_USERS, NUM_ITEMS, items_per_user=12,
                                    num_communities=4, seed=seed)


def _churn_feed(kind: str, per_iteration, rng_seed: int, users_pool=NUM_USERS):
    """Deterministic churn feed: ``per_iteration[i]`` users change in iter i."""
    rng = np.random.default_rng(rng_seed)

    def feed(iteration: int):
        count = per_iteration[iteration] if iteration < len(per_iteration) else 0
        if count == 0:
            return []
        users = rng.choice(users_pool, size=count, replace=False)
        if kind == "dense":
            return [ProfileChange(user=int(u), kind="set", vector=rng.random(8))
                    for u in users]
        return [ProfileChange(user=int(u), kind="add",
                              item=int(rng.integers(0, NUM_ITEMS)))
                for u in users]

    return feed


def _run(kind: str, incremental: bool, churn, iterations=3, **overrides):
    config = EngineConfig(k=5, num_partitions=4, heuristic="degree-low-high",
                          seed=17, incremental_phase4=incremental, **overrides)
    with KNNEngine(_profiles(kind), config) as engine:
        run = engine.run(num_iterations=iterations, profile_change_feed=churn)
    return run


class TestDifferentialWall:
    """Incremental fingerprints must equal full-rescore fingerprints, always."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        kind=st.sampled_from(["dense", "sparse"]),
        backend=st.sampled_from(["serial", "thread", "process"]),
        churn_sizes=st.lists(st.integers(min_value=0, max_value=30),
                             min_size=3, max_size=3),
        churn_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_incremental_bit_identical_to_full_rescore(self, kind, backend,
                                                       churn_sizes, churn_seed):
        overrides = {"backend": backend}
        if backend == "thread":
            overrides["num_threads"] = 3
        elif backend == "process":
            overrides["num_workers"] = 2
        runs = {}
        for incremental in (True, False):
            churn = _churn_feed(kind, churn_sizes, churn_seed)
            runs[incremental] = _run(kind, incremental, churn, **overrides)
        incremental_fps = [result.graph.edge_fingerprint()
                           for result in runs[True].iterations]
        full_fps = [result.graph.edge_fingerprint()
                    for result in runs[False].iterations]
        assert incremental_fps == full_fps
        # the full-rescore runs never touch the cache
        assert all(result.reused_scores == 0 for result in runs[False].iterations)
        assert all(result.full_rescore for result in runs[False].iterations)

    @pytest.mark.parametrize("backend,workers", [("serial", 1), ("thread", 3),
                                                 ("process", 2)])
    @pytest.mark.parametrize("kind", ["dense", "sparse"])
    def test_all_backends_reuse_and_agree(self, kind, backend, workers):
        """Every backend must actually *reuse* scores, not just agree."""
        overrides = {"backend": backend}
        if backend == "thread":
            overrides["num_threads"] = workers
        elif backend == "process":
            overrides["num_workers"] = workers
        churn_sizes = [8, 8, 8, 8]
        incremental = _run(kind, True, _churn_feed(kind, churn_sizes, 3),
                           iterations=4, **overrides)
        full = _run(kind, False, _churn_feed(kind, churn_sizes, 3),
                    iterations=4, **overrides)
        assert ([r.graph.edge_fingerprint() for r in incremental.iterations]
                == [r.graph.edge_fingerprint() for r in full.iterations])
        assert incremental.iterations[0].full_rescore          # cold cache
        for result in incremental.iterations[1:]:
            assert not result.full_rescore
            assert result.reused_scores > 0
            assert (result.rescored_tuples + result.reused_scores
                    == result.num_candidate_tuples)
            assert result.rescored_tuples == result.similarity_evaluations


class TestCleanDirtyPartition:
    """The cache-level clean/dirty split is exact, not merely conservative."""

    def _populated_cache(self, n=50):
        cache = Phase4ScoreCache(max_entries=10_000)
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, n, size=(300, 2), dtype=np.int64)
        keys = np.unique(pairs[:, 0] * n + pairs[:, 1])
        values = rng.random(len(keys))
        cache.replace([keys], [values], "cosine", generation=3, num_vertices=n)
        return cache, keys, values, n

    def test_hits_require_cached_pair_and_clean_endpoints(self):
        cache, keys, values, n = self._populated_cache()
        touched = np.zeros(n, dtype=bool)
        touched[[4, 17, 23]] = True
        rng = np.random.default_rng(9)
        tuples = rng.integers(0, n, size=(500, 2), dtype=np.int64)
        scores, hit_mask = cache.lookup(tuples, touched)
        query_keys = tuples[:, 0] * n + tuples[:, 1]
        in_cache = np.isin(query_keys, keys)
        clean = ~(touched[tuples[:, 0]] | touched[tuples[:, 1]])
        # hit exactly when the pair was scored AND both endpoints are clean
        np.testing.assert_array_equal(hit_mask, in_cache & clean)
        # every dirty row therefore has a touched endpoint or a fresh pair
        dirty = ~hit_mask
        assert np.all(~clean[dirty] | ~in_cache[dirty])
        # hit scores come back verbatim
        position = np.searchsorted(keys, query_keys[hit_mask])
        np.testing.assert_array_equal(scores[hit_mask], values[position])

    def test_no_touched_rows_hits_every_cached_pair(self):
        cache, keys, _, n = self._populated_cache()
        tuples = np.column_stack([keys // n, keys % n])
        scores, hit_mask = cache.lookup(tuples, np.zeros(n, dtype=bool))
        assert hit_mask.all()
        np.testing.assert_array_equal(scores, cache.values[
            np.searchsorted(cache.keys, keys)])

    def test_everything_touched_hits_nothing(self):
        cache, keys, _, n = self._populated_cache()
        tuples = np.column_stack([keys // n, keys % n])
        _, hit_mask = cache.lookup(tuples, np.ones(n, dtype=bool))
        assert not hit_mask.any()

    def test_over_capacity_iteration_clears_the_cache(self):
        cache = Phase4ScoreCache(max_entries=10)
        keys = np.arange(11, dtype=np.int64)
        cache.replace([keys], [np.zeros(11)], "cosine", 0, 100)
        assert cache.keys is None
        assert cache.evictions == 1
        assert not cache.matches("cosine", 100)

    def test_matches_requires_measure_and_vertex_count(self):
        cache, _, _, n = self._populated_cache()
        assert cache.matches("cosine", n)
        assert not cache.matches("pearson", n)
        assert not cache.matches("cosine", n + 1)


class TestInPlaceMergeDifferential:
    """``Phase4ScoreCache.merge`` must be byte-identical to the rebuild.

    The merge keeps the cache rows reused this iteration (marked by the
    armed lookups — a sorted subsequence needing no re-sort) and counting-
    sorts only the rescored chunks before one galloping interleave.  The
    reference is what ``replace`` produces when handed *all* of the
    iteration's scored pairs: identical key/score arrays, bit for bit.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        num_vertices=st.integers(min_value=2, max_value=40),
        old_seed=st.integers(min_value=0, max_value=2**16),
        fresh_seed=st.integers(min_value=0, max_value=2**16),
        touched_seed=st.integers(min_value=0, max_value=2**16),
        old_count=st.integers(min_value=0, max_value=300),
        fresh_count=st.integers(min_value=0, max_value=300),
        num_chunks=st.integers(min_value=1, max_value=4),
    )
    def test_merge_matches_rebuild_byte_for_byte(self, num_vertices, old_seed,
                                                 fresh_seed, touched_seed,
                                                 old_count, fresh_count,
                                                 num_chunks):
        """Simulate one full iteration at the cache level: arm hit marks,
        look up a candidate batch against a touched mask, rescore the dirty
        rows, then merge — and compare against replace() of everything."""
        top = num_vertices * num_vertices
        old_rng = np.random.default_rng(old_seed)
        old_keys = np.unique(old_rng.integers(0, top, size=old_count,
                                              dtype=np.int64))
        old_values = old_rng.random(len(old_keys))
        fresh_rng = np.random.default_rng(fresh_seed)
        candidate_keys = np.unique(fresh_rng.integers(0, top, size=fresh_count,
                                                      dtype=np.int64))
        candidates = np.column_stack([candidate_keys // num_vertices,
                                      candidate_keys % num_vertices])
        touched_rng = np.random.default_rng(touched_seed)
        touched_mask = touched_rng.random(num_vertices) < 0.3

        cache = Phase4ScoreCache(max_entries=10_000)
        cache.replace([old_keys], [old_values], "jaccard",
                      generation=4, num_vertices=num_vertices)
        cache.begin_iteration()
        scores, hit_mask = cache.lookup(candidates, touched_mask,
                                        pair_keys=candidate_keys)
        dirty_rows = np.flatnonzero(~hit_mask)
        scores[dirty_rows] = fresh_rng.random(len(dirty_rows))  # "rescored"
        bounds = np.linspace(0, len(dirty_rows), num_chunks + 1).astype(int)
        key_chunks = [candidate_keys[dirty_rows[a:b]]
                      for a, b in zip(bounds, bounds[1:])]
        value_chunks = [scores[dirty_rows[a:b]]
                        for a, b in zip(bounds, bounds[1:])]
        cache.merge(key_chunks, value_chunks, "jaccard", generation=5,
                    num_vertices=num_vertices)

        reference = Phase4ScoreCache(max_entries=10_000)
        reference.replace([candidate_keys], [scores], "jaccard",
                          generation=5, num_vertices=num_vertices)
        assert cache.keys.tobytes() == reference.keys.tobytes()
        assert cache.values.tobytes() == reference.values.tobytes()
        assert cache.generation == 5
        assert cache.measure == "jaccard"

    def test_merge_without_armed_marks_is_a_plain_rebuild(self):
        cache = Phase4ScoreCache(max_entries=100)
        cache.replace([np.asarray([1, 5], dtype=np.int64)],
                      [np.asarray([0.1, 0.5])], "cosine", 0, 10)
        cache.merge([np.asarray([7, 3], dtype=np.int64)],
                    [np.asarray([0.7, 0.3])], "cosine", 1, 10)
        # no marks: nothing reused, only this iteration's pairs remain
        assert cache.keys.tolist() == [3, 7]
        assert cache.values.tolist() == [0.3, 0.7]
        assert cache.generation == 1

    def test_merge_keeps_only_the_marked_rows(self):
        cache = Phase4ScoreCache(max_entries=100)
        cache.replace([np.asarray([11, 22, 44], dtype=np.int64)],
                      [np.asarray([0.11, 0.22, 0.44])], "cosine", 0, 10)
        cache.begin_iteration()
        # candidates: pairs 22 (clean, cached → reused) and 33 (fresh)
        tuples = np.asarray([[2, 2], [3, 3]], dtype=np.int64)
        scores, hit_mask = cache.lookup(tuples, np.zeros(10, dtype=bool))
        assert hit_mask.tolist() == [True, False]
        cache.merge([np.asarray([33], dtype=np.int64)], [np.asarray([0.33])],
                    "cosine", 1, 10)
        # 11 and 44 were not reused this iteration → gone; 22 survived the
        # merge without re-sorting; 33 was folded in
        assert cache.keys.tolist() == [22, 33]
        np.testing.assert_array_equal(cache.values, [0.22, 0.33])

    def test_disarming_drops_stale_marks_from_an_aborted_iteration(self):
        """Marks armed by an iteration that aborted before its merge must
        not leak into a later full-rescore merge: the same pairs would then
        appear in both the kept and fresh runs and the disjoint interleave
        would corrupt the arrays."""
        cache = Phase4ScoreCache(max_entries=100)
        cache.replace([np.asarray([11, 22], dtype=np.int64)],
                      [np.asarray([0.11, 0.22])], "cosine", 0, 10)
        cache.begin_iteration()
        tuples = np.asarray([[1, 1], [2, 2]], dtype=np.int64)  # keys 11, 22
        cache.lookup(tuples, np.zeros(10, dtype=bool))          # marks both
        # ... the iteration aborts here; the retry runs without lookups
        cache.begin_iteration(record_hits=False)
        cache.merge([np.asarray([11, 22, 33], dtype=np.int64)],
                    [np.asarray([0.11, 0.22, 0.33])], "cosine", 1, 10)
        assert cache.keys.tolist() == [11, 22, 33]
        np.testing.assert_array_equal(cache.values, [0.11, 0.22, 0.33])

    def test_scored_set_over_capacity_clears(self):
        cache = Phase4ScoreCache(max_entries=3)
        cache.replace([np.arange(2, dtype=np.int64)], [np.zeros(2)],
                      "cosine", 0, 10)
        cache.begin_iteration()
        tuples = np.asarray([[0, 0], [0, 1]], dtype=np.int64)  # keys 0, 1
        cache.lookup(tuples, np.zeros(10, dtype=bool))
        # 2 reused + 2 rescored = 4 > 3: over capacity, exactly like replace
        cache.merge([np.asarray([50, 51], dtype=np.int64)], [np.ones(2)],
                    "cosine", 1, 10)
        assert cache.keys is None
        assert cache.evictions == 1


class TestAdaptivePolicy:
    """The adaptive lookup policy: measured economics, bit-identical results."""

    def test_probes_until_measured(self):
        policy = AdaptiveCachePolicy()
        assert policy.use_lookups()          # nothing measured yet
        policy.observe_kernel(1.0, 1000)     # 1 ms per kernel tuple
        assert policy.use_lookups()          # lookup cost still unknown

    def test_skips_when_hit_value_below_lookup_cost(self):
        policy = AdaptiveCachePolicy()
        policy.observe_kernel(0.001, 1000)             # 1 µs per rescore
        policy.observe_lookups(0.01, 1000, hits=100)   # 10 µs per lookup, 10% hits
        # expected saving 0.1 µs < 10 µs lookup cost → skip
        assert not policy.use_lookups()
        assert policy.skipped_iterations == 1

    def test_engages_when_hit_value_exceeds_lookup_cost(self):
        policy = AdaptiveCachePolicy()
        policy.observe_kernel(1.0, 1000)               # 1 ms per rescore
        policy.observe_lookups(0.001, 1000, hits=800)  # 1 µs lookups, 80% hits
        assert policy.use_lookups()
        assert policy.skipped_iterations == 0

    def test_reprobes_after_consecutive_skips(self):
        policy = AdaptiveCachePolicy()
        policy.observe_kernel(0.001, 1000)
        policy.observe_lookups(0.01, 1000, hits=10)
        decisions = [policy.use_lookups()
                     for _ in range(2 * AdaptiveCachePolicy.REPROBE_EVERY)]
        assert True in decisions       # the periodic probe happens
        assert False in decisions      # and the skips happen
        # exactly one probe per REPROBE_EVERY decisions
        assert decisions.count(True) == 2

    def test_adaptive_run_is_bit_identical(self):
        """Whatever the policy decides on this machine's timings, the
        produced graphs must match the non-adaptive run exactly."""
        for kind in ("dense", "sparse"):
            churn_sizes = [6, 6, 6, 6]
            adaptive = _run(kind, True, _churn_feed(kind, churn_sizes, 5),
                            iterations=4, adaptive_score_cache=True)
            plain = _run(kind, True, _churn_feed(kind, churn_sizes, 5),
                         iterations=4)
            assert ([r.graph.edge_fingerprint() for r in adaptive.iterations]
                    == [r.graph.edge_fingerprint() for r in plain.iterations])

    def test_forced_skip_scores_everything_and_stays_identical(self):
        """Inject economics that make lookups worthless: the engine skips
        them (lookups_skipped), rescans everything, and the graphs still
        match the default run bit for bit."""
        config = EngineConfig(k=5, num_partitions=4, heuristic="degree-low-high",
                              seed=17, adaptive_score_cache=True)
        with KNNEngine(_profiles("dense"), config) as engine:
            policy = engine._iteration_runner.cache_policy
            results = []
            for _ in range(3):
                # re-pin the measurements each iteration so the engine's own
                # observations never outvote the injected economics
                policy.lookup_cost = 1.0
                policy.kernel_cost = 1e-9
                policy.hit_rate = 0.5
                policy._skips_since_probe = 0
                results.append(engine.run_iteration())
        assert results[0].full_rescore            # cold cache: no decision yet
        for result in results[1:]:
            assert result.lookups_skipped
            assert not result.full_rescore        # the cache *was* usable
            assert result.reused_scores == 0
            assert result.rescored_tuples == result.num_candidate_tuples
        plain = _run("dense", True, None, iterations=3)
        assert ([r.graph.edge_fingerprint() for r in results]
                == [r.graph.edge_fingerprint() for r in plain.iterations])


class TestRescoredCountsScaleWithChurn:
    """Kernel work tracks the touched rows, not the candidate volume."""

    def test_zero_churn_rescores_only_fresh_pairs(self):
        """With no churn, warm iterations rescore only never-seen pairs."""
        run = _run("dense", True, None, iterations=4)
        for result in run.iterations[1:]:
            # every tuple already scored last iteration is reused: the
            # rescored ones are exactly this iteration's fresh pairs
            assert not result.full_rescore
            assert result.reused_scores > 0
            assert result.rescored_tuples < result.num_candidate_tuples

    def test_more_churn_more_rescoring(self):
        small = _run("sparse", True, _churn_feed("sparse", [4] * 4, 11),
                     iterations=4)
        large = _run("sparse", True, _churn_feed("sparse", [60] * 4, 11),
                     iterations=4)
        small_rescored = sum(r.rescored_tuples for r in small.iterations[1:])
        large_rescored = sum(r.rescored_tuples for r in large.iterations[1:])
        assert small_rescored < large_rescored

    @staticmethod
    def _candidate_pairs(graph) -> set:
        """The exact phase-2 candidate set of ``G(t)``: two-hop ∪ direct."""
        from repro.tuples.generator import brute_force_two_hop_pairs
        csr = graph.to_csr()
        pairs = {(int(s), int(d)) for s, d in brute_force_two_hop_pairs(csr)}
        pairs |= {(int(s), int(d)) for s, d in graph.edge_array() if s != d}
        return pairs

    def test_rescored_count_is_exactly_dirty_plus_fresh(self):
        """Rescored == candidates − (cached pairs with both endpoints clean),
        derived from first principles — nothing clean-and-cached is ever
        rescored, and nothing dirty or fresh is ever reused.  The in-place
        merge keeps the cache contents identical to a full rebuild (this
        iteration's scored pairs, nothing else), so the one-iteration
        model holds exactly."""
        churn = _churn_feed("dense", [10] * 4, 13)
        config = EngineConfig(k=5, num_partitions=4, heuristic="degree-low-high",
                              seed=17)
        with KNNEngine(_profiles("dense"), config) as engine:
            previous_candidates: set = set()
            touched_last: set = set()
            for iteration in range(4):
                changes = churn(iteration)
                engine.enqueue_profile_changes(changes)
                candidates = self._candidate_pairs(engine.graph)
                result = engine.run_iteration()
                assert result.num_candidate_tuples == len(candidates)
                if iteration > 0:
                    clean_cached = sum(
                        1 for (s, d) in candidates
                        if (s, d) in previous_candidates
                        and s not in touched_last and d not in touched_last)
                    assert result.reused_scores == clean_cached
                    assert result.rescored_tuples == len(candidates) - clean_cached
                previous_candidates = candidates
                # the queued changes are applied at the end of this
                # iteration, dirtying the *next* iteration's lookups
                touched_last = {change.user for change in changes}
