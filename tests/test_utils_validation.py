"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive(1, "x")
        check_positive(0.5, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.1])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        check_positive_int(3, "m")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "m")

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "m")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "m")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_fraction(value, "p")

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_fraction(value, "p")


class TestCheckType:
    def test_accepts_match(self):
        check_type([1], list, "items")
        check_type((1,), (list, tuple), "items")

    def test_rejects_mismatch_with_message(self):
        with pytest.raises(TypeError, match="items must be list"):
            check_type("no", list, "items")
