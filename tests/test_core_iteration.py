"""Tests for repro.core.iteration (single out-of-core iteration)."""

import numpy as np
import pytest

from repro.baselines.in_memory import InMemoryKNNIterator
from repro.core.config import EngineConfig
from repro.core.iteration import PHASE_NAMES, OutOfCoreIteration
from repro.core.update_queue import ProfileUpdateQueue
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import ProfileChange, generate_dense_profiles, generate_sparse_profiles
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore


def make_runner(tmp_path, profiles, **config_kwargs):
    config = EngineConfig(**config_kwargs)
    profile_store = OnDiskProfileStore.create(tmp_path / "profiles", profiles,
                                              disk_model=config.disk_model)
    partition_store = PartitionStore(tmp_path / "partitions", disk_model=config.disk_model)
    return OutOfCoreIteration(config, partition_store, profile_store), profile_store


@pytest.fixture(scope="module")
def profiles():
    return generate_dense_profiles(200, dim=8, num_communities=5, noise=0.2, seed=29)


class TestEquivalenceWithInMemory:
    @pytest.mark.parametrize("partitioner", ["contiguous", "hash", "greedy-locality"])
    @pytest.mark.parametrize("heuristic", ["sequential", "degree-low-high"])
    def test_matches_in_memory_oracle(self, tmp_path, profiles, partitioner, heuristic):
        k = 6
        initial = KNNGraph.random(profiles.num_users, k, seed=1)
        runner, _ = make_runner(tmp_path, profiles, k=k, num_partitions=5,
                                partitioner=partitioner, heuristic=heuristic, seed=1)
        out_of_core = runner.run(0, initial).graph
        oracle = InMemoryKNNIterator(k=k, measure="cosine").iterate(initial, profiles).graph
        mismatches = sum(
            1 for v in range(profiles.num_users)
            if set(out_of_core.neighbors(v)) != set(oracle.neighbors(v))
        )
        assert mismatches == 0

    def test_partition_count_does_not_change_result(self, tmp_path, profiles):
        k = 5
        initial = KNNGraph.random(profiles.num_users, k, seed=2)
        graphs = []
        for m in (2, 7):
            runner, _ = make_runner(tmp_path / f"m{m}", profiles, k=k, num_partitions=m, seed=2)
            graphs.append(runner.run(0, initial).graph)
        assert graphs[0].edge_difference(graphs[1]) == 0

    def test_flush_threshold_does_not_change_result(self, tmp_path, profiles,
                                                    monkeypatch):
        """Phase 4 merges scored tuples in bounded batches; the batch size
        must not affect G(t+1) (incumbent merges across flushes)."""
        import repro.core.iteration as iteration_module
        k = 5
        initial = KNNGraph.random(profiles.num_users, k, seed=3)
        runner, _ = make_runner(tmp_path / "one-flush", profiles, k=k,
                                num_partitions=5, seed=3)
        single = runner.run(0, initial).graph
        monkeypatch.setattr(iteration_module, "_SCORED_FLUSH_ROWS", 1)
        runner, _ = make_runner(tmp_path / "many-flush", profiles, k=k,
                                num_partitions=5, seed=3)
        many = runner.run(0, initial).graph
        assert single.edge_difference(many) == 0
        for v in range(profiles.num_users):
            assert single.neighbor_scores(v) == pytest.approx(many.neighbor_scores(v))


class TestIterationAccounting:
    def test_phases_all_timed(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 5, seed=3)
        runner, _ = make_runner(tmp_path, profiles, k=5, num_partitions=4)
        result = runner.run(0, initial)
        assert set(result.phase_timer.as_dict()) == set(PHASE_NAMES)

    def test_io_stats_populated(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 5, seed=4)
        runner, _ = make_runner(tmp_path, profiles, k=5, num_partitions=4, disk_model="hdd")
        result = runner.run(0, initial)
        assert result.io_stats.partition_loads > 0
        assert result.io_stats.partition_unloads > 0
        assert result.io_stats.bytes_read > 0
        assert result.io_stats.bytes_written > 0
        assert result.io_stats.simulated_io_seconds > 0

    def test_actual_load_unload_close_to_schedule(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 5, seed=5)
        runner, _ = make_runner(tmp_path, profiles, k=5, num_partitions=6,
                                heuristic="degree-low-high")
        result = runner.run(0, initial)
        assert result.load_unload_operations == result.schedule.load_unload_operations

    def test_candidate_and_evaluation_counts(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 5, seed=6)
        runner, _ = make_runner(tmp_path, profiles, k=5, num_partitions=4)
        result = runner.run(0, initial)
        assert result.similarity_evaluations == result.num_candidate_tuples
        assert result.num_candidate_tuples > 0

    def test_summary_keys(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 4, seed=7)
        runner, _ = make_runner(tmp_path, profiles, k=4, num_partitions=3)
        summary = runner.run(0, initial).summary()
        for key in ("iteration", "num_candidate_tuples", "similarity_evaluations",
                    "load_unload_operations", "phase_seconds"):
            assert key in summary


class TestProfileUpdates:
    def test_queued_changes_applied_after_iteration(self, tmp_path):
        profiles = generate_sparse_profiles(80, 300, items_per_user=10, seed=8)
        runner, profile_store = make_runner(tmp_path, profiles, k=4, num_partitions=3)
        queue = ProfileUpdateQueue()
        queue.enqueue(ProfileChange(user=5, kind="add", item=9999))
        initial = KNNGraph.random(80, 4, seed=8)
        result = runner.run(0, initial, update_queue=queue)
        assert result.profile_updates_applied == 1
        assert 9999 in profile_store.load_users([5]).get(5)
        assert len(queue) == 0

    def test_no_queue_means_no_updates(self, tmp_path, profiles):
        runner, _ = make_runner(tmp_path, profiles, k=4, num_partitions=3)
        result = runner.run(0, KNNGraph.random(profiles.num_users, 4, seed=9))
        assert result.profile_updates_applied == 0


class TestMemoryBudget:
    def test_budget_enforced(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 5, seed=10)
        runner, _ = make_runner(tmp_path, profiles, k=5, num_partitions=4,
                                memory_budget_bytes=64.0)
        with pytest.raises(MemoryError):
            runner.run(0, initial)

    def test_generous_budget_succeeds(self, tmp_path, profiles):
        initial = KNNGraph.random(profiles.num_users, 5, seed=11)
        runner, _ = make_runner(tmp_path, profiles, k=5, num_partitions=4,
                                memory_budget_bytes=64 * 1024 * 1024)
        result = runner.run(0, initial)
        assert result.graph.num_vertices == profiles.num_users
