"""Tests for repro.pigraph.traversal."""

import pytest

from repro.graph.datasets import small_dataset
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.traversal import (
    HEURISTICS,
    PAPER_HEURISTICS,
    DegreeHighLowHeuristic,
    DegreeLowHighHeuristic,
    GreedyResidentHeuristic,
    SequentialHeuristic,
    get_heuristic,
)


@pytest.fixture
def pi_graph():
    pi = PIGraph(5)
    pi.add_edge(0, 1, 3)
    pi.add_edge(1, 2, 1)
    pi.add_edge(2, 3, 2)
    pi.add_edge(3, 0, 1)
    pi.add_edge(0, 4, 5)
    pi.add_edge(4, 2, 1)
    pi.add_edge(2, 2, 4)
    return pi


@pytest.fixture
def dataset_pi():
    return PIGraph.from_digraph(small_dataset(150, 800, seed=21))


ALL_NAMES = sorted(HEURISTICS)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestPlanCoversAllEdges:
    def test_every_edge_exactly_once(self, name, pi_graph):
        steps = get_heuristic(name).plan(pi_graph)
        seen = []
        for first, second, edges in steps:
            for edge in edges:
                assert {edge.src, edge.dst} <= {first, second}
                seen.append((edge.src, edge.dst))
        assert sorted(seen) == sorted((e.src, e.dst) for e in pi_graph.edges())

    def test_every_edge_exactly_once_on_dataset(self, name, dataset_pi):
        steps = get_heuristic(name).plan(dataset_pi)
        total_edges = sum(len(edges) for _, _, edges in steps)
        assert total_edges == dataset_pi.num_edges

    def test_weights_preserved(self, name, pi_graph):
        steps = get_heuristic(name).plan(pi_graph)
        total = sum(edge.weight for _, _, edges in steps for edge in edges)
        assert total == pi_graph.total_weight


class TestSequential:
    def test_pivot_order_ascending(self, pi_graph):
        heuristic = SequentialHeuristic()
        assert heuristic.pivot_order(pi_graph) == [0, 1, 2, 3, 4]

    def test_neighbor_order_ascending(self, pi_graph):
        heuristic = SequentialHeuristic()
        assert heuristic.neighbor_order(pi_graph, 0, [4, 1, 3]) == [1, 3, 4]

    def test_first_steps_pivot_zero(self, pi_graph):
        steps = SequentialHeuristic().plan(pi_graph)
        assert steps[0][0] == 0


class TestDegreeBased:
    def test_pivot_order_by_descending_degree(self, pi_graph):
        order = DegreeHighLowHeuristic().pivot_order(pi_graph)
        degrees = pi_graph.degree_array()
        assert all(degrees[order[i]] >= degrees[order[i + 1]] for i in range(len(order) - 1))

    def test_high_low_vs_low_high_neighbor_order(self, pi_graph):
        # partitions 0, 1 and 2 have pairwise distinct PI degrees (3, 2 and 4),
        # so the two variants must visit them in exactly opposite orders
        neighbors = [0, 1, 2]
        high_low = DegreeHighLowHeuristic().neighbor_order(pi_graph, 3, neighbors)
        low_high = DegreeLowHighHeuristic().neighbor_order(pi_graph, 3, neighbors)
        assert high_low == list(reversed(low_high))
        assert high_low == [2, 0, 1]

    def test_same_pivot_order_for_both_variants(self, dataset_pi):
        assert (DegreeHighLowHeuristic().pivot_order(dataset_pi)
                == DegreeLowHighHeuristic().pivot_order(dataset_pi))


class TestGreedyResident:
    def test_plan_is_valid(self, dataset_pi):
        steps = GreedyResidentHeuristic().plan(dataset_pi)
        total_edges = sum(len(edges) for _, _, edges in steps)
        assert total_edges == dataset_pi.num_edges

    def test_chains_pivots_when_possible(self, pi_graph):
        steps = GreedyResidentHeuristic().plan(pi_graph)
        pivots = [first for first, _, _ in steps]
        # at least once the pivot changes to the previous step's partner
        chained = any(pivots[i + 1] != pivots[i] and pivots[i + 1] == steps[i][1]
                      for i in range(len(steps) - 1))
        assert chained


class TestRegistry:
    def test_paper_heuristics_registered(self):
        for name in PAPER_HEURISTICS:
            assert name in HEURISTICS

    def test_get_heuristic(self):
        assert isinstance(get_heuristic("sequential"), SequentialHeuristic)

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown traversal heuristic"):
            get_heuristic("random-walk")
