"""Tests for repro.similarity.workloads."""

import numpy as np
import pytest

from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.similarity.workloads import (
    ProfileChange,
    generate_dense_profiles,
    generate_profile_churn,
    generate_sparse_profiles,
)


class TestProfileChange:
    def test_valid_kinds(self):
        ProfileChange(user=0, kind="add", item=5)
        ProfileChange(user=0, kind="remove", item=5)
        ProfileChange(user=0, kind="set", vector=np.zeros(3))

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ProfileChange(user=0, kind="replace", item=1)

    def test_missing_item(self):
        with pytest.raises(ValueError):
            ProfileChange(user=0, kind="add")

    def test_missing_vector(self):
        with pytest.raises(ValueError):
            ProfileChange(user=0, kind="set")


class TestSparseGeneration:
    def test_shape_and_items_per_user(self):
        store = generate_sparse_profiles(50, 200, items_per_user=10, seed=1)
        assert store.num_users == 50
        assert all(len(store.get(u)) == 10 for u in range(50))
        assert max(store.item_universe()) < 200

    def test_deterministic(self):
        a = generate_sparse_profiles(30, 100, seed=2)
        b = generate_sparse_profiles(30, 100, seed=2)
        assert a == b

    def test_communities_increase_intra_similarity(self):
        store = generate_sparse_profiles(60, 600, items_per_user=20,
                                         num_communities=3, seed=3)
        same, cross = [], []
        for u in range(0, 30, 3):
            same.append(store.similarity(u, u + 3, "jaccard"))      # same community
            cross.append(store.similarity(u, u + 1, "jaccard"))     # different community
        assert np.mean(same) > np.mean(cross)

    def test_items_per_user_cannot_exceed_catalogue(self):
        with pytest.raises(ValueError):
            generate_sparse_profiles(5, 5, items_per_user=10)


class TestDenseGeneration:
    def test_shape(self):
        store = generate_dense_profiles(40, dim=8, seed=4)
        assert store.num_users == 40
        assert store.dim == 8

    def test_deterministic(self):
        a = generate_dense_profiles(20, dim=4, seed=5)
        b = generate_dense_profiles(20, dim=4, seed=5)
        assert np.allclose(a.matrix, b.matrix)

    def test_low_noise_gives_tight_communities(self):
        tight = generate_dense_profiles(60, dim=8, num_communities=3, noise=0.01, seed=6)
        loose = generate_dense_profiles(60, dim=8, num_communities=3, noise=2.0, seed=6)
        # average |cosine| with an arbitrary same-seed partner should be higher when tight
        def avg_abs_cos(store):
            vals = [abs(store.similarity(u, u + 1, "cosine")) for u in range(0, 58)]
            return float(np.mean(vals))
        assert avg_abs_cos(tight) > avg_abs_cos(loose)


class TestChurn:
    def test_sparse_churn_touches_requested_fraction(self):
        store = generate_sparse_profiles(100, 500, seed=7)
        changes = generate_profile_churn(store, change_fraction=0.1, seed=8)
        users = {c.user for c in changes}
        assert len(users) == 10
        assert all(c.kind in ("add", "remove") for c in changes)

    def test_dense_churn_kind(self):
        store = generate_dense_profiles(50, dim=4, seed=9)
        changes = generate_profile_churn(store, change_fraction=0.2, seed=10)
        assert len(changes) == 10
        assert all(c.kind == "set" and c.vector.shape == (4,) for c in changes)

    def test_zero_fraction(self):
        store = generate_dense_profiles(10, dim=2, seed=11)
        assert generate_profile_churn(store, change_fraction=0.0) == []

    def test_deterministic(self):
        store = generate_sparse_profiles(40, 100, seed=12)
        a = generate_profile_churn(store, 0.25, seed=13)
        b = generate_profile_churn(store, 0.25, seed=13)
        assert [(c.user, c.kind, c.item) for c in a] == [(c.user, c.kind, c.item) for c in b]

    def test_unsupported_store(self):
        with pytest.raises(TypeError):
            generate_profile_churn(object(), 0.1)
