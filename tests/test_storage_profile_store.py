"""Tests for repro.storage.profile_store."""

import numpy as np
import pytest

from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.similarity.workloads import ProfileChange
from repro.storage.profile_store import OnDiskProfileStore, ProfileSlice, _contiguous_ranges


class TestContiguousRanges:
    def test_single_run(self):
        assert list(_contiguous_ranges([1, 2, 3])) == [(1, 4)]

    def test_multiple_runs(self):
        assert list(_contiguous_ranges([0, 1, 5, 6, 9])) == [(0, 2), (5, 7), (9, 10)]

    def test_empty(self):
        assert list(_contiguous_ranges([])) == []


class TestDenseOnDisk:
    def test_roundtrip_full(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="instant")
        assert store.kind == "dense"
        assert store.num_users == dense_profiles.num_users
        assert store.dim == dense_profiles.dim
        loaded = store.load_all()
        assert np.allclose(loaded.matrix, dense_profiles.matrix)

    def test_load_users_slice(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        users = [3, 4, 5, 50, 51]
        piece = store.load_users(users)
        assert piece.users == set(users)
        for user in users:
            assert np.allclose(piece.get(user), dense_profiles.get(user))

    def test_load_users_out_of_range(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        with pytest.raises(IndexError):
            store.load_users([dense_profiles.num_users])

    def test_apply_dense_changes(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        new_vector = np.ones(dense_profiles.dim)
        touched = store.apply_changes([ProfileChange(user=2, kind="set", vector=new_vector)])
        assert touched == 1
        assert np.allclose(store.load_users([2]).get(2), new_vector)

    def test_apply_wrong_change_kind(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        with pytest.raises(ValueError):
            store.apply_changes([ProfileChange(user=0, kind="add", item=1)])

    def test_bytes_per_user(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        assert store.estimated_bytes_per_user() == dense_profiles.dim * 8

    def test_io_recorded(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="hdd")
        assert store.io_stats.write_ops >= 1
        store.load_users([0, 1])
        assert store.io_stats.read_ops >= 1


class TestSparseOnDisk:
    def test_roundtrip_full(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        assert store.kind == "sparse"
        loaded = store.load_all()
        assert loaded == sparse_profiles

    def test_load_users_slice(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        users = [0, 7, 8, 100]
        piece = store.load_users(users)
        for user in users:
            assert piece.get(user) == sparse_profiles.get(user)

    def test_apply_sparse_changes(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        changes = [
            ProfileChange(user=1, kind="add", item=9999),
            ProfileChange(user=1, kind="remove", item=next(iter(sparse_profiles.get(1)))),
        ]
        touched = store.apply_changes(changes)
        assert touched == 1
        assert 9999 in store.load_users([1]).get(1)

    def test_apply_wrong_change_kind(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        with pytest.raises(ValueError):
            store.apply_changes([ProfileChange(user=0, kind="set", vector=np.zeros(3))])

    def test_empty_changes_is_noop(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        assert store.apply_changes([]) == 0

    def test_bytes_per_user_positive(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        assert store.estimated_bytes_per_user() > 0


class TestProfileSlice:
    def test_merge(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        a = store.load_users([0, 1])
        b = store.load_users([2, 3])
        merged = a.merge(b)
        assert merged.users == {0, 1, 2, 3}

    def test_merge_kind_mismatch(self, dense_profiles, sparse_profiles, tmp_path):
        dense_store = OnDiskProfileStore.create(tmp_path / "d", dense_profiles)
        sparse_store = OnDiskProfileStore.create(tmp_path / "s", sparse_profiles)
        with pytest.raises(ValueError):
            dense_store.load_users([0]).merge(sparse_store.load_users([0]))

    def test_similarity_pairs_matches_in_memory(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        piece = store.load_users(range(20))
        pairs = np.array([[0, 1], [2, 3], [4, 19]])
        from_slice = piece.similarity_pairs(pairs, "cosine")
        from_store = dense_profiles.similarity_pairs(pairs, "cosine")
        assert np.allclose(from_slice, from_store)

    def test_similarity_pairs_sparse(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        piece = store.load_users(range(10))
        pairs = np.array([[0, 1], [2, 9]])
        assert np.allclose(piece.similarity_pairs(pairs, "jaccard"),
                           sparse_profiles.similarity_pairs(pairs, "jaccard"))

    def test_missing_user_raises(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        piece = store.load_users([0])
        with pytest.raises(KeyError):
            piece.get(5)

    def test_measure_kind_mismatch(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        piece = store.load_users([0, 1])
        with pytest.raises(ValueError):
            piece.similarity_pairs(np.array([[0, 1]]), "jaccard")


def _write_v1_sparse(base_dir, profiles):
    """Handcraft a version-1 sparse layout: raw sorted item ids, no version."""
    import json
    num_users = profiles.num_users
    indptr = np.zeros(num_users + 1, dtype=np.int64)
    items_list = []
    for user in range(num_users):
        items = np.asarray(sorted(profiles.get(user)), dtype=np.int64)
        items_list.append(items)
        indptr[user + 1] = indptr[user] + len(items)
    items = (np.concatenate(items_list) if items_list
             else np.empty(0, dtype=np.int64))
    indptr.tofile(base_dir / "profiles_indptr.bin")
    items.tofile(base_dir / "profiles_items.bin")
    (base_dir / "profiles_meta.json").write_text(
        json.dumps({"kind": "sparse", "num_users": num_users}))


def _write_v1_dense(base_dir, profiles):
    """Handcraft a version-1 dense layout: matrix only, no norms, no version."""
    import json
    profiles.matrix.astype(np.float64).tofile(base_dir / "profiles_dense.bin")
    (base_dir / "profiles_meta.json").write_text(
        json.dumps({"kind": "dense", "num_users": profiles.num_users,
                    "dim": profiles.dim}))


class TestFormatVersions:
    def test_fresh_stores_are_v3(self, dense_profiles, sparse_profiles, tmp_path):
        dense = OnDiskProfileStore.create(tmp_path / "d", dense_profiles)
        sparse = OnDiskProfileStore.create(tmp_path / "s", sparse_profiles)
        assert dense.format_version == 3
        assert sparse.format_version == 3
        assert (tmp_path / "d" / "profiles_norms.bin").exists()
        assert (tmp_path / "s" / "profiles_item_ids.bin").exists()
        assert (tmp_path / "s" / "profiles_seg_00000_indptr.bin").exists()
        assert (tmp_path / "s" / "profiles_seg_00000_codes.bin").exists()

    def test_v2_target_still_writable(self, sparse_profiles, tmp_path):
        """The previous monolithic CSR layout stays writable (and readable)."""
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles,
                                          disk_model="instant", format_version=2)
        assert store.format_version == 2
        assert (tmp_path / "profiles_indptr.bin").exists()
        reopened = OnDiskProfileStore(tmp_path, disk_model="instant")
        assert reopened.load_all() == sparse_profiles
        piece = reopened.load_users([0, 3, 100])
        for user in (0, 3, 100):
            assert piece.get(user) == sparse_profiles.get(user)

    def test_v1_sparse_fallback_loader(self, sparse_profiles, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        _write_v1_sparse(tmp_path, sparse_profiles)
        store = OnDiskProfileStore(tmp_path, disk_model="instant")
        assert store.format_version == 1
        piece = store.load_users([0, 3, 4, 100])
        for user in (0, 3, 4, 100):
            assert piece.get(user) == sparse_profiles.get(user)
        assert store.load_all() == sparse_profiles

    def test_v1_sparse_scores_match_v2(self, sparse_profiles, tmp_path):
        _write_v1_sparse(tmp_path, sparse_profiles)
        v1 = OnDiskProfileStore(tmp_path, disk_model="instant")
        v2 = OnDiskProfileStore.create(tmp_path / "v2", sparse_profiles,
                                       disk_model="instant")
        pairs = np.array([[0, 1], [2, 50], [7, 7]], dtype=np.int64)
        users = range(sparse_profiles.num_users)
        for measure in ("jaccard", "overlap", "common", "cosine_set"):
            np.testing.assert_allclose(
                v1.load_users(users).similarity_pairs(pairs, measure),
                v2.load_users(users).similarity_pairs(pairs, measure),
                rtol=0.0, atol=1e-12)

    def test_v1_dense_fallback_loader(self, dense_profiles, tmp_path):
        _write_v1_dense(tmp_path, dense_profiles)
        store = OnDiskProfileStore(tmp_path, disk_model="instant")
        assert store.format_version == 1
        piece = store.load_users(range(10))
        for user in range(10):
            assert np.allclose(piece.get(user), dense_profiles.get(user))
        pairs = np.array([[0, 1], [2, 9]], dtype=np.int64)
        np.testing.assert_allclose(
            piece.similarity_pairs(pairs, "cosine"),
            dense_profiles.similarity_pairs(pairs, "cosine"),
            rtol=0.0, atol=1e-12)

    def test_sparse_update_upgrades_v1_to_current(self, sparse_profiles, tmp_path):
        _write_v1_sparse(tmp_path, sparse_profiles)
        store = OnDiskProfileStore(tmp_path, disk_model="instant")
        store.apply_changes([ProfileChange(user=1, kind="add", item=9999)])
        assert store.format_version == 3
        assert 9999 in store.load_users([1]).get(1)

    def test_dense_v1_update_keeps_working(self, dense_profiles, tmp_path):
        _write_v1_dense(tmp_path, dense_profiles)
        store = OnDiskProfileStore(tmp_path, disk_model="instant")
        vector = np.full(dense_profiles.dim, 3.0)
        store.apply_changes([ProfileChange(user=0, kind="set", vector=vector)])
        piece = store.load_users([0, 1])
        assert np.allclose(piece.get(0), vector)
        # norms recomputed from the matrix on v1 loads
        assert np.allclose(piece._norms[0], np.linalg.norm(vector))

    def test_dense_norms_stay_in_sync_after_update(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles,
                                          disk_model="instant")
        vector = np.arange(dense_profiles.dim, dtype=np.float64)
        store.apply_changes([ProfileChange(user=5, kind="set", vector=vector)])
        piece = store.load_users(range(10))
        np.testing.assert_array_equal(
            piece._norms, np.linalg.norm(np.array(piece.matrix), axis=1))


class TestChargeSliceRead:
    def test_dense_contiguous_bytes(self, dense_profiles, tmp_path):
        """Byte math pinned independently: rows × (dim + 1 norm) × 8, one op."""
        store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="ssd")
        store.io_stats.reset()
        store.charge_slice_read(range(20, 60))
        assert store.io_stats.read_ops == 1
        assert store.io_stats.bytes_read == 40 * (dense_profiles.dim + 1) * 8
        assert store.io_stats.simulated_io_seconds > 0

    def test_dense_scattered_charges_per_range(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="ssd")
        store.io_stats.reset()
        store.charge_slice_read([0, 1, 2, 50, 51, 119])  # three ranges
        row_bytes = (dense_profiles.dim + 1) * 8
        assert store.io_stats.read_ops == 3
        assert store.io_stats.bytes_read == 6 * row_bytes

    def test_sparse_contiguous_bytes(self, sparse_profiles, tmp_path):
        """Bytes = the users' item codes plus the indptr slice, one op."""
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles, disk_model="ssd")
        num_codes = sum(len(sparse_profiles.get(u)) for u in range(10, 30))
        store.io_stats.reset()
        store.charge_slice_read(range(10, 30))
        assert store.io_stats.read_ops == 1
        assert store.io_stats.bytes_read == (num_codes + 21) * 8

    def test_charge_equals_load_invariant(self, dense_profiles, sparse_profiles,
                                          tmp_path):
        """load_users routes its accounting through charge_slice_read; this
        pins that invariant so the two can never drift apart silently."""
        for name, profiles, ids in (("d", dense_profiles, range(20, 60)),
                                    ("s", sparse_profiles, [0, 1, 2, 50, 51, 119])):
            store = OnDiskProfileStore.create(tmp_path / name, profiles,
                                              disk_model="ssd")
            store.io_stats.reset()
            store.load_users(ids)
            loaded = store.io_stats.as_dict()
            store.io_stats.reset()
            store.charge_slice_read(ids)
            assert store.io_stats.as_dict() == loaded


class TestTouchedRowDeltas:
    """touched_rows_since: the delta feed of the incremental phase 4."""

    def _sparse_store(self, tmp_path, journal_limit=None):
        profiles = SparseProfileStore(
            [{i, i + 1, i + 2} for i in range(40)])
        return OnDiskProfileStore.create(tmp_path, profiles,
                                         journal_limit=journal_limit)

    def test_fresh_store_reports_no_deltas(self, tmp_path):
        store = self._sparse_store(tmp_path / "s")
        assert store.touched_rows_since(store.generation).size == 0

    def test_deltas_accumulate_across_batches(self, tmp_path):
        store = self._sparse_store(tmp_path / "s")
        g0 = store.generation
        store.apply_changes([ProfileChange(user=3, kind="add", item=900)])
        g1 = store.generation
        store.apply_changes([ProfileChange(user=7, kind="add", item=901),
                             ProfileChange(user=3, kind="remove", item=900)])
        np.testing.assert_array_equal(store.touched_rows_since(g0), [3, 7])
        np.testing.assert_array_equal(store.touched_rows_since(g1), [3, 7])
        assert store.touched_rows_since(store.generation).size == 0

    def test_dense_deltas(self, tmp_path):
        profiles = DenseProfileStore(np.eye(10))
        store = OnDiskProfileStore.create(tmp_path / "d", profiles)
        g0 = store.generation
        store.apply_changes([ProfileChange(user=4, kind="set",
                                           vector=np.ones(10))])
        np.testing.assert_array_equal(store.touched_rows_since(g0), [4])

    def test_unknown_generations_answer_none(self, tmp_path):
        store = self._sparse_store(tmp_path / "s")
        assert store.touched_rows_since(store.generation + 1) is None  # future
        assert store.touched_rows_since(store.generation - 1) is None  # pre-history

    def test_reload_truncates_history(self, tmp_path):
        store = self._sparse_store(tmp_path / "s")
        g0 = store.generation
        store.apply_changes([ProfileChange(user=1, kind="add", item=902)])
        store.reload()
        assert store.touched_rows_since(g0) is None
        assert store.touched_rows_since(store.generation).size == 0

    def test_compaction_truncates_history(self, tmp_path):
        store = self._sparse_store(tmp_path / "s", journal_limit=2)
        g0 = store.generation
        store.apply_changes([ProfileChange(user=u, kind="add", item=910 + u)
                             for u in range(5)])  # 5 > 2: compacts
        assert store.touched_rows_since(g0) is None
        # history restarts cleanly after the rollover
        g_after = store.generation
        store.apply_changes([ProfileChange(user=9, kind="add", item=990)])
        np.testing.assert_array_equal(store.touched_rows_since(g_after), [9])

    def test_full_rewrite_truncates_history(self, tmp_path):
        profiles = SparseProfileStore([{i} for i in range(20)])
        store = OnDiskProfileStore.create(tmp_path / "v2", profiles,
                                          format_version=2)
        g0 = store.generation
        # v2 updates rewrite (and upgrade) the whole store
        store.apply_changes([ProfileChange(user=2, kind="add", item=500)])
        assert store.touched_rows_since(g0) is None

    def test_delta_log_cap_raises_the_floor(self, tmp_path):
        import repro.storage.profile_store as module
        store = self._sparse_store(tmp_path / "s", journal_limit=10_000)
        g0 = store.generation
        for index in range(module._DELTA_LOG_LIMIT + 3):
            store.apply_changes([ProfileChange(user=index % 40, kind="add",
                                               item=1000 + index)])
        assert store.touched_rows_since(g0) is None  # oldest entries dropped
        recent = store.generation - 5
        touched = store.touched_rows_since(recent)
        assert touched is not None and len(touched) <= 5


class TestErrors:
    def test_open_without_create(self, tmp_path):
        store = OnDiskProfileStore(tmp_path)
        with pytest.raises(RuntimeError):
            _ = store.num_users

    def test_unsupported_store_type(self, tmp_path):
        with pytest.raises(TypeError):
            OnDiskProfileStore.create(tmp_path, object())
