"""Tests for repro.storage.profile_store."""

import numpy as np
import pytest

from repro.similarity.profiles import DenseProfileStore, SparseProfileStore
from repro.similarity.workloads import ProfileChange
from repro.storage.profile_store import OnDiskProfileStore, ProfileSlice, _contiguous_ranges


class TestContiguousRanges:
    def test_single_run(self):
        assert list(_contiguous_ranges([1, 2, 3])) == [(1, 4)]

    def test_multiple_runs(self):
        assert list(_contiguous_ranges([0, 1, 5, 6, 9])) == [(0, 2), (5, 7), (9, 10)]

    def test_empty(self):
        assert list(_contiguous_ranges([])) == []


class TestDenseOnDisk:
    def test_roundtrip_full(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="instant")
        assert store.kind == "dense"
        assert store.num_users == dense_profiles.num_users
        assert store.dim == dense_profiles.dim
        loaded = store.load_all()
        assert np.allclose(loaded.matrix, dense_profiles.matrix)

    def test_load_users_slice(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        users = [3, 4, 5, 50, 51]
        piece = store.load_users(users)
        assert piece.users == set(users)
        for user in users:
            assert np.allclose(piece.get(user), dense_profiles.get(user))

    def test_load_users_out_of_range(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        with pytest.raises(IndexError):
            store.load_users([dense_profiles.num_users])

    def test_apply_dense_changes(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        new_vector = np.ones(dense_profiles.dim)
        touched = store.apply_changes([ProfileChange(user=2, kind="set", vector=new_vector)])
        assert touched == 1
        assert np.allclose(store.load_users([2]).get(2), new_vector)

    def test_apply_wrong_change_kind(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        with pytest.raises(ValueError):
            store.apply_changes([ProfileChange(user=0, kind="add", item=1)])

    def test_bytes_per_user(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        assert store.estimated_bytes_per_user() == dense_profiles.dim * 8

    def test_io_recorded(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles, disk_model="hdd")
        assert store.io_stats.write_ops >= 1
        store.load_users([0, 1])
        assert store.io_stats.read_ops >= 1


class TestSparseOnDisk:
    def test_roundtrip_full(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        assert store.kind == "sparse"
        loaded = store.load_all()
        assert loaded == sparse_profiles

    def test_load_users_slice(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        users = [0, 7, 8, 100]
        piece = store.load_users(users)
        for user in users:
            assert piece.get(user) == sparse_profiles.get(user)

    def test_apply_sparse_changes(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        changes = [
            ProfileChange(user=1, kind="add", item=9999),
            ProfileChange(user=1, kind="remove", item=next(iter(sparse_profiles.get(1)))),
        ]
        touched = store.apply_changes(changes)
        assert touched == 1
        assert 9999 in store.load_users([1]).get(1)

    def test_apply_wrong_change_kind(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        with pytest.raises(ValueError):
            store.apply_changes([ProfileChange(user=0, kind="set", vector=np.zeros(3))])

    def test_empty_changes_is_noop(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        assert store.apply_changes([]) == 0

    def test_bytes_per_user_positive(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        assert store.estimated_bytes_per_user() > 0


class TestProfileSlice:
    def test_merge(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        a = store.load_users([0, 1])
        b = store.load_users([2, 3])
        merged = a.merge(b)
        assert merged.users == {0, 1, 2, 3}

    def test_merge_kind_mismatch(self, dense_profiles, sparse_profiles, tmp_path):
        dense_store = OnDiskProfileStore.create(tmp_path / "d", dense_profiles)
        sparse_store = OnDiskProfileStore.create(tmp_path / "s", sparse_profiles)
        with pytest.raises(ValueError):
            dense_store.load_users([0]).merge(sparse_store.load_users([0]))

    def test_similarity_pairs_matches_in_memory(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        piece = store.load_users(range(20))
        pairs = np.array([[0, 1], [2, 3], [4, 19]])
        from_slice = piece.similarity_pairs(pairs, "cosine")
        from_store = dense_profiles.similarity_pairs(pairs, "cosine")
        assert np.allclose(from_slice, from_store)

    def test_similarity_pairs_sparse(self, sparse_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, sparse_profiles)
        piece = store.load_users(range(10))
        pairs = np.array([[0, 1], [2, 9]])
        assert np.allclose(piece.similarity_pairs(pairs, "jaccard"),
                           sparse_profiles.similarity_pairs(pairs, "jaccard"))

    def test_missing_user_raises(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        piece = store.load_users([0])
        with pytest.raises(KeyError):
            piece.get(5)

    def test_measure_kind_mismatch(self, dense_profiles, tmp_path):
        store = OnDiskProfileStore.create(tmp_path, dense_profiles)
        piece = store.load_users([0, 1])
        with pytest.raises(ValueError):
            piece.similarity_pairs(np.array([[0, 1]]), "jaccard")


class TestErrors:
    def test_open_without_create(self, tmp_path):
        store = OnDiskProfileStore(tmp_path)
        with pytest.raises(RuntimeError):
            _ = store.num_users

    def test_unsupported_store_type(self, tmp_path):
        with pytest.raises(TypeError):
            OnDiskProfileStore.create(tmp_path, object())
