"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    configuration_model_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    powerlaw_fixed_size_graph,
    random_knn_graph,
    watts_strogatz_graph,
)


def _no_self_loops(graph):
    edges = graph.edges_array()
    return len(edges) == 0 or (edges[:, 0] != edges[:, 1]).all()


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi_graph(50, num_edges=200, seed=1)
        assert graph.num_vertices == 50
        assert graph.num_edges == 200

    def test_probability_mode(self):
        graph = erdos_renyi_graph(60, edge_probability=0.05, seed=2)
        assert 0 < graph.num_edges < 60 * 59

    def test_deterministic(self):
        a = erdos_renyi_graph(40, num_edges=100, seed=9)
        b = erdos_renyi_graph(40, num_edges=100, seed=9)
        assert np.array_equal(a.edges_array(), b.edges_array())

    def test_no_self_loops(self):
        assert _no_self_loops(erdos_renyi_graph(30, num_edges=150, seed=3))

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, edge_probability=0.1, num_edges=5)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(3, num_edges=100)


class TestBarabasiAlbert:
    def test_shape(self):
        graph = barabasi_albert_graph(200, 3, seed=4)
        assert graph.num_vertices == 200
        # every vertex after the seed adds exactly 3 out-edges
        assert graph.num_edges == (200 - 3) * 3

    def test_skewed_in_degree(self):
        graph = barabasi_albert_graph(300, 2, seed=5)
        in_degrees = graph.in_degree_array()
        assert in_degrees.max() >= 5 * max(1, int(np.median(in_degrees[in_degrees > 0])))

    def test_requires_enough_vertices(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 5)

    def test_no_self_loops(self):
        assert _no_self_loops(barabasi_albert_graph(100, 2, seed=6))


class TestWattsStrogatz:
    def test_degree_close_to_k(self):
        graph = watts_strogatz_graph(100, 4, 0.1, seed=7)
        assert graph.num_vertices == 100
        assert graph.num_edges <= 400
        assert graph.num_edges >= 350

    def test_zero_rewiring_is_ring(self):
        graph = watts_strogatz_graph(20, 2, 0.0, seed=8)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert graph.num_edges == 40

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(5, 5, 0.1)


class TestConfigurationModel:
    def test_approximates_degrees(self):
        out_deg = [3] * 50
        graph = configuration_model_graph(out_deg, seed=9)
        assert graph.num_vertices == 50
        assert graph.num_edges <= 150
        assert graph.num_edges >= 100

    def test_mismatched_totals_trimmed(self):
        graph = configuration_model_graph([5, 0, 0], [1, 1, 1], seed=10)
        assert graph.num_vertices == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            configuration_model_graph([1, 2], [1])

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            configuration_model_graph([-1, 1])


class TestPowerlawCluster:
    def test_shape(self):
        graph = powerlaw_cluster_graph(150, 3, 0.5, seed=11)
        assert graph.num_vertices == 150
        assert graph.num_edges > 0
        assert _no_self_loops(graph)


class TestRandomKnnGraph:
    def test_exact_out_degree(self):
        graph = random_knn_graph(60, 5, seed=12)
        assert np.all(graph.out_degree_array() == 5)
        assert _no_self_loops(graph)

    def test_requires_n_gt_k(self):
        with pytest.raises(ValueError):
            random_knn_graph(5, 5)


class TestPowerlawFixedSize:
    def test_exact_counts(self):
        graph = powerlaw_fixed_size_graph(500, 3000, seed=13)
        assert graph.num_vertices == 500
        assert graph.num_edges == 3000

    def test_deterministic(self):
        a = powerlaw_fixed_size_graph(200, 800, seed=14)
        b = powerlaw_fixed_size_graph(200, 800, seed=14)
        assert np.array_equal(a.edges_array(), b.edges_array())

    def test_skewed_degrees(self):
        graph = powerlaw_fixed_size_graph(400, 4000, exponent=2.0, seed=15)
        degrees = graph.degree_array()
        assert degrees.max() > 4 * degrees.mean()

    def test_no_self_loops(self):
        assert _no_self_loops(powerlaw_fixed_size_graph(100, 500, seed=16))

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_fixed_size_graph(10, 20, exponent=1.0)

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            powerlaw_fixed_size_graph(5, 100)
