"""Tests for repro.storage.memory_manager."""

import numpy as np
import pytest

from repro.partition.model import build_partitions
from repro.partition.partitioners import ContiguousPartitioner
from repro.storage.memory_manager import MemoryBudget, PartitionCache
from repro.storage.partition_store import PartitionStore


@pytest.fixture
def stored_partitions(medium_graph, tmp_path):
    assignment = ContiguousPartitioner().assign(medium_graph, 6)
    partitions = build_partitions(medium_graph, assignment, 6)
    store = PartitionStore(tmp_path, disk_model="instant")
    store.write_partitions(partitions)
    store.io_stats.reset()
    return store, partitions


class TestMemoryBudget:
    def test_allocate_release(self):
        budget = MemoryBudget(1000)
        budget.allocate(400)
        assert budget.used_bytes == 400
        assert budget.available_bytes == 600
        budget.release(100)
        assert budget.used_bytes == 300

    def test_over_allocation_raises(self):
        budget = MemoryBudget(100)
        with pytest.raises(MemoryError):
            budget.allocate(101)

    def test_peak_tracking(self):
        budget = MemoryBudget(1000)
        budget.allocate(700)
        budget.release(700)
        budget.allocate(100)
        assert budget.peak_bytes == 700

    def test_release_never_negative(self):
        budget = MemoryBudget(100)
        budget.release(50)
        assert budget.used_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_negative_allocation_rejected(self):
        budget = MemoryBudget(10)
        with pytest.raises(ValueError):
            budget.allocate(-1)


class TestPartitionCache:
    def test_acquire_loads_once(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        cache.acquire(0)
        cache.acquire(0)
        assert cache.io_stats.partition_loads == 1
        assert cache.resident_ids == [0]

    def test_eviction_at_capacity(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        cache.acquire(0)
        cache.acquire(1)
        cache.acquire(2)
        assert len(cache.resident_ids) == 2
        assert not cache.is_resident(0)
        assert cache.io_stats.partition_loads == 3
        assert cache.io_stats.partition_unloads == 1

    def test_lru_order(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        cache.acquire(0)
        cache.acquire(1)
        cache.acquire(0)          # 1 becomes LRU
        cache.acquire(2)
        assert cache.is_resident(0)
        assert not cache.is_resident(1)

    def test_acquire_pair(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        a, b = cache.acquire_pair(3, 4)
        assert a.pid == 3 and b.pid == 4
        assert set(cache.resident_ids) == {3, 4}

    def test_acquire_pair_same_partition(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        a, b = cache.acquire_pair(1, 1)
        assert a is b
        assert cache.io_stats.partition_loads == 1

    def test_acquire_pair_keeps_both_resident(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        cache.acquire_pair(0, 1)
        cache.acquire_pair(1, 2)
        assert set(cache.resident_ids) == {1, 2}

    def test_flush_unloads_everything(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=3)
        cache.acquire(0)
        cache.acquire(1)
        cache.flush()
        assert cache.resident_ids == []
        assert cache.io_stats.partition_unloads == 2

    def test_release_specific(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=3)
        cache.acquire(0)
        cache.release(0)
        cache.release(0)          # no-op
        assert cache.io_stats.partition_unloads == 1

    def test_budget_respected(self, stored_partitions):
        store, partitions = stored_partitions
        size = max(p.estimated_bytes() for p in partitions)
        budget = MemoryBudget(size * 2 + 16)
        cache = PartitionCache(store, max_resident=2, memory_budget=budget)
        cache.acquire_pair(0, 1)
        assert budget.used_bytes > 0
        cache.flush()
        assert budget.used_bytes == 0

    def test_budget_too_small_raises(self, stored_partitions):
        store, partitions = stored_partitions
        budget = MemoryBudget(10)     # far below one partition
        cache = PartitionCache(store, max_resident=2, memory_budget=budget)
        with pytest.raises(MemoryError):
            cache.acquire(0)

    def test_single_slot_pair_rejected(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=1)
        with pytest.raises(RuntimeError):
            cache.acquire_pair(0, 1)

    def test_load_unload_operations_property(self, stored_partitions):
        store, _ = stored_partitions
        cache = PartitionCache(store, max_resident=2)
        cache.acquire(0)
        cache.acquire(1)
        cache.acquire(2)
        assert cache.load_unload_operations == cache.io_stats.load_unload_operations == 4
