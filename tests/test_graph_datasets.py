"""Tests for repro.graph.datasets (synthetic SNAP stand-ins)."""

import pytest

from repro.graph.datasets import (
    DATASETS,
    TABLE1_ORDER,
    dataset_summary,
    load_dataset,
    small_dataset,
)


class TestRegistry:
    def test_six_datasets_registered(self):
        assert len(DATASETS) == 6
        assert set(TABLE1_ORDER) == set(DATASETS)

    def test_paper_counts(self):
        # node/edge counts printed in the paper's Table 1
        expected = {
            "wiki-vote": (7115, 100762),
            "gen-rel": (5241, 14484),
            "high-energy": (12006, 118489),
            "astro-phy": (18771, 198050),
            "email": (36692, 183831),
            "gnutella": (26518, 65369),
        }
        for name, (nodes, edges) in expected.items():
            spec = DATASETS[name]
            assert spec.num_vertices == nodes
            assert spec.num_edges == edges

    def test_summary_mentions_every_dataset(self):
        text = dataset_summary()
        for spec in DATASETS.values():
            assert spec.display_name in text


class TestGeneration:
    def test_generated_counts_match_spec(self):
        spec = DATASETS["gen-rel"]
        graph = spec.generate(seed=1)
        assert graph.num_vertices == spec.num_vertices
        assert graph.num_edges == spec.num_edges

    def test_generation_deterministic_default_seed(self):
        a = DATASETS["gen-rel"].generate()
        b = DATASETS["gen-rel"].generate()
        assert a.num_edges == b.num_edges
        assert (a.edges_array() == b.edges_array()).all()

    def test_load_by_key_and_display_name(self):
        by_key = load_dataset("gen-rel", seed=2)
        by_display = load_dataset("Gen. Rel.", seed=2)
        assert by_key.num_edges == by_display.num_edges

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("does-not-exist")

    def test_small_dataset_shape(self):
        graph = small_dataset(300, 2000, seed=3)
        assert graph.num_vertices == 300
        assert graph.num_edges == 2000
