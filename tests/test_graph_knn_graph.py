"""Tests for repro.graph.knn_graph."""

import numpy as np
import pytest

from repro.graph.knn_graph import KNNGraph


class TestConstruction:
    def test_random_graph_degree(self):
        graph = KNNGraph.random(50, 5, seed=1)
        assert graph.num_vertices == 50
        for v in range(50):
            neighbors = graph.neighbors(v)
            assert len(neighbors) == 5
            assert v not in neighbors

    def test_random_graph_deterministic(self):
        a = KNNGraph.random(30, 4, seed=7)
        b = KNNGraph.random(30, 4, seed=7)
        assert a.edge_difference(b) == 0

    def test_random_requires_enough_vertices(self):
        with pytest.raises(ValueError):
            KNNGraph.random(5, 5, seed=0)

    def test_from_neighbor_lists(self):
        graph = KNNGraph.from_neighbor_lists([[(1, 0.9)], [(0, 0.8)]], k=3)
        assert graph.neighbors(0) == [1]
        assert graph.score(1, 0) == pytest.approx(0.8)

    def test_copy_independent(self):
        graph = KNNGraph.random(20, 3, seed=2)
        clone = graph.copy()
        clone.add_candidate(0, 10, 5.0)
        assert graph.score(0, 10) != 5.0 or 10 not in graph.neighbors(0) or True
        assert clone.edge_difference(graph) >= 0


class TestAddCandidate:
    def test_fills_up_to_k(self):
        graph = KNNGraph(10, 3)
        assert graph.add_candidate(0, 1, 0.1)
        assert graph.add_candidate(0, 2, 0.2)
        assert graph.add_candidate(0, 3, 0.3)
        assert set(graph.neighbors(0)) == {1, 2, 3}

    def test_evicts_weakest(self):
        graph = KNNGraph(10, 2)
        graph.add_candidate(0, 1, 0.1)
        graph.add_candidate(0, 2, 0.2)
        assert graph.add_candidate(0, 3, 0.5)
        assert set(graph.neighbors(0)) == {2, 3}

    def test_rejects_weaker_when_full(self):
        graph = KNNGraph(10, 2)
        graph.add_candidate(0, 1, 0.5)
        graph.add_candidate(0, 2, 0.6)
        assert graph.add_candidate(0, 3, 0.1) is False
        assert set(graph.neighbors(0)) == {1, 2}

    def test_rejects_self(self):
        graph = KNNGraph(5, 2)
        assert graph.add_candidate(1, 1, 0.9) is False

    def test_improving_existing_score(self):
        graph = KNNGraph(5, 2)
        graph.add_candidate(0, 1, 0.2)
        assert graph.add_candidate(0, 1, 0.8) is True
        assert graph.score(0, 1) == pytest.approx(0.8)

    def test_lower_score_for_existing_neighbor_ignored(self):
        graph = KNNGraph(5, 2)
        graph.add_candidate(0, 1, 0.8)
        assert graph.add_candidate(0, 1, 0.2) is False
        assert graph.score(0, 1) == pytest.approx(0.8)

    def test_out_of_range_vertex(self):
        graph = KNNGraph(3, 1)
        with pytest.raises(IndexError):
            graph.add_candidate(0, 9, 1.0)

    def test_worst_score(self):
        graph = KNNGraph(5, 2)
        assert graph.worst_score(0) == float("-inf")
        graph.add_candidate(0, 1, 0.4)
        graph.add_candidate(0, 2, 0.9)
        assert graph.worst_score(0) == pytest.approx(0.4)


class TestSetNeighbors:
    def test_keeps_topk(self):
        graph = KNNGraph(10, 2)
        graph.set_neighbors(0, [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7)])
        assert set(graph.neighbors(0)) == {2, 4}

    def test_drops_self_and_duplicates(self):
        graph = KNNGraph(10, 3)
        graph.set_neighbors(0, [(0, 1.0), (1, 0.2), (1, 0.6)])
        assert graph.neighbors(0) == [1]
        assert graph.score(0, 1) == pytest.approx(0.6)

    def test_neighbors_sorted_by_score(self):
        graph = KNNGraph(10, 3)
        graph.set_neighbors(0, [(1, 0.3), (2, 0.9), (3, 0.6)])
        assert graph.neighbors(0) == [2, 3, 1]


class TestMetricsAndViews:
    def test_edge_count(self):
        graph = KNNGraph.random(40, 4, seed=3)
        assert graph.num_edges == 160

    def test_edges_iterator_scores(self):
        graph = KNNGraph(4, 2)
        graph.add_candidate(0, 1, 0.5)
        edges = list(graph.edges())
        assert edges == [(0, 1, 0.5)]

    def test_edge_array_and_csr(self):
        graph = KNNGraph.random(25, 3, seed=4)
        arr = graph.edge_array()
        assert arr.shape == (75, 2)
        csr = graph.to_csr()
        assert csr.num_edges == 75
        digraph = graph.to_digraph()
        assert digraph.num_edges == 75

    def test_average_score(self):
        graph = KNNGraph(4, 2)
        assert graph.average_score() == 0.0
        graph.add_candidate(0, 1, 0.4)
        graph.add_candidate(1, 2, 0.8)
        assert graph.average_score() == pytest.approx(0.6)

    def test_edge_difference_symmetric(self):
        a = KNNGraph.random(30, 3, seed=1)
        b = KNNGraph.random(30, 3, seed=2)
        assert a.edge_difference(b) == b.edge_difference(a)
        assert a.edge_difference(a) == 0

    def test_edge_difference_size_mismatch(self):
        with pytest.raises(ValueError):
            KNNGraph(3, 1).edge_difference(KNNGraph(4, 1))

    def test_recall_bounds(self):
        exact = KNNGraph.random(30, 3, seed=5)
        approx = exact.copy()
        assert approx.recall_against(exact) == pytest.approx(1.0)
        other = KNNGraph.random(30, 3, seed=6)
        assert 0.0 <= other.recall_against(exact) <= 1.0

    def test_recall_empty_truth_is_one(self):
        empty = KNNGraph(10, 2)
        approx = KNNGraph(10, 2)
        assert approx.recall_against(empty) == 1.0
