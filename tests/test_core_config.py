"""Tests for repro.core.config."""

import pytest

from repro.core.config import EngineConfig
from repro.storage.disk_model import DISK_PRESETS


class TestDefaults:
    def test_default_config_is_valid(self):
        config = EngineConfig()
        assert config.k == 10
        assert config.max_resident_partitions == 2
        assert config.heuristic == "sequential"

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.k = 5


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            EngineConfig(k=0)

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            EngineConfig(num_partitions=0)

    def test_resident_partitions_must_be_at_least_two(self):
        with pytest.raises(ValueError, match="at least 2"):
            EngineConfig(max_resident_partitions=1)

    def test_unknown_partitioner(self):
        with pytest.raises(ValueError, match="partitioner"):
            EngineConfig(partitioner="magic")

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError, match="heuristic"):
            EngineConfig(heuristic="oracle")

    def test_unknown_measure(self):
        with pytest.raises(ValueError, match="measure"):
            EngineConfig(measure="levenshtein")

    def test_none_measure_allowed(self):
        assert EngineConfig(measure=None).measure is None

    def test_unknown_disk_preset(self):
        with pytest.raises(ValueError, match="disk model"):
            EngineConfig(disk_model="tape")

    def test_custom_disk_model_instance(self):
        config = EngineConfig(disk_model=DISK_PRESETS["hdd"])
        assert config.disk_model.name == "hdd"

    def test_invalid_memory_budget(self):
        with pytest.raises(ValueError):
            EngineConfig(memory_budget_bytes=0)

    def test_invalid_bridge_cap(self):
        with pytest.raises(ValueError):
            EngineConfig(max_pairs_per_bridge=0)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            EngineConfig(num_threads=0)


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        base = EngineConfig(k=5)
        derived = base.with_overrides(k=7, heuristic="degree-low-high")
        assert base.k == 5
        assert derived.k == 7
        assert derived.heuristic == "degree-low-high"

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            EngineConfig().with_overrides(k=-1)
