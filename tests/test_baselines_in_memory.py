"""Tests for repro.baselines.in_memory."""

import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.baselines.in_memory import InMemoryKNNIterator
from repro.graph.knn_graph import KNNGraph
from repro.similarity.workloads import generate_dense_profiles


@pytest.fixture(scope="module")
def profiles():
    return generate_dense_profiles(120, dim=8, num_communities=4, noise=0.2, seed=23)


class TestSingleIteration:
    def test_candidates_are_neighbors_and_two_hop(self, profiles):
        init = KNNGraph.random(profiles.num_users, 5, seed=1)
        iterator = InMemoryKNNIterator(k=5, measure="cosine")
        result = iterator.iterate(init, profiles)
        # every new neighbour of u must have been a neighbour or a neighbour's
        # neighbour of u in the input graph
        for user in range(profiles.num_users):
            reachable = set(init.neighbors(user))
            for n in list(reachable):
                reachable.update(init.neighbors(n))
            reachable.discard(user)
            assert set(result.graph.neighbors(user)) <= reachable

    def test_counts_reported(self, profiles):
        init = KNNGraph.random(profiles.num_users, 5, seed=2)
        result = InMemoryKNNIterator(k=5, measure="cosine").iterate(init, profiles)
        assert result.similarity_evaluations == result.candidate_pairs
        assert result.similarity_evaluations > 0

    def test_size_mismatch_rejected(self, profiles):
        iterator = InMemoryKNNIterator(k=5)
        with pytest.raises(ValueError):
            iterator.iterate(KNNGraph.random(30, 5, seed=3), profiles)


class TestMultiIteration:
    def test_recall_improves_over_iterations(self, profiles):
        exact = brute_force_knn(profiles, 6, measure="cosine")
        iterator = InMemoryKNNIterator(k=6, measure="cosine")
        results = iterator.run(profiles, num_iterations=4, seed=5)
        recalls = [r.graph.recall_against(exact) for r in results]
        assert recalls[-1] > recalls[0]
        assert recalls[-1] > 0.6

    def test_average_score_non_decreasing(self, profiles):
        iterator = InMemoryKNNIterator(k=6, measure="cosine")
        results = iterator.run(profiles, num_iterations=3, seed=6)
        scores = [r.graph.average_score() for r in results]
        assert scores == sorted(scores)

    def test_run_length(self, profiles):
        iterator = InMemoryKNNIterator(k=4, measure="cosine")
        results = iterator.run(profiles, num_iterations=2, seed=7)
        assert len(results) == 2

    def test_invalid_iteration_count(self, profiles):
        with pytest.raises(ValueError):
            InMemoryKNNIterator(k=4).run(profiles, num_iterations=0)
