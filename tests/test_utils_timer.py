"""Tests for repro.utils.timer."""

import time

import pytest

from repro.utils.timer import PhaseTimer, Stopwatch


class TestStopwatch:
    def test_accumulates_elapsed(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed > 0
        assert watch.elapsed == elapsed

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_measure_context_manager(self):
        watch = Stopwatch()
        with watch.measure():
            time.sleep(0.005)
        assert watch.elapsed >= 0.004
        assert not watch.running


class TestPhaseTimer:
    def test_records_phases_in_order(self):
        timer = PhaseTimer()
        with timer.phase("alpha"):
            pass
        with timer.phase("beta"):
            pass
        with timer.phase("alpha"):
            pass
        assert timer.order == ["alpha", "beta"]
        assert timer.counts["alpha"] == 2
        assert timer.counts["beta"] == 1

    def test_total_is_sum(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.002)
        with timer.phase("b"):
            time.sleep(0.002)
        assert timer.total() == pytest.approx(sum(timer.totals.values()))

    def test_merge(self):
        first, second = PhaseTimer(), PhaseTimer()
        with first.phase("a"):
            pass
        with second.phase("a"):
            pass
        with second.phase("b"):
            pass
        first.merge(second)
        assert first.counts["a"] == 2
        assert "b" in first.totals

    def test_as_dict_order(self):
        timer = PhaseTimer()
        with timer.phase("z"):
            pass
        with timer.phase("a"):
            pass
        assert list(timer.as_dict()) == ["z", "a"]

    def test_format_table_mentions_phases(self):
        timer = PhaseTimer()
        with timer.phase("partitioning"):
            pass
        text = timer.format_table()
        assert "partitioning" in text
        assert "TOTAL" in text

    def test_format_table_empty(self):
        assert "no phases" in PhaseTimer().format_table()
