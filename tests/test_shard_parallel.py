"""The shard-parallel execution correctness wall.

Shard parallelism promises that executing whole residency steps
concurrently — waves of partition-disjoint steps, each worker exclusively
owning its step's partitions — produces graphs **bit-identical** to the
one-step-at-a-time serial path: per-shard deltas are pre-reduced to each
source's top-K by the merge's own ``(-score, destination)`` order, and the
G(t+1) merge is a pure function of the scored candidate multiset.  These
tests drive hypothesis-generated churn through engines with the toggle on
and off across all three backends and compare fingerprint-for-fingerprint
plus final profile bytes; exercise the coordinator directly against a
first-principles scoring oracle; pin the per-worker memory-budget
accounting (hard ``MemoryError``, never a silent spill); and walk the
supervision ladder — dead worker respawn, hung shard timeout, and the
terminal degrade to serial — asserting parity survives every rung.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.parallel import (ShardCoordinator, ShardStepTask,
                                 fork_available)
from repro.graph.knn_graph import KNNGraph, topk_candidate_rows
from repro.similarity.workloads import ProfileChange, generate_dense_profiles
from repro.testing import FaultPlan

NUM_USERS = 120
DIM = 8
BACKENDS = ["serial", "thread", "process"]


def _profiles(seed: int = 7):
    return generate_dense_profiles(NUM_USERS, dim=DIM, num_communities=4,
                                   seed=seed)


def _config(**overrides):
    base = dict(k=5, num_partitions=4, heuristic="degree-low-high", seed=17)
    base.update(overrides)
    return EngineConfig(**base)


def _backend_overrides(backend: str) -> dict:
    overrides = {"backend": backend}
    if backend == "thread":
        overrides["num_threads"] = 3
    elif backend == "process":
        overrides["num_workers"] = 2
    return overrides


def _churn_feed(per_iteration, rng_seed: int, users_pool: int = NUM_USERS):
    rng = np.random.default_rng(rng_seed)

    def feed(iteration: int):
        count = per_iteration[iteration] if iteration < len(per_iteration) else 0
        if count == 0:
            return []
        users = rng.choice(users_pool, size=count, replace=False)
        return [ProfileChange(user=int(u), kind="set", vector=rng.random(DIM))
                for u in users]

    return feed


def _final_profile_bytes(engine: KNNEngine) -> bytes:
    return (engine.profile_store.base_dir / "profiles_dense.bin").read_bytes()


def _run_pair(churn_factory, iterations: int = 4, **overrides):
    """The same run twice — shard parallelism on and off — for comparison."""
    runs = {}
    for sharded in (True, False):
        config = _config(shard_parallel=sharded, **overrides)
        with KNNEngine(_profiles(), config) as engine:
            run = engine.run(num_iterations=iterations,
                             profile_change_feed=churn_factory())
            runs[sharded] = (run, _final_profile_bytes(engine))
    return runs


class TestShardParityWall:
    """Sharded fingerprints must equal one-step-at-a-time ones, always."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        backend=st.sampled_from(BACKENDS),
        churn_sizes=st.lists(st.integers(min_value=0, max_value=25),
                             min_size=4, max_size=4),
        churn_seed=st.integers(min_value=0, max_value=2**16),
        users_pool=st.sampled_from([NUM_USERS, 30]),
    )
    def test_sharded_bit_identical_to_serial_steps(self, backend, churn_sizes,
                                                   churn_seed, users_pool):
        if backend == "process" and not fork_available():
            backend = "thread"
        runs = _run_pair(lambda: _churn_feed(churn_sizes, churn_seed,
                                             users_pool),
                         **_backend_overrides(backend))
        (sharded_run, sharded_bytes) = runs[True]
        (step_run, step_bytes) = runs[False]
        assert ([r.graph.edge_fingerprint() for r in sharded_run.iterations]
                == [r.graph.edge_fingerprint() for r in step_run.iterations])
        # phase 5 applied the identical churn: final profiles byte-equal
        assert sharded_bytes == step_bytes
        for result in sharded_run.iterations:
            # the reported schedule describes what the waves actually did
            assert (result.load_unload_operations
                    == result.schedule.load_unload_operations)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parity_with_dirty_scheduling_off(self, backend):
        """The full (undirtied) schedule shards identically too."""
        if backend == "process" and not fork_available():
            pytest.skip("process backend needs fork")
        runs = _run_pair(lambda: _churn_feed([10, 5, 0, 8], 29),
                         dirty_scheduling=False,
                         **_backend_overrides(backend))
        assert ([r.graph.edge_fingerprint() for r in runs[True][0].iterations]
                == [r.graph.edge_fingerprint()
                    for r in runs[False][0].iterations])
        assert runs[True][1] == runs[False][1]

    def test_parity_without_incremental_phase4(self):
        """No score cache at all: every tuple crosses the worker boundary."""
        runs = _run_pair(lambda: _churn_feed([6, 6, 6, 6], 31),
                         incremental_phase4=False, dirty_scheduling=False)
        assert ([r.graph.edge_fingerprint() for r in runs[True][0].iterations]
                == [r.graph.edge_fingerprint()
                    for r in runs[False][0].iterations])
        assert runs[True][1] == runs[False][1]

    def test_parity_under_memory_budget(self):
        """A generous per-worker budget changes accounting, not results."""
        runs = _run_pair(lambda: _churn_feed([10, 0, 10, 0], 37),
                         memory_budget_bytes=50_000_000)
        assert ([r.graph.edge_fingerprint() for r in runs[True][0].iterations]
                == [r.graph.edge_fingerprint()
                    for r in runs[False][0].iterations])

    def test_budget_watermark_reported_and_bounded(self):
        config = _config(shard_parallel=True,
                         memory_budget_bytes=50_000_000)
        with KNNEngine(_profiles(), config) as engine:
            engine.run_iteration()
            coordinator = engine._iteration_runner.shard_coordinator
            assert coordinator is not None
            assert coordinator.worker_budget_bytes == 50_000_000
            assert 0 < coordinator.peak_worker_bytes <= 50_000_000


class TestCoordinatorOracle:
    """ShardCoordinator deltas against first-principles direct scoring."""

    def _tasks_and_oracle(self, store, k: int = 3):
        rng = np.random.default_rng(5)
        quarter = NUM_USERS // 4
        tasks = []
        expected = []
        whole = store.load_users(np.arange(NUM_USERS))
        # two partition-disjoint steps: (0,1) and (2,3)
        for pid in (0, 2):
            lo, hi = pid * quarter, (pid + 2) * quarter
            sources = rng.integers(lo, hi, size=40)
            dests = rng.integers(lo, hi, size=40)
            keep = sources != dests
            tuples = np.stack([sources[keep], dests[keep]], axis=1)
            tasks.append(ShardStepTask(
                key=(0, pid, pid + 1),
                parts=((pid, range(lo, lo + quarter)),
                       (pid + 1, range(lo + quarter, hi))),
                tuples=tuples, measure="cosine", generation=None, k=k))
            scores = whole.similarity_pairs(tuples, "cosine")
            expected.append((tuples, scores))
        return tasks, expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wave_deltas_match_direct_scoring(self, backend):
        if backend == "process" and not fork_available():
            pytest.skip("process backend needs fork")
        with KNNEngine(_profiles(), _config()) as engine:
            tasks, expected = self._tasks_and_oracle(engine.profile_store)
            with ShardCoordinator(engine.profile_store, backend=backend,
                                  num_workers=2) as coordinator:
                deltas = coordinator.execute_wave(tasks)
        assert len(deltas) == len(tasks)
        for delta, (tuples, scores) in zip(deltas, expected):
            np.testing.assert_array_equal(delta.scores, scores)
            np.testing.assert_array_equal(
                delta.topk_rows,
                topk_candidate_rows(tuples[:, 0], tuples[:, 1], scores, 3))

    def test_empty_wave_is_a_noop(self):
        with KNNEngine(_profiles(), _config()) as engine:
            with ShardCoordinator(engine.profile_store) as coordinator:
                assert coordinator.execute_wave([]) == []

    def test_budget_overflow_raises_memory_error(self):
        """One step larger than the per-worker budget must fail loudly."""
        with KNNEngine(_profiles(), _config()) as engine:
            store = engine.profile_store
            tasks, _ = self._tasks_and_oracle(store)
            per_user = store.estimated_bytes_per_user()
            with ShardCoordinator(store, worker_budget_bytes=per_user * 10,
                                  bytes_per_user=per_user) as coordinator:
                with pytest.raises(MemoryError):
                    coordinator.execute_wave(tasks[:1])

    def test_budget_is_per_worker_not_per_wave(self):
        """Workers drop their slices at the wave barrier: many steps fit
        a budget that holds only one step's partitions at a time."""
        with KNNEngine(_profiles(), _config()) as engine:
            store = engine.profile_store
            tasks, _ = self._tasks_and_oracle(store)
            per_user = store.estimated_bytes_per_user()
            one_step = (NUM_USERS // 2) * per_user
            with ShardCoordinator(store, worker_budget_bytes=one_step,
                                  bytes_per_user=per_user) as coordinator:
                deltas = coordinator.execute_wave(tasks[:1])
                deltas += coordinator.execute_wave(tasks[1:])
                assert coordinator.peak_worker_bytes == one_step
        assert len(deltas) == 2

    def test_rejects_unknown_backend_and_bad_knobs(self):
        with KNNEngine(_profiles(), _config()) as engine:
            store = engine.profile_store
            with pytest.raises(ValueError):
                ShardCoordinator(store, backend="gpu")
            with pytest.raises(ValueError):
                ShardCoordinator(store, shard_timeout=0)


class TestTopKReduction:
    """topk_candidate_rows against a brute-force oracle + merge equivalence."""

    def _oracle(self, sources, dests, scores, k):
        rows_by_source = {}
        for row, source in enumerate(sources):
            rows_by_source.setdefault(int(source), []).append(row)
        keep = []
        for source, rows in rows_by_source.items():
            ranked = sorted(rows,
                            key=lambda r: (-scores[r], dests[r]))
            keep.extend(ranked[:k])
        return np.sort(np.asarray(keep, dtype=np.int64))

    @settings(max_examples=30, deadline=None)
    @given(
        num_rows=st.integers(min_value=0, max_value=120),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
        tie_scores=st.booleans(),
    )
    def test_matches_brute_force(self, num_rows, k, seed, tie_scores):
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, 10, size=num_rows)
        dests = rng.integers(0, 50, size=num_rows)
        if tie_scores:
            scores = rng.integers(0, 3, size=num_rows).astype(np.float64)
        else:
            scores = rng.random(num_rows)
        rows = topk_candidate_rows(sources, dests, scores, k)
        np.testing.assert_array_equal(rows,
                                      self._oracle(sources, dests, scores, k))

    def test_negative_zero_ties_positive_zero(self):
        sources = np.zeros(3, dtype=np.int64)
        dests = np.array([2, 0, 1])
        scores = np.array([-0.0, 0.0, -0.0])
        # all three scores equal; ties broken by destination
        rows = topk_candidate_rows(sources, dests, scores, 2)
        np.testing.assert_array_equal(rows, [1, 2])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_merging_only_topk_rows_is_bit_identical(self, seed):
        """The load-bearing claim: dropping dominated rows cannot change
        the merged graph, because the merge itself ranks by the same
        (-score, destination) order per source.  Pairs are unique, per the
        documented precondition — phase 2's dedup hash table guarantees it
        for every tuple batch a shard worker ever sees."""
        rng = np.random.default_rng(seed)
        k = 4
        sources = rng.integers(0, 20, size=300)
        dests = rng.integers(0, 20, size=300)
        keep = sources != dests
        packed = np.unique(sources[keep] * 20 + dests[keep])
        sources, dests = packed // 20, packed % 20
        scores = np.round(rng.random(len(sources)), 2)  # force score ties
        full = KNNGraph(20, k)
        full.add_candidates_batch(sources, dests, scores)
        rows = topk_candidate_rows(sources, dests, scores, k)
        reduced = KNNGraph(20, k)
        reduced.add_candidates_batch(sources[rows], dests[rows], scores[rows])
        assert full.edge_fingerprint() == reduced.edge_fingerprint()


@pytest.mark.skipif(not fork_available(), reason="process backend needs fork")
class TestShardSupervision:
    """Dead/hung workers: respawn, retry, and the terminal serial degrade."""

    def _clean_fingerprints(self, **overrides):
        config = _config(shard_parallel=True, **overrides)
        with KNNEngine(_profiles(), config) as engine:
            results = [engine.run_iteration() for _ in range(3)]
            return [r.graph.edge_fingerprint() for r in results]

    def test_killed_worker_respawns_and_stays_bit_identical(self):
        clean = self._clean_fingerprints(backend="process", num_workers=2)
        plan = FaultPlan().kill_worker(call=1, shard=0)
        config = _config(shard_parallel=True, backend="process",
                         num_workers=2, fault_plan=plan)
        with KNNEngine(_profiles(), config) as engine:
            results = [engine.run_iteration() for _ in range(3)]
            coordinator = engine._iteration_runner.shard_coordinator
            assert coordinator.backend == "process"
            assert coordinator.respawns >= 1
        assert [r.graph.edge_fingerprint() for r in results] == clean

    def test_hung_shard_times_out_and_stays_bit_identical(self):
        clean = self._clean_fingerprints(backend="process", num_workers=2)
        plan = FaultPlan().hang_worker(call=1, shard=0, seconds=60.0)
        config = _config(shard_parallel=True, backend="process",
                         num_workers=2, shard_timeout_seconds=1.0,
                         fault_plan=plan)
        with KNNEngine(_profiles(), config) as engine:
            results = [engine.run_iteration() for _ in range(3)]
            assert engine._iteration_runner.shard_coordinator.respawns >= 1
        assert [r.graph.edge_fingerprint() for r in results] == clean

    def test_persistent_failure_degrades_to_serial_bit_identical(self):
        clean = self._clean_fingerprints(backend="process", num_workers=2)
        plan = FaultPlan()
        for call in range(1, 9):  # outlast max_retries on the first wave
            plan.kill_worker(call=call, shard=0)
        config = _config(shard_parallel=True, backend="process",
                         num_workers=2, fault_plan=plan)
        with KNNEngine(_profiles(), config) as engine:
            results = [engine.run_iteration() for _ in range(3)]
            coordinator = engine._iteration_runner.shard_coordinator
            # the coordinator gave up on processes and rebuilt serial
            assert coordinator.backend == "serial"
        assert [r.graph.edge_fingerprint() for r in results] == clean
