"""Tests for repro.storage.partition_store."""

import numpy as np
import pytest

from repro.partition.model import build_partitions
from repro.partition.partitioners import ContiguousPartitioner
from repro.storage.partition_store import PartitionStore


@pytest.fixture
def partitions(medium_graph):
    assignment = ContiguousPartitioner().assign(medium_graph, 4)
    return build_partitions(medium_graph, assignment, 4)


class TestWriteRead:
    def test_roundtrip(self, partitions, tmp_path):
        store = PartitionStore(tmp_path, disk_model="instant")
        store.write_partitions(partitions)
        for original in partitions:
            loaded = store.read_partition(original.pid)
            assert np.array_equal(loaded.vertices, original.vertices)
            assert np.array_equal(loaded.in_edges, original.in_edges)
            assert np.array_equal(loaded.out_edges, original.out_edges)
            assert loaded.num_unique_in_sources == original.num_unique_in_sources
            assert loaded.num_unique_out_destinations == original.num_unique_out_destinations

    def test_stored_ids(self, partitions, tmp_path):
        store = PartitionStore(tmp_path)
        store.write_partitions(partitions)
        assert store.stored_partition_ids() == [0, 1, 2, 3]

    def test_missing_partition(self, tmp_path):
        store = PartitionStore(tmp_path)
        with pytest.raises(FileNotFoundError):
            store.read_partition(7)

    def test_bad_magic(self, tmp_path):
        store = PartitionStore(tmp_path)
        store.partition_path(0).write_bytes(b"garbage!" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            store.read_partition(0)

    def test_delete_and_clear(self, partitions, tmp_path):
        store = PartitionStore(tmp_path)
        store.write_partitions(partitions)
        assert store.delete_partition(0) is True
        assert store.delete_partition(0) is False
        store.clear()
        assert store.stored_partition_ids() == []

    def test_partition_size(self, partitions, tmp_path):
        store = PartitionStore(tmp_path)
        assert store.partition_size_bytes(0) == 0
        store.write_partition(partitions[0])
        assert store.partition_size_bytes(0) > 0


class TestIOAccounting:
    def test_write_and_read_recorded(self, partitions, tmp_path):
        store = PartitionStore(tmp_path, disk_model="hdd")
        store.write_partition(partitions[0])
        assert store.io_stats.write_ops == 1
        assert store.io_stats.bytes_written > 0
        store.read_partition(0)
        assert store.io_stats.read_ops == 1
        assert store.io_stats.bytes_read > 0
        assert store.io_stats.simulated_io_seconds > 0

    def test_instant_disk_has_zero_simulated_time(self, partitions, tmp_path):
        store = PartitionStore(tmp_path, disk_model="instant")
        store.write_partition(partitions[0])
        store.read_partition(0)
        assert store.io_stats.simulated_io_seconds == 0.0
