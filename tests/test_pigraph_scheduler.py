"""Tests for repro.pigraph.scheduler."""

import pytest

from repro.graph.datasets import small_dataset
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import (
    compare_heuristics,
    count_load_unload_operations,
    plan_schedule,
    simulate_schedule,
)
from repro.pigraph.traversal import PAPER_HEURISTICS, get_heuristic


@pytest.fixture
def dataset_pi():
    return PIGraph.from_digraph(small_dataset(200, 1200, seed=31))


class TestSimulateSchedule:
    def test_loads_equal_unloads_when_flushed(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "sequential")
        result = simulate_schedule(steps, "sequential", dataset_pi.num_partitions)
        assert result.loads == result.unloads
        assert result.load_unload_operations == result.loads + result.unloads

    def test_no_final_flush(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "sequential")
        result = simulate_schedule(steps, unload_at_end=False)
        assert result.unloads < result.loads
        assert len(result.final_resident) <= 2

    def test_tuples_scheduled_matches_total_weight(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "degree-low-high")
        result = simulate_schedule(steps)
        assert result.tuples_scheduled == dataset_pi.total_weight

    def test_cache_hits_counted(self):
        pi = PIGraph(3)
        pi.add_edge(0, 1)
        pi.add_edge(1, 0)
        steps = plan_schedule(pi, "sequential")
        result = simulate_schedule(steps)
        # both directions between 0 and 1 are grouped in one step, so only 2 loads
        assert result.loads == 2

    def test_step_larger_than_cache_rejected(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "sequential")
        with pytest.raises(ValueError):
            simulate_schedule(steps, cache_slots=1)

    def test_self_edge_needs_single_partition(self):
        pi = PIGraph(2)
        pi.add_edge(0, 0, 3)
        steps = plan_schedule(pi, "sequential")
        result = simulate_schedule(steps, cache_slots=2)
        assert result.loads == 1
        assert result.unloads == 1

    def test_as_dict_keys(self, dataset_pi):
        result = count_load_unload_operations(dataset_pi, "sequential")
        data = result.as_dict()
        assert data["load_unload_operations"] == result.load_unload_operations
        assert data["heuristic"] == "sequential"


class TestHeuristicComparison:
    def test_degree_heuristics_beat_sequential(self, dataset_pi):
        results = compare_heuristics(dataset_pi, list(PAPER_HEURISTICS))
        seq = results["sequential"].load_unload_operations
        assert results["degree-high-low"].load_unload_operations < seq
        assert results["degree-low-high"].load_unload_operations < seq

    def test_greedy_resident_extension_is_best(self, dataset_pi):
        results = compare_heuristics(
            dataset_pi, ["sequential", "degree-low-high", "greedy-resident"])
        assert (results["greedy-resident"].load_unload_operations
                <= results["degree-low-high"].load_unload_operations)

    def test_all_heuristics_schedule_all_tuples(self, dataset_pi):
        results = compare_heuristics(dataset_pi, list(PAPER_HEURISTICS))
        for result in results.values():
            assert result.tuples_scheduled == dataset_pi.total_weight

    def test_more_cache_slots_never_hurt(self, dataset_pi):
        two = count_load_unload_operations(dataset_pi, "sequential", cache_slots=2)
        four = count_load_unload_operations(dataset_pi, "sequential", cache_slots=4)
        assert four.load_unload_operations <= two.load_unload_operations

    def test_accepts_heuristic_instance(self, dataset_pi):
        result = count_load_unload_operations(dataset_pi, get_heuristic("sequential"))
        assert result.heuristic == "sequential"
