"""Tests for repro.pigraph.scheduler."""

import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.datasets import small_dataset
from repro.partition.model import Partition
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import (
    compare_heuristics,
    count_load_unload_operations,
    plan_dirty_schedule,
    plan_schedule,
    plan_shard_schedule,
    simulate_schedule,
)
from repro.pigraph.traversal import PAPER_HEURISTICS, get_heuristic
from repro.storage.memory_manager import PartitionCache
from repro.storage.partition_store import PartitionStore


@pytest.fixture
def dataset_pi():
    return PIGraph.from_digraph(small_dataset(200, 1200, seed=31))


class TestSimulateSchedule:
    def test_loads_equal_unloads_when_flushed(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "sequential")
        result = simulate_schedule(steps, "sequential", dataset_pi.num_partitions)
        assert result.loads == result.unloads
        assert result.load_unload_operations == result.loads + result.unloads

    def test_no_final_flush(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "sequential")
        result = simulate_schedule(steps, unload_at_end=False)
        assert result.unloads < result.loads
        assert len(result.final_resident) <= 2

    def test_tuples_scheduled_matches_total_weight(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "degree-low-high")
        result = simulate_schedule(steps)
        assert result.tuples_scheduled == dataset_pi.total_weight

    def test_cache_hits_counted(self):
        pi = PIGraph(3)
        pi.add_edge(0, 1)
        pi.add_edge(1, 0)
        steps = plan_schedule(pi, "sequential")
        result = simulate_schedule(steps)
        # both directions between 0 and 1 are grouped in one step, so only 2 loads
        assert result.loads == 2

    def test_step_larger_than_cache_rejected(self, dataset_pi):
        steps = plan_schedule(dataset_pi, "sequential")
        with pytest.raises(ValueError):
            simulate_schedule(steps, cache_slots=1)

    def test_self_edge_needs_single_partition(self):
        pi = PIGraph(2)
        pi.add_edge(0, 0, 3)
        steps = plan_schedule(pi, "sequential")
        result = simulate_schedule(steps, cache_slots=2)
        assert result.loads == 1
        assert result.unloads == 1

    def test_as_dict_keys(self, dataset_pi):
        result = count_load_unload_operations(dataset_pi, "sequential")
        data = result.as_dict()
        assert data["load_unload_operations"] == result.load_unload_operations
        assert data["heuristic"] == "sequential"


class TestHeuristicComparison:
    def test_degree_heuristics_beat_sequential(self, dataset_pi):
        results = compare_heuristics(dataset_pi, list(PAPER_HEURISTICS))
        seq = results["sequential"].load_unload_operations
        assert results["degree-high-low"].load_unload_operations < seq
        assert results["degree-low-high"].load_unload_operations < seq

    def test_greedy_resident_extension_is_best(self, dataset_pi):
        results = compare_heuristics(
            dataset_pi, ["sequential", "degree-low-high", "greedy-resident"])
        assert (results["greedy-resident"].load_unload_operations
                <= results["degree-low-high"].load_unload_operations)

    def test_all_heuristics_schedule_all_tuples(self, dataset_pi):
        results = compare_heuristics(dataset_pi, list(PAPER_HEURISTICS))
        for result in results.values():
            assert result.tuples_scheduled == dataset_pi.total_weight

    def test_more_cache_slots_never_hurt(self, dataset_pi):
        two = count_load_unload_operations(dataset_pi, "sequential", cache_slots=2)
        four = count_load_unload_operations(dataset_pi, "sequential", cache_slots=4)
        assert four.load_unload_operations <= two.load_unload_operations

    def test_accepts_heuristic_instance(self, dataset_pi):
        result = count_load_unload_operations(dataset_pi, get_heuristic("sequential"))
        assert result.heuristic == "sequential"


class TestPlanDirtySchedule:
    """``plan_dirty_schedule`` is a pure function of its four inputs.

    The dirty planner feeds phase 4's step skipping, so any hidden state —
    wall clock, iteration order of a set, ambient randomness — would make
    backends or resumed runs disagree about *which* steps skip.  The
    property suite pins: executed + cached is always a permutation of the
    input, classification follows the (dirty set, pair generations,
    cache generation) contract exactly, relative order is preserved within
    each class with dirty steps first, and replanning (with the dirty set
    presented in any order) reproduces the plan verbatim.
    """

    @staticmethod
    def _steps(pairs):
        # plan_dirty_schedule only unpacks (first, second, _); the edge
        # payload rides along untouched, so a sentinel per step lets the
        # permutation check track identity
        return [(first, second, (f"edges-{index}",))
                for index, (first, second) in enumerate(pairs)]

    @settings(max_examples=120, deadline=None)
    @given(
        num_partitions=st.integers(min_value=1, max_value=8),
        pair_seed=st.integers(min_value=0, max_value=2**16),
        num_steps=st.integers(min_value=0, max_value=24),
        dirty_fraction=st.floats(min_value=0.0, max_value=1.0),
        scored_fraction=st.floats(min_value=0.0, max_value=1.0),
        cache_generation=st.integers(min_value=0, max_value=5),
        stale_generation=st.integers(min_value=0, max_value=5),
    )
    def test_plan_is_a_pure_classification(self, num_partitions, pair_seed,
                                           num_steps, dirty_fraction,
                                           scored_fraction, cache_generation,
                                           stale_generation):
        rng = np.random.default_rng(pair_seed)
        pairs = [tuple(rng.integers(0, num_partitions, size=2))
                 for _ in range(num_steps)]
        steps = self._steps(pairs)
        dirty = [p for p in range(num_partitions)
                 if rng.random() < dirty_fraction]
        pair_generations = {}
        for first, second in pairs:
            key = (first, second) if first <= second else (second, first)
            pair_generations[key] = (cache_generation
                                     if rng.random() < scored_fraction
                                     else stale_generation)

        plan = plan_dirty_schedule(steps, dirty, pair_generations,
                                   cache_generation)
        assert not plan.assume_all_dirty
        # permutation: every input step appears exactly once, by identity
        assert sorted(map(id, plan.executed + plan.cached)) == sorted(
            map(id, steps))
        dirty_set = set(dirty)
        for step in plan.cached:
            first, second, _ = step
            key = (first, second) if first <= second else (second, first)
            assert first not in dirty_set and second not in dirty_set
            assert pair_generations[key] == cache_generation
        # dirty-first: once the executed list goes clean it stays clean
        flags = [first in dirty_set or second in dirty_set
                 for first, second, _ in plan.executed]
        assert flags == sorted(flags, reverse=True)
        # relative order within each class follows the input order
        order = {id(step): index for index, step in enumerate(steps)}
        dirty_part = [s for s in plan.executed
                      if s[0] in dirty_set or s[1] in dirty_set]
        clean_part = [s for s in plan.executed
                      if s[0] not in dirty_set and s[1] not in dirty_set]
        for sequence in (dirty_part, clean_part, plan.cached):
            positions = [order[id(step)] for step in sequence]
            assert positions == sorted(positions)
        # deterministic replan, regardless of how the dirty set is presented
        replan = plan_dirty_schedule(steps, reversed(dirty), pair_generations,
                                     cache_generation)
        assert replan.executed == plan.executed
        assert replan.cached == plan.cached
        assert replan.dirty_partitions == plan.dirty_partitions
        assert plan.dirty_partitions == tuple(sorted(dirty_set))
        assert plan.num_steps == len(steps)

    @settings(max_examples=40, deadline=None)
    @given(pair_seed=st.integers(min_value=0, max_value=2**16),
           missing_generation=st.sampled_from(["dirty", "cache"]))
    def test_unknown_inputs_assume_all_dirty_in_input_order(self, pair_seed,
                                                            missing_generation):
        rng = np.random.default_rng(pair_seed)
        steps = self._steps([tuple(rng.integers(0, 4, size=2))
                             for _ in range(10)])
        dirty = None if missing_generation == "dirty" else [0, 1]
        generation = None if missing_generation == "cache" else 3
        plan = plan_dirty_schedule(steps, dirty, {}, generation)
        assert plan.assume_all_dirty
        assert plan.executed == steps          # original order, untouched
        assert plan.cached == []
        assert plan.dirty_partitions is None

    def test_unscored_clean_pairs_execute_after_dirty(self):
        steps = self._steps([(0, 1), (2, 3), (2, 2), (0, 3)])
        plan = plan_dirty_schedule(
            steps, [0], {(2, 3): 7, (2, 2): 5}, cache_generation=7)
        assert plan.executed == [steps[0], steps[3], steps[2]]
        assert plan.cached == [steps[1]]


def _sentinel_steps(pairs):
    # empty edge payloads keep simulate_schedule's weight sum happy; each
    # step is still a distinct tuple object, so the permutation checks can
    # track identity through id()
    return [(first, second, ()) for first, second in pairs]


class TestSimulateVersusPartitionCache:
    """``simulate_schedule`` against the executor it claims to predict.

    The module docstring promises "the simulated and executed counts
    agree"; the executor is :class:`PartitionCache` driven through
    ``acquire_pair`` over the same step sequence.  These tests make that a
    first-principles oracle — every divergence is a bug in the simulator —
    with the exact-``cache_slots``-boundary regression pinned explicitly:
    the pre-fix simulator let a step's load evict the step's *own* resident
    partner (which ``acquire_pair`` pre-touches), inventing one spurious
    load+unload per occurrence.
    """

    @staticmethod
    def _drive_real_cache(pairs, cache_slots, unload_at_end):
        """Load/unload counts of a real PartitionCache over ``pairs``."""
        partitions = sorted({p for pair in pairs for p in pair})
        with tempfile.TemporaryDirectory() as tmp:
            store = PartitionStore(tmp, disk_model="instant")
            empty = np.empty((0, 2), dtype=np.int64)
            store.write_partitions([
                Partition(pid=pid, vertices=np.asarray([pid]),
                          in_edges=empty, out_edges=empty)
                for pid in partitions])
            cache = PartitionCache(store, max_resident=cache_slots)
            for first, second in pairs:
                cache.acquire_pair(first, second)
            if unload_at_end:
                cache.flush()
            return cache.io_stats.partition_loads, cache.io_stats.partition_unloads

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        num_partitions=st.integers(min_value=1, max_value=6),
        cache_slots=st.integers(min_value=2, max_value=4),
        num_steps=st.integers(min_value=0, max_value=20),
        pair_seed=st.integers(min_value=0, max_value=2**16),
        unload_at_end=st.booleans(),
    )
    def test_simulated_counts_match_executed_counts(self, num_partitions,
                                                    cache_slots, num_steps,
                                                    pair_seed, unload_at_end):
        rng = np.random.default_rng(pair_seed)
        pairs = [tuple(int(p) for p in rng.integers(0, num_partitions, size=2))
                 for _ in range(num_steps)]
        result = simulate_schedule(_sentinel_steps(pairs),
                                   cache_slots=cache_slots,
                                   unload_at_end=unload_at_end)
        loads, unloads = self._drive_real_cache(pairs, cache_slots,
                                                unload_at_end)
        assert result.loads == loads
        assert result.unloads == unloads

    def test_partner_eviction_regression_pinned(self):
        """(0,1),(0,2),(3,0) at exactly two slots: after (0,2) leaves
        [0, 2] resident with 0 at the LRU position, step (3, 0)'s load of
        3 must evict 2 — not the step's own partner 0."""
        steps = _sentinel_steps([(0, 1), (0, 2), (3, 0)])
        result = simulate_schedule(steps, cache_slots=2, unload_at_end=False)
        assert result.loads == 4       # 0, 1, 2, 3 — each loaded once
        assert result.unloads == 2     # 1 then 2 evicted; never partner 0
        assert set(result.final_resident) == {0, 3}
        loads, unloads = self._drive_real_cache([(0, 1), (0, 2), (3, 0)],
                                                cache_slots=2,
                                                unload_at_end=False)
        assert (loads, unloads) == (4, 2)

    def test_boundary_final_flush_accounting(self):
        """With the final flush every load is eventually unloaded."""
        steps = _sentinel_steps([(0, 1), (0, 2), (3, 0)])
        result = simulate_schedule(steps, cache_slots=2, unload_at_end=True)
        assert result.loads == result.unloads == 4
        # snapshot before the flush, LRU-first (0 was touched last)
        assert result.final_resident == (3, 0)

    def test_repeated_pair_is_all_hits_at_boundary(self):
        steps = _sentinel_steps([(0, 1)] * 5)
        result = simulate_schedule(steps, cache_slots=2, unload_at_end=False)
        assert result.loads == 2
        assert result.unloads == 0
        assert result.cache_hits == 4


class TestPlanShardSchedule:
    """``plan_shard_schedule`` is a pure function with four load-bearing
    properties: flattened waves are a permutation of the input, no two
    steps of one wave share a partition, each partition's steps keep their
    input order across waves, and replanning reproduces the coloring
    verbatim — the properties the shard coordinator's exclusive-ownership
    story and the serial-parity wall both lean on.
    """

    @settings(max_examples=120, deadline=None)
    @given(
        num_partitions=st.integers(min_value=1, max_value=8),
        num_steps=st.integers(min_value=0, max_value=30),
        pair_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_coloring_properties(self, num_partitions, num_steps, pair_seed):
        rng = np.random.default_rng(pair_seed)
        pairs = [tuple(int(p) for p in rng.integers(0, num_partitions, size=2))
                 for _ in range(num_steps)]
        steps = _sentinel_steps(pairs)
        schedule = plan_shard_schedule(steps)

        # flattened waves are a permutation of the input, by identity
        flattened = [step for wave in schedule.waves for step in wave]
        assert sorted(map(id, flattened)) == sorted(map(id, steps))
        assert schedule.num_steps == len(steps)
        assert schedule.num_waves == len(schedule.waves)
        assert all(wave for wave in schedule.waves)  # no empty waves

        # wave-disjointness: no partition appears in two steps of one wave
        for wave in schedule.waves:
            owned = [p for first, second, _ in wave
                     for p in ({first} | {second})]
            assert len(owned) == len(set(owned))

        # per-partition step order is the input order (monotone wave index)
        position = {id(step): index for index, step in enumerate(steps)}
        for partition in range(num_partitions):
            mine = [step for step in flattened
                    if partition in (step[0], step[1])]
            assert ([position[id(step)] for step in mine]
                    == sorted(position[id(step)] for step in mine))

        # wave_of mirrors the wave structure
        for index, step in enumerate(steps):
            assert step in schedule.waves[schedule.wave_of[index]]

        # greedy tightness: every step past wave 0 is blocked by a step
        # sharing one of its partitions in the immediately preceding wave
        for wave_index in range(1, schedule.num_waves):
            previous = {p for first, second, _ in schedule.waves[wave_index - 1]
                        for p in (first, second)}
            for first, second, _ in schedule.waves[wave_index]:
                assert first in previous or second in previous

        # derived accounting is self-consistent
        assert schedule.max_wave_width == max(
            (len(wave) for wave in schedule.waves), default=0)
        residencies = sum(len(schedule.wave_partitions(i))
                          for i in range(schedule.num_waves))
        assert schedule.total_partition_residencies == residencies
        assert residencies <= 2 * len(steps)

    @settings(max_examples=40, deadline=None)
    @given(
        num_steps=st.integers(min_value=0, max_value=20),
        pair_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_replanning_is_deterministic(self, num_steps, pair_seed):
        rng = np.random.default_rng(pair_seed)
        pairs = [tuple(int(p) for p in rng.integers(0, 6, size=2))
                 for _ in range(num_steps)]
        steps = _sentinel_steps(pairs)
        first = plan_shard_schedule(steps)
        second = plan_shard_schedule(steps)
        assert first.wave_of == second.wave_of
        assert first.waves == second.waves

    def test_degenerate_single_partition_serialises(self):
        """Every step (p, p): no two can share a wave — one step per wave,
        in input order."""
        steps = _sentinel_steps([(0, 0)] * 5)
        schedule = plan_shard_schedule(steps)
        assert schedule.num_waves == 5
        assert schedule.waves == [[step] for step in steps]
        assert schedule.wave_of == (0, 1, 2, 3, 4)
        assert schedule.max_wave_width == 1
        assert schedule.total_partition_residencies == 5

    def test_empty_input_yields_zero_waves(self):
        schedule = plan_shard_schedule([])
        assert schedule.num_waves == 0
        assert schedule.num_steps == 0
        assert schedule.max_wave_width == 0
        assert schedule.total_partition_residencies == 0

    def test_disjoint_pairs_share_the_first_wave(self):
        steps = _sentinel_steps([(0, 1), (2, 3), (0, 2), (1, 3)])
        schedule = plan_shard_schedule(steps)
        assert schedule.wave_of == (0, 0, 1, 1)
        assert schedule.wave_partitions(0) == [0, 1, 2, 3]
