"""Tests for repro.baselines.brute_force."""

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.similarity.profiles import DenseProfileStore, SparseProfileStore


class TestBruteForceDense:
    def test_exact_against_naive(self, dense_profiles):
        k = 5
        graph = brute_force_knn(dense_profiles, k, measure="cosine")
        # verify a handful of users against a naive recomputation
        matrix = dense_profiles.matrix
        for user in (0, 17, 63, 119):
            scores = [
                (dense_profiles.similarity(user, other, "cosine"), other)
                for other in range(dense_profiles.num_users) if other != user
            ]
            expected = {other for _, other in sorted(scores, reverse=True)[:k]}
            got = set(graph.neighbors(user))
            # allow ties at the boundary: every selected neighbour must have a
            # score >= the k-th best score
            kth = sorted((s for s, _ in scores), reverse=True)[k - 1]
            assert all(dense_profiles.similarity(user, v, "cosine") >= kth - 1e-12 for v in got)
            assert len(got) == k
            assert len(expected & got) >= k - 1

    def test_blocked_path_matches_fallback(self, dense_profiles):
        fast = brute_force_knn(dense_profiles, 4, measure="cosine", block_size=16)
        slow = brute_force_knn(dense_profiles, 4, measure="euclidean")
        assert fast.num_vertices == slow.num_vertices
        assert all(len(fast.neighbors(v)) == 4 for v in range(fast.num_vertices))

    def test_every_vertex_has_k_neighbors(self, dense_profiles):
        graph = brute_force_knn(dense_profiles, 7)
        assert all(len(graph.neighbors(v)) == 7 for v in range(graph.num_vertices))

    def test_no_self_neighbor(self, dense_profiles):
        graph = brute_force_knn(dense_profiles, 3)
        assert all(v not in graph.neighbors(v) for v in range(graph.num_vertices))


class TestBruteForceSparse:
    def test_jaccard_ground_truth(self):
        profiles = SparseProfileStore([
            {1, 2, 3}, {1, 2, 3, 4}, {7, 8}, {1, 2}, {8, 9},
        ])
        graph = brute_force_knn(profiles, 2, measure="jaccard")
        assert 1 in graph.neighbors(0)
        assert 3 in graph.neighbors(0)
        assert 4 in graph.neighbors(2)

    def test_default_measure_used(self, sparse_profiles):
        graph = brute_force_knn(sparse_profiles, 3)
        assert graph.num_edges == sparse_profiles.num_users * 3


class TestEdgeCases:
    def test_empty_store(self):
        graph = brute_force_knn(DenseProfileStore.empty(0, 4), 3)
        assert graph.num_vertices == 0

    def test_k_larger_than_population(self):
        profiles = DenseProfileStore(np.eye(3))
        graph = brute_force_knn(profiles, 5, measure="cosine")
        assert all(len(graph.neighbors(v)) == 2 for v in range(3))

    def test_invalid_k(self, dense_profiles):
        with pytest.raises(ValueError):
            brute_force_knn(dense_profiles, 0)
