"""Ext-A (future work) — execution time and work vs the number of users.

The paper's future work plans to "evaluate our approach using different
graph sizes ... by measuring execution times".  This benchmark runs one
full out-of-core iteration for increasing user counts and records wall-clock
time, similarity evaluations and I/O volume; the expected shape is roughly
linear growth in the candidate-tuple count for a fixed K.

Run with:  pytest benchmarks/bench_ext_graph_size.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.similarity.workloads import generate_dense_profiles

SIZES = (500, 1000, 2000, 4000)
_RESULTS = {}


def _run_one_iteration(num_users: int):
    profiles = generate_dense_profiles(num_users, dim=16, num_communities=8, seed=19)
    config = EngineConfig(k=10, num_partitions=8, heuristic="degree-low-high", seed=19)
    with KNNEngine(profiles, config) as engine:
        return engine.run_iteration()


@pytest.mark.parametrize("num_users", SIZES)
def test_iteration_scales_with_graph_size(benchmark, pedantic_kwargs, num_users):
    result = benchmark.pedantic(_run_one_iteration, args=(num_users,), **pedantic_kwargs)
    _RESULTS[num_users] = result
    benchmark.extra_info["num_users"] = num_users
    benchmark.extra_info["similarity_evaluations"] = result.similarity_evaluations
    benchmark.extra_info["candidate_tuples"] = result.num_candidate_tuples
    benchmark.extra_info["bytes_read"] = result.io_stats.bytes_read
    assert result.similarity_evaluations > 0

    # once at least two sizes have run, check that work grows with the graph
    measured_sizes = sorted(_RESULTS)
    if len(measured_sizes) >= 2:
        evaluations = [_RESULTS[n].similarity_evaluations for n in measured_sizes]
        assert evaluations == sorted(evaluations)
        bytes_read = [_RESULTS[n].io_stats.bytes_read for n in measured_sizes]
        assert bytes_read == sorted(bytes_read)
