"""Ablation — phase-1 partitioning strategies.

DESIGN.md calls out the partitioning objective ``min Σ (N_in + N_out)`` as a
design choice worth ablating: how much does a locality-aware partitioner buy
over the paper's plain contiguous ``n/m`` split (and over a deliberately bad
hash split) in terms of the paper's own objective and of the edge cut?

The KNN result itself must be identical under every partitioner (asserted),
so this ablation isolates the I/O-locality effect of phase 1.

Run with:  pytest benchmarks/bench_ablation_partitioners.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.graph.datasets import small_dataset
from repro.partition.metrics import edge_cut, locality_cost
from repro.partition.model import build_partitions
from repro.partition.partitioners import get_partitioner

PARTITIONERS = ("contiguous", "hash", "ldg", "greedy-locality")
NUM_PARTITIONS = 8
_COSTS = {}


@pytest.fixture(scope="module")
def workload_graph():
    return small_dataset(2000, 12000, seed=71)


@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_partitioner_locality_cost(benchmark, pedantic_kwargs, workload_graph, partitioner):
    def run():
        assignment = get_partitioner(partitioner).assign(workload_graph, NUM_PARTITIONS)
        partitions = build_partitions(workload_graph, assignment, NUM_PARTITIONS)
        return {
            "locality_cost": locality_cost(partitions),
            "edge_cut": edge_cut(workload_graph, assignment),
        }

    metrics = benchmark.pedantic(run, **pedantic_kwargs)
    _COSTS[partitioner] = metrics
    benchmark.extra_info.update({"partitioner": partitioner, **metrics})
    assert metrics["locality_cost"] > 0

    # once the locality-aware partitioners have run, they must not be worse
    # than the locality-oblivious hash baseline on the paper's objective
    if {"hash", "greedy-locality"} <= set(_COSTS):
        assert (_COSTS["greedy-locality"]["locality_cost"]
                <= _COSTS["hash"]["locality_cost"])
    if {"hash", "ldg"} <= set(_COSTS):
        assert _COSTS["ldg"]["edge_cut"] <= _COSTS["hash"]["edge_cut"]
