"""Ext-D (future work) — multi-threaded similarity scoring.

The paper's future work plans to evaluate "multiple threads".  Phase 4's
tuple scoring is the compute-bound part of an iteration; this benchmark
measures the scoring throughput of a large tuple batch for 1, 2 and 4
worker threads (the dense cosine kernel releases the GIL inside NumPy).
Exact speedups depend on the host; the benchmark asserts correctness
(identical scores) and records throughput for EXPERIMENTS.md.

Run with:  pytest benchmarks/bench_ext_threads.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.parallel import score_tuples
from repro.similarity.workloads import generate_dense_profiles
from repro.storage.profile_store import OnDiskProfileStore

NUM_USERS = 3000
NUM_PAIRS = 200_000


@pytest.fixture(scope="module")
def scoring_workload(tmp_path_factory):
    profiles = generate_dense_profiles(NUM_USERS, dim=32, num_communities=10, seed=31)
    store = OnDiskProfileStore.create(tmp_path_factory.mktemp("profiles"), profiles,
                                      disk_model="instant")
    profile_slice = store.load_users(range(NUM_USERS))
    rng = np.random.default_rng(31)
    pairs = rng.integers(0, NUM_USERS, size=(NUM_PAIRS, 2)).astype(np.int64)
    reference = profile_slice.similarity_pairs(pairs, "cosine")
    return profile_slice, pairs, reference


@pytest.mark.parametrize("num_threads", (1, 2, 4))
def test_scoring_throughput_by_thread_count(benchmark, scoring_workload, num_threads):
    profile_slice, pairs, reference = scoring_workload

    scores = benchmark(score_tuples, profile_slice, pairs, "cosine",
                       num_threads=num_threads, chunk_size=8192)

    benchmark.extra_info["num_threads"] = num_threads
    benchmark.extra_info["pairs_scored"] = NUM_PAIRS
    assert np.allclose(scores, reference)


def test_threaded_engine_iteration_matches_sequential(benchmark, pedantic_kwargs):
    """A full iteration with 4 scoring threads produces the identical KNN graph."""
    profiles = generate_dense_profiles(800, dim=16, num_communities=6, seed=31)

    def run(num_threads):
        config = EngineConfig(k=8, num_partitions=6, num_threads=num_threads, seed=31)
        with KNNEngine(profiles, config) as engine:
            return engine.run_iteration().graph

    threaded = benchmark.pedantic(run, args=(4,), **pedantic_kwargs)
    sequential = run(1)
    assert threaded.edge_difference(sequential) == 0
