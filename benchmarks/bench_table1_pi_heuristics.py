"""Table 1 — partition load/unload operations of the PI-graph traversal heuristics.

The paper's only quantitative table evaluates three traversal heuristics
(Sequential, degree-based High-Low, degree-based Low-High) on six SNAP
graphs used *as* PI graphs, reporting the number of partition load/unload
operations each heuristic incurs with two memory slots.

This benchmark regenerates the table on the synthetic stand-in datasets
(matched node/edge counts, see ``repro.graph.datasets``) and checks the
paper's qualitative claim: the degree-based heuristics need roughly 5–15 %
fewer operations than the sequential baseline.  Absolute values differ from
the paper because the graphs are synthetic and the exact operation-counting
convention of the original implementation is not published; EXPERIMENTS.md
records both sets of numbers side by side.

Run with:  pytest benchmarks/bench_table1_pi_heuristics.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import PAPER_TABLE1, run_table1_row
from repro.graph.datasets import DATASETS, TABLE1_ORDER
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import count_load_unload_operations
from repro.pigraph.traversal import PAPER_HEURISTICS

#: dataset name -> generated PI graph, shared across heuristic benchmarks.
_PI_CACHE = {}


def _pi_graph_for(dataset: str) -> PIGraph:
    if dataset not in _PI_CACHE:
        graph = DATASETS[dataset].generate()
        _PI_CACHE[dataset] = PIGraph.from_digraph(graph)
    return _PI_CACHE[dataset]


@pytest.mark.parametrize("dataset", TABLE1_ORDER)
@pytest.mark.parametrize("heuristic", PAPER_HEURISTICS)
def test_table1_cell(benchmark, pedantic_kwargs, dataset, heuristic):
    """One cell of Table 1: (dataset, heuristic) -> load/unload operations."""
    pi_graph = _pi_graph_for(dataset)

    result = benchmark.pedantic(
        count_load_unload_operations, args=(pi_graph, heuristic), **pedantic_kwargs)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["heuristic"] = heuristic
    benchmark.extra_info["load_unload_operations"] = result.load_unload_operations
    benchmark.extra_info["paper_value"] = dict(
        zip(PAPER_HEURISTICS, PAPER_TABLE1[dataset]))[heuristic]
    assert result.tuples_scheduled == pi_graph.total_weight
    assert result.load_unload_operations > 0


@pytest.mark.parametrize("dataset", TABLE1_ORDER)
def test_table1_row_shape(benchmark, pedantic_kwargs, dataset):
    """Full row: degree-based heuristics must beat the sequential baseline."""
    spec = DATASETS[dataset]

    row = benchmark.pedantic(run_table1_row, args=(spec,), **pedantic_kwargs)

    sequential = row.operations["sequential"]
    high_low = row.operations["degree-high-low"]
    low_high = row.operations["degree-low-high"]
    benchmark.extra_info["reproduced"] = row.operations
    benchmark.extra_info["paper"] = row.paper_operations
    # the paper reports 5-15% fewer operations for the degree-based heuristics;
    # require a strict improvement and a sane upper bound on this workload
    assert high_low < sequential
    assert low_high < sequential
    assert (sequential - min(high_low, low_high)) / sequential < 0.5
