"""Ext-B (future work) — effect of the memory constraint (number of partitions).

The paper's future work plans to evaluate "different ... amounts of memory".
With a fixed two-slot residency policy, memory pressure is controlled by the
number of partitions ``m``: a smaller memory budget forces more, smaller
partitions and therefore more load/unload operations.  This benchmark sweeps
``m`` for a fixed workload and verifies the expected monotone trade-off.

Run with:  pytest benchmarks/bench_ext_memory_budget.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_memory_budget_sweep
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.similarity.workloads import generate_dense_profiles


def test_partition_count_sweep(benchmark, pedantic_kwargs):
    rows = benchmark.pedantic(
        run_memory_budget_sweep,
        kwargs=dict(num_users=1500, k=8, partition_counts=(2, 4, 8, 16, 32), seed=23),
        **pedantic_kwargs,
    )
    benchmark.extra_info["rows"] = [
        {"m": row["num_partitions"], "ops": row["load_unload_operations"]} for row in rows]
    operations = [row["load_unload_operations"] for row in rows]
    # more partitions (less memory per partition) => more load/unload operations
    assert operations == sorted(operations)
    # candidate-tuple count does not depend on the partitioning
    tuples = {row["candidate_tuples"] for row in rows}
    assert len(tuples) == 1


def test_explicit_memory_budget_enforced(benchmark, pedantic_kwargs):
    """A byte budget large enough for two partitions succeeds; the run reports peak use."""
    profiles = generate_dense_profiles(1000, dim=16, seed=23)

    def run_with_budget():
        config = EngineConfig(k=8, num_partitions=10, seed=23,
                              memory_budget_bytes=512 * 1024 * 1024)
        with KNNEngine(profiles, config) as engine:
            return engine.run_iteration()

    result = benchmark.pedantic(run_with_budget, **pedantic_kwargs)
    benchmark.extra_info["load_unload_operations"] = result.load_unload_operations
    assert result.load_unload_operations > 0
