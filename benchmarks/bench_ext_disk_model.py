"""Ext-C (future work) — HDD vs SSD.

The paper's future work plans to measure "execution times as well as
throughput from the disk IO operations" on HDD and SSD.  Physical devices
are replaced by the deterministic disk model (see DESIGN.md §3); the
benchmark verifies the expected qualitative ordering: the same iteration
charges far more simulated I/O time on the HDD model than on the SSD model,
and the gap grows with the number of partitions (more, smaller transfers).

Run with:  pytest benchmarks/bench_ext_disk_model.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_disk_model_comparison
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.similarity.workloads import generate_dense_profiles


def test_hdd_vs_ssd_simulated_io(benchmark, pedantic_kwargs):
    rows = benchmark.pedantic(
        run_disk_model_comparison,
        kwargs=dict(num_users=1500, k=8, num_partitions=8, seed=29),
        **pedantic_kwargs,
    )
    by_model = {row["disk_model"]: row for row in rows}
    benchmark.extra_info["simulated_io_seconds"] = {
        model: round(row["simulated_io_seconds"], 4) for model, row in by_model.items()}
    assert by_model["hdd"]["simulated_io_seconds"] > by_model["ssd"]["simulated_io_seconds"]
    # identical logical work on both devices
    assert (by_model["hdd"]["load_unload_operations"]
            == by_model["ssd"]["load_unload_operations"])
    assert by_model["hdd"]["bytes_read"] == by_model["ssd"]["bytes_read"]


@pytest.mark.parametrize("num_partitions", (4, 16))
def test_partitioning_amplifies_device_gap(benchmark, pedantic_kwargs, num_partitions):
    profiles = generate_dense_profiles(1200, dim=16, seed=29)

    def run(model):
        config = EngineConfig(k=8, num_partitions=num_partitions, disk_model=model, seed=29)
        with KNNEngine(profiles, config) as engine:
            return engine.run_iteration().io_stats.simulated_io_seconds

    def run_both():
        return {"hdd": run("hdd"), "ssd": run("ssd")}

    times = benchmark.pedantic(run_both, **pedantic_kwargs)
    benchmark.extra_info["num_partitions"] = num_partitions
    benchmark.extra_info["simulated_io_seconds"] = {k: round(v, 4) for k, v in times.items()}
    assert times["hdd"] > times["ssd"]
