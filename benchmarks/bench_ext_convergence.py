"""Ext-E — KNN quality and convergence vs the baselines.

The out-of-core engine runs the same neighbours-of-neighbours refinement as
the in-memory algorithms, so its quality trajectory should match theirs:
recall against the brute-force ground truth rises monotonically over
iterations and ends in the same range as NN-Descent, at a small fraction of
the brute-force similarity evaluations.

Run with:  pytest benchmarks/bench_ext_convergence.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import brute_force_knn
from repro.bench.experiments import run_quality_comparison
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.similarity.workloads import generate_profile_churn, generate_sparse_profiles


def test_engine_vs_nn_descent_vs_brute_force(benchmark, pedantic_kwargs):
    summary = benchmark.pedantic(
        run_quality_comparison,
        kwargs=dict(num_users=800, k=10, num_iterations=5, num_partitions=6, seed=37),
        **pedantic_kwargs,
    )
    benchmark.extra_info["engine_recalls"] = [round(r, 3) for r in summary["engine_recalls"]]
    benchmark.extra_info["nn_descent_recall"] = round(summary["nn_descent_recall"], 3)
    benchmark.extra_info["engine_scan_rate"] = round(summary["engine_scan_rate"], 3)

    recalls = summary["engine_recalls"]
    assert recalls == sorted(recalls)                  # monotone convergence
    assert recalls[-1] > 0.75                          # good final quality
    assert abs(recalls[-1] - summary["nn_descent_recall"]) < 0.25
    assert summary["engine_similarity_evaluations"] < summary["brute_force_evaluations"]


def test_convergence_under_profile_churn(benchmark, pedantic_kwargs):
    """With profiles changing every iteration (phase 5), the engine still improves."""
    profiles = generate_sparse_profiles(600, 2000, items_per_user=25,
                                        num_communities=6, seed=41)
    exact = brute_force_knn(profiles, 10, measure="jaccard")

    def run():
        config = EngineConfig(k=10, num_partitions=5, heuristic="degree-low-high", seed=41)
        feed = lambda iteration: generate_profile_churn(
            profiles, change_fraction=0.02, seed=iteration)
        with KNNEngine(profiles, config) as engine:
            return engine.run(num_iterations=4, exact_graph=exact, profile_change_feed=feed)

    run_result = benchmark.pedantic(run, **pedantic_kwargs)
    recalls = run_result.convergence.recalls
    benchmark.extra_info["recalls_under_churn"] = [round(r, 3) for r in recalls]
    benchmark.extra_info["profile_updates_applied"] = sum(
        r.profile_updates_applied for r in run_result.iterations)
    assert recalls[-1] > recalls[0]
    assert sum(r.profile_updates_applied for r in run_result.iterations) > 0
