#!/usr/bin/env python
"""Fixed-seed performance suite: phase timings and scoring throughput.

Runs the Figure-1 pipeline at a fixed workload size, a thread sweep of the
phase-4 scoring kernel, and a backend sweep (thread pool vs. process pool
over mmap-served profile slices) at 2k and 10k users, and writes the
results to ``BENCH_perf.json`` so that successive PRs accumulate a
comparable performance trajectory.

Run with:  PYTHONPATH=src python benchmarks/run_perf_suite.py [--output PATH]

``--quick`` restricts the run to the pipeline bench (the CI regression gate
compares its phase-4 wall-clock against the committed baseline, see
``benchmarks/check_perf_regression.py``).

The quantities recorded:

* ``pipeline`` — per-phase wall-clock seconds, candidate-tuple counts,
  similarity evaluations and evaluations/second of a two-iteration engine
  run (num_users=2000, the workload used by this repo's perf acceptance
  checks);
* ``thread_sweep`` — evaluations/second of one engine iteration at 1, 2 and
  4 scoring threads;
* ``backend_sweep`` — phase-4 seconds of one engine iteration per backend
  (serial / thread / process at several worker counts) at 2k and 10k dense
  users, each row carrying the final graph fingerprint so cross-backend
  bit-parity is visible in the trajectory;
* ``graph_fingerprint`` — a hash of the final graph's edge set, so a perf
  regression hunt can immediately see whether behaviour changed too.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.iteration import PHASE_NAMES
from repro.similarity.workloads import generate_dense_profiles

SEED = 11
NUM_USERS = 2000
K = 10
NUM_PARTITIONS = 6
NUM_ITERATIONS = 2

#: (backend, workers) datapoints of the backend sweep; "workers" means
#: num_threads for the thread backend and num_workers for the process one.
BACKEND_POINTS = (
    ("serial", 1),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)


def run_pipeline_bench() -> dict:
    profiles = generate_dense_profiles(NUM_USERS, dim=16, num_communities=8,
                                       seed=SEED)
    config = EngineConfig(k=K, num_partitions=NUM_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED)
    start = time.perf_counter()
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=NUM_ITERATIONS)
    wall = time.perf_counter() - start
    summary = run.summary()
    phase_seconds = summary["phase_seconds"]
    evaluations = summary["total_similarity_evaluations"]
    phase4 = phase_seconds[PHASE_NAMES[3]]
    return {
        "num_users": NUM_USERS,
        "k": K,
        "num_partitions": NUM_PARTITIONS,
        "num_iterations": NUM_ITERATIONS,
        "seed": SEED,
        "wall_seconds": round(wall, 4),
        "phase_seconds": {name: round(value, 4)
                          for name, value in phase_seconds.items()},
        "candidate_tuples": sum(result.num_candidate_tuples
                                for result in run.iterations),
        "similarity_evaluations": evaluations,
        "phase4_evaluations_per_second": round(evaluations / phase4) if phase4 else None,
        "graph_fingerprint": run.iterations[-1].graph.edge_fingerprint(),
    }


def _one_iteration(profiles, **overrides) -> dict:
    config = EngineConfig(k=K, num_partitions=NUM_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED, **overrides)
    with KNNEngine(profiles, config) as engine:
        result = engine.run_iteration()
        graph = engine.graph
    phase4 = result.phase_timer.as_dict()[PHASE_NAMES[3]]
    return {
        "phase4_seconds": round(phase4, 4),
        "similarity_evaluations": result.similarity_evaluations,
        "evaluations_per_second": (round(result.similarity_evaluations / phase4)
                                   if phase4 else None),
        "graph_fingerprint": graph.edge_fingerprint(),
    }


def run_thread_sweep(thread_counts=(1, 2, 4)) -> list:
    rows = []
    profiles = generate_dense_profiles(NUM_USERS, dim=16, num_communities=8,
                                       seed=SEED)
    for num_threads in thread_counts:
        row = _one_iteration(profiles, num_threads=num_threads)
        rows.append({"num_threads": num_threads, **row})
    return rows


def run_backend_sweep(user_counts=(2000, 10000)) -> list:
    rows = []
    for num_users in user_counts:
        profiles = generate_dense_profiles(num_users, dim=16, num_communities=8,
                                           seed=SEED)
        for backend, workers in BACKEND_POINTS:
            overrides = {"backend": backend}
            if backend == "thread":
                overrides["num_threads"] = workers
            elif backend == "process":
                overrides["num_workers"] = workers
            row = _one_iteration(profiles, **overrides)
            rows.append({"num_users": num_users, "backend": backend,
                         "workers": workers, **row})
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json")
    parser.add_argument("--skip-threads", action="store_true",
                        help="deprecated alias for --quick (kept so existing "
                             "'pipeline bench only' invocations stay fast)")
    parser.add_argument("--skip-backends", action="store_true",
                        help="skip the backend (thread vs. process) sweep")
    parser.add_argument("--quick", action="store_true",
                        help="pipeline bench only (what the CI gate compares)")
    args = parser.parse_args()
    quick = args.quick or args.skip_threads

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pipeline": run_pipeline_bench(),
    }
    if not quick:
        report["thread_sweep"] = run_thread_sweep()
    if not (quick or args.skip_backends):
        report["backend_sweep"] = run_backend_sweep()
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
