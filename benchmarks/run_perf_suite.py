#!/usr/bin/env python
"""Fixed-seed performance suite: phase timings and scoring throughput.

Runs the Figure-1 pipeline at a fixed workload size, a thread sweep of the
phase-4 scoring kernel, and a backend sweep (thread pool vs. process pool
over mmap-served profile slices) at 2k and 10k users, and writes the
results to ``BENCH_perf.json`` so that successive PRs accumulate a
comparable performance trajectory.

Run with:  PYTHONPATH=src python benchmarks/run_perf_suite.py [--output PATH]

``--quick`` restricts the run to the pipeline and update-workload benches
(the CI regression gate compares their phase-4 and combined phase-4+5
wall-clock against the committed baseline, see
``benchmarks/check_perf_regression.py``).

The quantities recorded:

* ``pipeline`` — per-phase wall-clock seconds, candidate-tuple counts,
  similarity evaluations and evaluations/second of a two-iteration engine
  run (num_users=2000, the workload used by this repo's perf acceptance
  checks);
* ``update_workload`` — the amortised-iteration-loop benchmark: 4
  iterations over 10k users, dense and sparse, with profile churn applied
  through the phase-5 update queue every iteration; records per-iteration
  phase-4/phase-5 seconds, profile-store write bytes and incremental
  phase-4 counters (rescored vs cache-reused tuples), plus the combined
  phase-4+5 wall-clock the CI regression gate compares.  Each workload is
  run with the score cache on *and* off (``full_rescore`` section), and
  the report records whether the two fingerprints match — the CI gate
  fails when they do not;
* ``resume`` — the zero-copy checkpoint-resume bench: a 10k-user sparse
  engine is checkpointed after one iteration and resumed via
  ``KNNEngine.from_checkpoint`` inside a forked child process.  Records
  the hard-link/copy split of the resume clone (``linked_bytes`` /
  ``copied_bytes``; ``full_profile_copy`` is the CI-gated verdict — true
  when bytes eligible for hard-linking were copied instead), the resume
  wall-clock, the child's peak-RSS delta across resume + one iteration,
  and whether the resumed run's fingerprint matches the uninterrupted
  run (also CI-gated);
* ``recovery`` — the crash-recovery bench: a durable 2k-user run is killed
  by an injected crash at the start of its final iteration and recovered
  via ``KNNEngine.recover`` (epoch verification, zero-copy restore, WAL
  tail replay).  Records the recovery wall-clock, how many WAL records
  were replayed, and whether the recovered run's final fingerprint matches
  the uninterrupted run (CI-gated);
* ``serving`` — the serving load bench: N simulated reader clients issue
  ``neighbors()`` queries against a live ``ServingRuntime`` while a writer
  streams profile-update batches, in a *sustained* phase (under the
  admission capacity) and a *burst* phase (overflowing it).  Records p99
  query latency and shed-request counts per phase, and the CI-gated
  verdicts: zero failed reads, snapshot isolation proven (reads landed
  mid-refresh with p99 far below the fastest refresh cycle), and burst
  load actually shed;
* ``sharded`` — the shard-parallel matrix: the 10k-user churned workload
  with whole-step wave execution on (serial/thread/process) and off,
  recording phase-4 wall-clock, per-worker ``peak_worker_bytes`` against
  the byte budget, the process-over-thread speedup, and the CI-gated
  parity verdicts (graph fingerprints and final profile bytes must be
  identical to the step-at-a-time reference);
* ``sharded_million`` (``--million`` only) — one sharded iteration over
  1M users in 64 partitions with the per-worker resident-bytes cap set to
  an eighth of the profile store, proving the tier runs out-of-core under
  a hard ``MemoryError``-enforced budget;
* ``thread_sweep`` — evaluations/second of one engine iteration at 1, 2 and
  4 scoring threads;
* ``backend_sweep`` — phase-4 seconds of one engine iteration per backend
  (serial / thread / process at several worker counts) at 2k and 10k dense
  users, each row carrying the final graph fingerprint so cross-backend
  bit-parity is visible in the trajectory;
* ``graph_fingerprint`` — a hash of the final graph's edge set, so a perf
  regression hunt can immediately see whether behaviour changed too.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.core.iteration import PHASE_NAMES
from repro.similarity.workloads import (ProfileChange, generate_dense_profiles,
                                        generate_sparse_profiles)

SEED = 11
NUM_USERS = 2000
K = 10
NUM_PARTITIONS = 6
NUM_ITERATIONS = 2

#: Shape of the update-heavy amortisation workload (phase-5 gate): 4
#: iterations over 10k users with profile churn applied every iteration.
UPDATE_USERS = 10000
UPDATE_ITERATIONS = 4
UPDATE_PARTITIONS = 8
UPDATE_CHURN = 500          # users whose profile changes per iteration
UPDATE_ITEMS = 30000        # sparse catalogue size

#: (backend, workers) datapoints of the backend sweep; "workers" means
#: num_threads for the thread backend and num_workers for the process one.
BACKEND_POINTS = (
    ("serial", 1),
    ("thread", 4),
    ("process", 2),
    ("process", 4),
)


def run_pipeline_bench() -> dict:
    profiles = generate_dense_profiles(NUM_USERS, dim=16, num_communities=8,
                                       seed=SEED)
    config = EngineConfig(k=K, num_partitions=NUM_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED)
    start = time.perf_counter()
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=NUM_ITERATIONS)
    wall = time.perf_counter() - start
    summary = run.summary()
    phase_seconds = summary["phase_seconds"]
    evaluations = summary["total_similarity_evaluations"]
    phase4 = phase_seconds[PHASE_NAMES[3]]
    return {
        "num_users": NUM_USERS,
        "k": K,
        "num_partitions": NUM_PARTITIONS,
        "num_iterations": NUM_ITERATIONS,
        "seed": SEED,
        "wall_seconds": round(wall, 4),
        "phase_seconds": {name: round(value, 4)
                          for name, value in phase_seconds.items()},
        "candidate_tuples": sum(result.num_candidate_tuples
                                for result in run.iterations),
        "similarity_evaluations": evaluations,
        "phase4_evaluations_per_second": round(evaluations / phase4) if phase4 else None,
        "graph_fingerprint": run.iterations[-1].graph.edge_fingerprint(),
    }


def _one_iteration(profiles, **overrides) -> dict:
    config = EngineConfig(k=K, num_partitions=NUM_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED, **overrides)
    with KNNEngine(profiles, config) as engine:
        result = engine.run_iteration()
        graph = engine.graph
    phase4 = result.phase_timer.as_dict()[PHASE_NAMES[3]]
    return {
        "phase4_seconds": round(phase4, 4),
        "similarity_evaluations": result.similarity_evaluations,
        "evaluations_per_second": (round(result.similarity_evaluations / phase4)
                                   if phase4 else None),
        "graph_fingerprint": graph.edge_fingerprint(),
    }


def _run_update_workload(kind: str, incremental: bool = True) -> dict:
    """One update-heavy engine run: per-iteration phase-4/5 seconds and bytes.

    ``incremental=False`` disables the phase-4 score cache (full rescore
    every iteration); the suite runs both so the report carries the
    incremental-vs-full timing delta and CI can assert the fingerprints
    stay bit-identical.
    """
    if kind == "dense":
        profiles = generate_dense_profiles(UPDATE_USERS, dim=16,
                                           num_communities=8, seed=SEED)
    else:
        profiles = generate_sparse_profiles(UPDATE_USERS, UPDATE_ITEMS,
                                            items_per_user=20,
                                            num_communities=8, seed=SEED)
    config = EngineConfig(k=K, num_partitions=UPDATE_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED,
                          incremental_phase4=incremental)
    rng = np.random.default_rng(7)

    def churn(_iteration: int):
        users = rng.choice(UPDATE_USERS, size=UPDATE_CHURN, replace=False)
        if kind == "dense":
            return [ProfileChange(user=int(u), kind="set", vector=rng.random(16))
                    for u in users]
        return [ProfileChange(user=int(u), kind="add",
                              item=int(rng.integers(0, UPDATE_ITEMS)))
                for u in users]

    with KNNEngine(profiles, config) as engine:
        start = time.perf_counter()
        run = engine.run(num_iterations=UPDATE_ITERATIONS,
                         profile_change_feed=churn)
        wall = time.perf_counter() - start
    per_iteration = []
    for result in run.iterations:
        phases = result.phase_timer.as_dict()
        profile_io = getattr(result, "profile_io_stats", None)
        per_iteration.append({
            "phase4_seconds": round(phases[PHASE_NAMES[3]], 4),
            "phase5_seconds": round(phases[PHASE_NAMES[4]], 4),
            "updates_applied": result.profile_updates_applied,
            # incremental phase 4: kernel work vs cache reuse per iteration
            "rescored_tuples": result.rescored_tuples,
            "reused_scores": result.reused_scores,
            "full_rescore": result.full_rescore,
            # phase-5 write traffic; iteration 0 also carries the initial
            # store write, so the update scaling is read from iterations 1+
            "profile_bytes_written": (profile_io.bytes_written
                                      if profile_io is not None else None),
            # time spent folding this iteration's scores into the cache
            # (the in-place galloping merge)
            "cache_merge_seconds": round(
                getattr(result, "cache_merge_seconds", 0.0), 4),
        })
    phases = run.summary()["phase_seconds"]
    return {
        "kind": kind,
        "incremental_phase4": incremental,
        "num_users": UPDATE_USERS,
        "num_iterations": UPDATE_ITERATIONS,
        "num_partitions": UPDATE_PARTITIONS,
        "churn_per_iteration": UPDATE_CHURN,
        "wall_seconds": round(wall, 4),
        "phase4_seconds": round(phases[PHASE_NAMES[3]], 4),
        "phase5_seconds": round(phases[PHASE_NAMES[4]], 4),
        "phase2_seconds": round(phases[PHASE_NAMES[1]], 4),
        "rescored_tuples": sum(row["rescored_tuples"] for row in per_iteration),
        "reused_scores": sum(row["reused_scores"] for row in per_iteration),
        "cache_merge_seconds": round(sum(row["cache_merge_seconds"]
                                         for row in per_iteration), 4),
        "iterations": per_iteration,
        "graph_fingerprint": run.final_graph.edge_fingerprint(),
    }


def run_update_workload_bench() -> dict:
    """The amortised-iteration-loop benchmark: dense + sparse churn runs.

    ``phase45_seconds`` (the combined phase-4 + phase-5 wall-clock across
    both runs, score cache on) is what the CI phase-5 regression gate
    compares.  Each workload is also re-run with ``incremental_phase4``
    disabled so the report carries the incremental-vs-full wall-clock
    delta, and ``incremental_fingerprints_match`` lets the CI gate fail
    hard if the cache ever changes a result bit.
    """
    dense = _run_update_workload("dense")
    sparse = _run_update_workload("sparse")
    dense_full = _run_update_workload("dense", incremental=False)
    sparse_full = _run_update_workload("sparse", incremental=False)
    combined = (dense["phase4_seconds"] + dense["phase5_seconds"]
                + sparse["phase4_seconds"] + sparse["phase5_seconds"])
    combined_full = (dense_full["phase4_seconds"] + dense_full["phase5_seconds"]
                     + sparse_full["phase4_seconds"] + sparse_full["phase5_seconds"])
    combined24 = (dense["phase2_seconds"] + dense["phase4_seconds"]
                  + sparse["phase2_seconds"] + sparse["phase4_seconds"])
    return {
        "dense": dense,
        "sparse": sparse,
        "full_rescore": {"dense": dense_full, "sparse": sparse_full},
        "phase45_seconds": round(combined, 4),
        "phase45_seconds_full": round(combined_full, 4),
        "phase24_seconds": round(combined24, 4),
        "phase5_seconds": round(dense["phase5_seconds"]
                                + sparse["phase5_seconds"], 4),
        "incremental_fingerprints_match": (
            dense["graph_fingerprint"] == dense_full["graph_fingerprint"]
            and sparse["graph_fingerprint"] == sparse_full["graph_fingerprint"]),
    }


#: Shape of the dirty-scheduling workload: the serving-loop steady state.
#: The same 10k users / 8 partitions / 500-row churn as the update
#: workload, but localised — the churned rows all live in the first
#: partition's row range and drift by a small Gaussian step instead of
#: being redrawn — and applied to a *converged* graph.  Uniform redraw
#: churn dirties every partition every iteration (nothing can skip, by
#: design); the localised drift leaves seven of eight partitions clean,
#: which is exactly the regime dirty scheduling exists for.
DIRTY_DRIFT_ITERATIONS = 4
DIRTY_DRIFT_SCALE = 0.02
DIRTY_WARMUP_CAP = 20
#: (backend, workers) points of the dirty-vs-full parity matrix.
DIRTY_BACKENDS = (("serial", 1), ("thread", 4), ("process", 2))


def _run_dirty_workload(dirty_scheduling: bool, backend: str = "serial",
                        workers: int = 1) -> dict:
    """One converged-then-drift run; drift-window schedule and parity stats.

    Warm-up runs until the graph stops changing (fingerprint-stable, capped)
    so the drift window measures the steady state, not residual convergence
    churn.  The warm-up length is a pure function of the data and therefore
    identical across backends and across the dirty-on/off twin runs.
    """
    profiles = generate_dense_profiles(UPDATE_USERS, dim=16,
                                       num_communities=8, seed=SEED)
    matrix = profiles.matrix.copy()
    rng = np.random.default_rng(7)
    hot_rows = UPDATE_USERS // UPDATE_PARTITIONS   # the first partition
    overrides = {"backend": backend}
    if backend == "thread":
        overrides["num_threads"] = workers
    elif backend == "process":
        overrides["num_workers"] = workers
    config = EngineConfig(k=K, num_partitions=UPDATE_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED,
                          dirty_scheduling=dirty_scheduling, **overrides)

    def drift_batch():
        users = rng.choice(hot_rows, size=UPDATE_CHURN, replace=False)
        changes = []
        for user in users:
            matrix[user] = (matrix[user]
                            + rng.normal(scale=DIRTY_DRIFT_SCALE, size=16))
            changes.append(ProfileChange(user=int(user), kind="set",
                                         vector=matrix[user].copy()))
        return changes

    with KNNEngine(profiles, config) as engine:
        previous = engine.graph.edge_fingerprint()
        warmup = 0
        while warmup < DIRTY_WARMUP_CAP:
            fingerprint = engine.run_iteration().graph.edge_fingerprint()
            warmup += 1
            if fingerprint == previous:
                break
            previous = fingerprint
        drift_results = []
        start = time.perf_counter()
        for _ in range(DIRTY_DRIFT_ITERATIONS):
            engine.enqueue_profile_changes(drift_batch())
            drift_results.append(engine.run_iteration())
        drift_wall = time.perf_counter() - start
        final_fingerprint = engine.graph.edge_fingerprint()
        profile_sha256 = hashlib.sha256(
            (engine.profile_store.base_dir
             / "profiles_dense.bin").read_bytes()).hexdigest()
    steps_total = sum(result.steps_total for result in drift_results)
    steps_skipped = sum(result.steps_skipped for result in drift_results)
    phase4 = sum(result.phase_timer.as_dict()[PHASE_NAMES[3]]
                 for result in drift_results)
    return {
        "backend": backend,
        "workers": workers,
        "dirty_scheduling": dirty_scheduling,
        "warmup_iterations": warmup,
        "steps_skipped": steps_skipped,
        "steps_total": steps_total,
        "skip_rate": (round(steps_skipped / steps_total, 4)
                      if steps_total else None),
        "phase4_seconds": round(phase4, 4),
        "drift_wall_seconds": round(drift_wall, 4),
        "load_unload_operations": sum(result.load_unload_operations
                                      for result in drift_results),
        "similarity_evaluations": sum(result.similarity_evaluations
                                      for result in drift_results),
        "graph_fingerprint": final_fingerprint,
        "profile_sha256": profile_sha256,
    }


def run_dirty_scheduling_bench() -> dict:
    """Dirty-vs-full parity and skip-rate matrix (the PR-7 gate).

    One full-schedule reference run plus a dirty-scheduled run per backend
    over the identical converged-then-drift workload.  Gated quantities:
    ``fingerprints_match`` and ``profiles_match`` must stay true (skipping
    a step must never change a result bit — graphs *and* final profile
    bytes), and ``min_skip_rate`` must stay ≥ 0.6 (the steady-state saving
    that justifies the machinery).
    """
    full = _run_dirty_workload(False)
    rows = [_run_dirty_workload(True, backend, workers)
            for backend, workers in DIRTY_BACKENDS]
    skip_rates = [row["skip_rate"] for row in rows if row["skip_rate"] is not None]
    return {
        "num_users": UPDATE_USERS,
        "num_partitions": UPDATE_PARTITIONS,
        "churn_per_iteration": UPDATE_CHURN,
        "drift_scale": DIRTY_DRIFT_SCALE,
        "drift_iterations": DIRTY_DRIFT_ITERATIONS,
        "full_schedule": full,
        "dirty": rows,
        "min_skip_rate": round(min(skip_rates), 4) if skip_rates else None,
        "fingerprints_match": all(
            row["graph_fingerprint"] == full["graph_fingerprint"]
            for row in rows),
        "profiles_match": all(
            row["profile_sha256"] == full["profile_sha256"]
            for row in rows),
        "phase4_seconds_full": full["phase4_seconds"],
        "phase4_seconds_dirty": rows[0]["phase4_seconds"],
    }


#: Shape of the zero-copy resume bench (sparse: the hard-linkable layout).
RESUME_USERS = 10000


def _resume_child(checkpoint_dir: str, conn) -> None:
    """Resume + one iteration; report RSS and clone accounting over ``conn``.

    Run in a forked child so the peak-RSS delta isolates the resume path
    (the parent's bench history does not move the child's high-water mark
    after the fork point).
    """
    try:
        import resource  # unix-only; the no-fork fallback path has no RSS
        rusage = lambda: resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:
        rusage = lambda: 0
    rss_before = rusage()
    start = time.perf_counter()
    with KNNEngine.from_checkpoint(checkpoint_dir) as engine:
        resume_seconds = time.perf_counter() - start
        stats = engine.resume_clone_stats
        fingerprint = engine.run_iteration().graph.edge_fingerprint()
    rss_after = rusage()
    conn.send({
        "resume_seconds": resume_seconds,
        "peak_rss_kb_before": rss_before,
        "peak_rss_kb_after": rss_after,
        "linked_files": stats.linked_files,
        "copied_files": stats.copied_files,
        "linked_bytes": stats.linked_bytes,
        "copied_bytes": stats.copied_bytes,
        "fingerprint": fingerprint,
    })
    conn.close()


class _InProcessSink:
    """Pipe stand-in when no fork is available (same-process measurement)."""

    def send(self, payload):
        self.payload = payload

    def close(self):
        pass


def run_resume_bench() -> dict:
    """Checkpoint a 10k-user sparse engine and measure the zero-copy resume.

    The gated quantities: ``full_profile_copy`` must stay false (every
    byte eligible for hard-linking was linked, so no full profile copy was
    materialised) and ``resumed_fingerprint_matches`` must stay true (the
    resumed iteration equals the uninterrupted one bit for bit).  The
    peak-RSS delta and resume wall-clock are trajectory records.
    """
    from repro.storage.profile_store import OnDiskProfileStore

    profiles = generate_sparse_profiles(RESUME_USERS, UPDATE_ITEMS,
                                        items_per_user=20,
                                        num_communities=8, seed=SEED)
    config = EngineConfig(k=K, num_partitions=UPDATE_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED)
    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp:
        checkpoint_dir = Path(tmp) / "ckpt"
        with KNNEngine(profiles, config) as engine:
            engine.run_iteration()
            engine.save_checkpoint(checkpoint_dir)
            uninterrupted = engine.run_iteration().graph.edge_fingerprint()
        snapshot_files = sorted((checkpoint_dir / "profiles").glob("profiles_*"))
        snapshot_bytes = sum(path.stat().st_size for path in snapshot_files)
        linkable_bytes = sum(
            path.stat().st_size for path in snapshot_files
            if OnDiskProfileStore.linkable_snapshot_file(path.name))
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            parent_conn, child_conn = context.Pipe()
            child = context.Process(target=_resume_child,
                                    args=(str(checkpoint_dir), child_conn))
            child.start()
            # drop the parent's write end so a child that dies before
            # sending surfaces as EOFError instead of a recv() hang
            child_conn.close()
            try:
                payload = parent_conn.recv()
            except EOFError:
                child.join()
                raise RuntimeError(
                    "resume bench child exited before reporting "
                    f"(exit code {child.exitcode}) — the resume path failed")
            child.join()
            isolated = True
        else:
            sink = _InProcessSink()
            _resume_child(str(checkpoint_dir), sink)
            payload = sink.payload
            isolated = False
    return {
        "kind": "sparse",
        "num_users": RESUME_USERS,
        "snapshot_profile_bytes": snapshot_bytes,
        "linkable_bytes": linkable_bytes,
        "linked_files": payload["linked_files"],
        "copied_files": payload["copied_files"],
        "linked_bytes": payload["linked_bytes"],
        "copied_bytes": payload["copied_bytes"],
        # true when bytes that *should* have become hard links were copied:
        # the resume materialised (part of) a profile copy — CI fails on it
        "full_profile_copy": bool(linkable_bytes > 0
                                  and payload["linked_bytes"] < linkable_bytes),
        "resume_seconds": round(payload["resume_seconds"], 4),
        "peak_rss_kb_delta": (payload["peak_rss_kb_after"]
                              - payload["peak_rss_kb_before"]),
        "peak_rss_kb_after": payload["peak_rss_kb_after"],
        "isolated_process": isolated,
        "resumed_fingerprint_matches": payload["fingerprint"] == uninterrupted,
    }


#: Shape of the crash-recovery bench: a durable run is crashed at the
#: start of its third iteration and recovered from the committed epochs.
RECOVERY_USERS = 2000
RECOVERY_ITERATIONS = 3
RECOVERY_CHURN = 100


def run_recovery_bench() -> dict:
    """Crash a durable run mid-flight and measure ``KNNEngine.recover``.

    The gated quantity: ``recovered_fingerprint_matches`` must stay true —
    kill → recover → finish equals the uninterrupted run bit for bit, with
    the WAL tail replayed exactly once.  ``recover_seconds`` (checkpoint
    verification + zero-copy restore + WAL replay) and ``wal_replayed``
    are trajectory records.
    """
    from repro.testing import FaultPlan, InjectedCrash

    def fresh_profiles():
        return generate_dense_profiles(RECOVERY_USERS, dim=16,
                                       num_communities=8, seed=SEED)

    def once_feed():
        fed = set()

        def feed(iteration):
            if iteration in fed:
                return []
            fed.add(iteration)
            rng = np.random.default_rng(1000 + iteration)
            users = rng.choice(RECOVERY_USERS, size=RECOVERY_CHURN,
                               replace=False)
            return [ProfileChange(user=int(u), kind="set",
                                  vector=rng.random(16)) for u in users]

        return feed

    def config(**overrides):
        return EngineConfig(k=K, num_partitions=NUM_PARTITIONS,
                            heuristic="degree-low-high", seed=SEED,
                            **overrides)

    with KNNEngine(fresh_profiles(), config()) as engine:
        engine.run(RECOVERY_ITERATIONS, profile_change_feed=once_feed())
        uninterrupted = engine.graph.edge_fingerprint()

    with tempfile.TemporaryDirectory(prefix="repro-recovery-") as tmp:
        workdir = Path(tmp) / "work"
        plan = FaultPlan().crash_at("iteration.begin",
                                    occurrence=RECOVERY_ITERATIONS)
        feed = once_feed()
        engine = KNNEngine(fresh_profiles(),
                           config(durable=True, fault_plan=plan),
                           workdir=workdir)
        try:
            engine.run(RECOVERY_ITERATIONS, profile_change_feed=feed)
            raise RuntimeError("injected crash never fired")
        except InjectedCrash:
            pass
        finally:
            engine.close()
        start = time.perf_counter()
        recovered = KNNEngine.recover(workdir)
        recover_seconds = time.perf_counter() - start
        try:
            resumed_at = recovered.iterations_run
            wal_replayed = recovered.wal_replayed
            recovered.run(RECOVERY_ITERATIONS - resumed_at,
                          profile_change_feed=feed)
            fingerprint = recovered.graph.edge_fingerprint()
        finally:
            recovered.close()
    return {
        "num_users": RECOVERY_USERS,
        "num_iterations": RECOVERY_ITERATIONS,
        "churn_per_iteration": RECOVERY_CHURN,
        "crashed_at_iteration": RECOVERY_ITERATIONS - 1,
        "resumed_at_iteration": resumed_at,
        "wal_replayed": wal_replayed,
        "recover_seconds": round(recover_seconds, 4),
        "recovered_fingerprint_matches": fingerprint == uninterrupted,
    }


#: Shape of the serving load bench: N simulated clients querying an
#: always-on :class:`ServingRuntime` while a writer streams update batches.
SERVING_USERS = 1500
SERVING_READERS = 4
SERVING_CAPACITY = 1000
SERVING_SUSTAINED_SECONDS = 3.0
SERVING_BURST_SECONDS = 2.0
SERVING_SUSTAINED_BATCH = 20
SERVING_BURST_BATCH = 600


def run_serving_bench() -> dict:
    """Sustained concurrent read+write against the serving runtime.

    Two phases: ``sustained`` (steady update stream under the admission
    capacity) and ``burst`` (oversized batches that must overflow the
    bound and be shed — proving admission control actually sheds instead
    of queueing unboundedly).  The gated quantities:

    * ``query_failures`` must be 0 — every read under load is answered
      within its deadline, refresh or no refresh;
    * ``snapshot_isolation_proven`` must be true — reads landed *while* a
      refresh iteration was in flight, and their p99 is far below the
      fastest full refresh cycle, so no read ever blocked on one
      (asserted, not assumed);
    * ``burst_shed_changes`` must be > 0 — the backpressure signal fired.

    The p99 latencies per phase are trajectory records.
    """
    from random import Random

    from repro.service import LoadGenerator, ServingRuntime, dense_set_batch

    profiles = generate_dense_profiles(SERVING_USERS, dim=16,
                                       num_communities=8, seed=SEED)
    config = EngineConfig(k=K, num_partitions=UPDATE_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED)
    rng = Random(SEED)
    with ServingRuntime(profiles, config,
                        admission_capacity=SERVING_CAPACITY,
                        default_deadline_seconds=5.0,
                        refresh_poll_interval=0.01) as service:
        generator = LoadGenerator(service, num_users=SERVING_USERS,
                                  num_readers=SERVING_READERS,
                                  deadline_seconds=5.0, seed=SEED)

        def sustained_writer():
            service.submit_updates(dense_set_batch(
                SERVING_USERS, 16, SERVING_SUSTAINED_BATCH, rng))

        def burst_writer():
            service.submit_updates(dense_set_batch(
                SERVING_USERS, 16, SERVING_BURST_BATCH, rng))

        sustained = generator.run_phase(
            "sustained", SERVING_SUSTAINED_SECONDS,
            writer=sustained_writer, writer_interval=0.05)
        # the isolation proof needs at least one *completed* refresh cycle
        # as the timing yardstick; on a slow machine the sustained window
        # may end mid-iteration, so wait the cycle out before bursting
        wait_deadline = time.monotonic() + 120.0
        while (service.supervisor.refreshes < 1
               and time.monotonic() < wait_deadline):
            time.sleep(0.05)
        burst = generator.run_phase(
            "burst", SERVING_BURST_SECONDS,
            writer=burst_writer, writer_interval=0.005)
        min_refresh = service.supervisor.min_refresh_seconds
        stats = service.stats()
        service.stop(drain=True)

    query_failures = sustained.query_failures + burst.query_failures
    during_refresh = (sustained.queries_during_refresh
                      + burst.queries_during_refresh)
    worst_p99 = max(sustained.p99_query_seconds, burst.p99_query_seconds)
    # a read that blocked on the in-flight iteration would take at least
    # one refresh cycle; p99 far below the *fastest* cycle proves none did
    isolation_proven = bool(during_refresh > 0
                            and min_refresh is not None
                            and worst_p99 < min_refresh / 10.0)
    return {
        "num_users": SERVING_USERS,
        "num_readers": SERVING_READERS,
        "admission_capacity": SERVING_CAPACITY,
        "phases": {"sustained": sustained.as_dict(), "burst": burst.as_dict()},
        "queries": sustained.queries + burst.queries,
        "query_failures": query_failures,
        "queries_during_refresh": during_refresh,
        "p99_sustained_seconds": sustained.p99_query_seconds,
        "p99_burst_seconds": burst.p99_query_seconds,
        "min_refresh_seconds": (round(min_refresh, 4)
                                if min_refresh is not None else None),
        "refreshes": stats["refreshes"],
        "restarts": stats["restarts"],
        "accepted_changes": stats["accepted_changes"],
        "burst_shed_changes": burst.shed_changes,
        "snapshot_isolation_proven": isolation_proven,
    }


#: Shape of the shard-parallel workload: the update workload's 10k users
#: and uniform churn, run with ``shard_parallel`` on and off.  Thread and
#: process rows use the same worker count so the recorded
#: ``process_speedup_over_thread`` compares like with like; the gate only
#: enforces it on machines with ≥ 4 cores (GIL-bound thread scoring vs
#: fork workers needs real parallelism to show).
SHARDED_ITERATIONS = 3
SHARDED_WORKERS = max(2, min(4, os.cpu_count() or 1))
SHARDED_BACKENDS = (("serial", 1), ("thread", SHARDED_WORKERS),
                    ("process", SHARDED_WORKERS))
#: Per-worker resident-bytes cap for the sharded rows (generous: the
#: 10k-user store is ~1.3 MB; the cap exists so the bench records real
#: ``peak_worker_bytes`` accounting, not to constrain this tier).
SHARDED_BUDGET_BYTES = 64 * 1024 * 1024


def _run_sharded_workload(shard_parallel: bool, backend: str = "serial",
                          workers: int = 1,
                          budget_bytes: float = None) -> dict:
    """One churned run with whole-step wave execution on or off."""
    profiles = generate_dense_profiles(UPDATE_USERS, dim=16,
                                       num_communities=8, seed=SEED)
    overrides = {"backend": backend}
    if backend == "thread":
        overrides["num_threads"] = workers
    elif backend == "process":
        overrides["num_workers"] = workers
    config = EngineConfig(k=K, num_partitions=UPDATE_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED,
                          shard_parallel=shard_parallel,
                          memory_budget_bytes=budget_bytes, **overrides)
    rng = np.random.default_rng(7)

    def churn(_iteration: int):
        users = rng.choice(UPDATE_USERS, size=UPDATE_CHURN, replace=False)
        return [ProfileChange(user=int(u), kind="set", vector=rng.random(16))
                for u in users]

    with KNNEngine(profiles, config) as engine:
        start = time.perf_counter()
        run = engine.run(num_iterations=SHARDED_ITERATIONS,
                         profile_change_feed=churn)
        wall = time.perf_counter() - start
        coordinator = engine._iteration_runner.shard_coordinator
        peak_worker_bytes = (coordinator.peak_worker_bytes
                             if coordinator is not None else None)
        coordinator_backend = (coordinator.backend
                               if coordinator is not None else None)
        profile_sha256 = hashlib.sha256(
            (engine.profile_store.base_dir
             / "profiles_dense.bin").read_bytes()).hexdigest()
    phase4 = sum(result.phase_timer.as_dict()[PHASE_NAMES[3]]
                 for result in run.iterations)
    return {
        "backend": backend,
        "workers": workers,
        "shard_parallel": shard_parallel,
        "coordinator_backend": coordinator_backend,
        "wall_seconds": round(wall, 4),
        "phase4_seconds": round(phase4, 4),
        "load_unload_operations": sum(result.load_unload_operations
                                      for result in run.iterations),
        "similarity_evaluations": sum(result.similarity_evaluations
                                      for result in run.iterations),
        "peak_worker_bytes": peak_worker_bytes,
        "worker_budget_bytes": budget_bytes,
        "graph_fingerprint": run.final_graph.edge_fingerprint(),
        "profile_sha256": profile_sha256,
    }


def run_sharded_bench() -> dict:
    """Shard-parallel parity + speedup matrix (the PR-9 gate).

    One step-at-a-time reference run plus a sharded run per backend over
    the identical churned workload.  Gated quantities:
    ``fingerprints_match`` and ``profiles_match`` must stay true (wave
    execution must never change a result bit — graphs *and* final profile
    bytes), every sharded row must respect its per-worker byte budget
    (``within_budget``), and on machines with ≥ 4 cores
    ``process_speedup_over_thread`` must stay ≥ 2.0 (the reason the
    process backend exists; honestly skipped below 4 cores).
    """
    reference = _run_sharded_workload(False)
    rows = [_run_sharded_workload(True, backend, workers,
                                  budget_bytes=SHARDED_BUDGET_BYTES)
            for backend, workers in SHARDED_BACKENDS]
    by_backend = {row["backend"]: row for row in rows}
    thread_phase4 = by_backend["thread"]["phase4_seconds"]
    process_phase4 = by_backend["process"]["phase4_seconds"]
    return {
        "num_users": UPDATE_USERS,
        "num_partitions": UPDATE_PARTITIONS,
        "num_iterations": SHARDED_ITERATIONS,
        "churn_per_iteration": UPDATE_CHURN,
        "cpu_count": os.cpu_count(),
        "workers": SHARDED_WORKERS,
        "reference": reference,
        "sharded": rows,
        "fingerprints_match": all(
            row["graph_fingerprint"] == reference["graph_fingerprint"]
            for row in rows),
        "profiles_match": all(
            row["profile_sha256"] == reference["profile_sha256"]
            for row in rows),
        "within_budget": all(
            row["peak_worker_bytes"] is not None
            and row["peak_worker_bytes"] <= SHARDED_BUDGET_BYTES
            for row in rows),
        "phase4_seconds_reference": reference["phase4_seconds"],
        "phase4_seconds_thread": thread_phase4,
        "phase4_seconds_process": process_phase4,
        "process_speedup_over_thread": (
            round(thread_phase4 / process_phase4, 4)
            if process_phase4 else None),
    }


#: Shape of the million-user tier (run with ``--million``): one sharded
#: iteration over 1M dense users in 64 partitions, with the per-worker
#: resident-bytes cap set to an eighth of the profile store — the
#: out-of-core claim at serving scale, enforced (MemoryError, not a
#: silent spill) by ``MemoryBudget.record_transient``.
MILLION_USERS = 1_000_000
MILLION_PARTITIONS = 64
MILLION_DIM = 8
MILLION_K = 4


def run_million_user_bench() -> dict:
    """One shard-parallel iteration at ≥ 1M users under a hard byte budget.

    The gated quantities (checked only when the section is present):
    ``within_budget`` must be true — the peak per-worker resident slice
    bytes stayed under a budget that is itself a small fraction of the
    store (``budget_fraction_of_store``), so the tier genuinely ran
    out-of-core.  A budget overflow raises ``MemoryError`` and fails the
    bench outright, so ``within_budget`` doubles as the did-it-run flag.
    """
    profiles = generate_dense_profiles(MILLION_USERS, dim=MILLION_DIM,
                                       num_communities=16, seed=SEED)
    store_bytes = int(profiles.matrix.nbytes)
    # two resident partitions per worker is ~1/32 of the store; an eighth
    # leaves 4x headroom while still forcing out-of-core execution
    budget_bytes = store_bytes // 8
    workers = max(1, min(4, os.cpu_count() or 1))
    config = EngineConfig(k=MILLION_K, num_partitions=MILLION_PARTITIONS,
                          heuristic="degree-low-high", seed=SEED,
                          shard_parallel=True, backend="process",
                          num_workers=workers,
                          memory_budget_bytes=budget_bytes,
                          max_pairs_per_bridge=1)
    start = time.perf_counter()
    with KNNEngine(profiles, config) as engine:
        result = engine.run_iteration()
        wall = time.perf_counter() - start
        coordinator = engine._iteration_runner.shard_coordinator
        peak_worker_bytes = coordinator.peak_worker_bytes
        coordinator_backend = coordinator.backend
    phase4 = result.phase_timer.as_dict()[PHASE_NAMES[3]]
    return {
        "num_users": MILLION_USERS,
        "num_partitions": MILLION_PARTITIONS,
        "dim": MILLION_DIM,
        "k": MILLION_K,
        "workers": workers,
        "coordinator_backend": coordinator_backend,
        "store_bytes": store_bytes,
        "worker_budget_bytes": budget_bytes,
        "budget_fraction_of_store": round(budget_bytes / store_bytes, 4),
        "peak_worker_bytes": peak_worker_bytes,
        "within_budget": bool(0 < peak_worker_bytes <= budget_bytes),
        "wall_seconds": round(wall, 4),
        "phase4_seconds": round(phase4, 4),
        "similarity_evaluations": result.similarity_evaluations,
        "load_unload_operations": result.load_unload_operations,
        "graph_fingerprint": result.graph.edge_fingerprint(),
    }


def run_thread_sweep(thread_counts=(1, 2, 4)) -> list:
    rows = []
    profiles = generate_dense_profiles(NUM_USERS, dim=16, num_communities=8,
                                       seed=SEED)
    for num_threads in thread_counts:
        row = _one_iteration(profiles, num_threads=num_threads)
        rows.append({"num_threads": num_threads, **row})
    return rows


def run_backend_sweep(user_counts=(2000, 10000)) -> list:
    rows = []
    for num_users in user_counts:
        profiles = generate_dense_profiles(num_users, dim=16, num_communities=8,
                                           seed=SEED)
        for backend, workers in BACKEND_POINTS:
            overrides = {"backend": backend}
            if backend == "thread":
                overrides["num_threads"] = workers
            elif backend == "process":
                overrides["num_workers"] = workers
            row = _one_iteration(profiles, **overrides)
            rows.append({"num_users": num_users, "backend": backend,
                         "workers": workers, **row})
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json")
    parser.add_argument("--skip-threads", action="store_true",
                        help="deprecated alias for --quick (kept so existing "
                             "'pipeline bench only' invocations stay fast)")
    parser.add_argument("--skip-backends", action="store_true",
                        help="skip the backend (thread vs. process) sweep")
    parser.add_argument("--quick", action="store_true",
                        help="pipeline + update-workload benches only "
                             "(what the CI gate compares)")
    parser.add_argument("--million", action="store_true",
                        help="also run the 1M-user shard-parallel tier "
                             "(minutes of wall-clock; gated only when "
                             "present in the report)")
    parser.add_argument("--skip-invariant-lint", action="store_true",
                        help="skip the static-analysis preflight (escape "
                             "hatch for benching a deliberately-dirty tree)")
    args = parser.parse_args()
    quick = args.quick or args.skip_threads

    if not args.skip_invariant_lint:
        # Preflight: refuse to record a perf trajectory point for a tree
        # that violates the repo's invariants (scheduler purity, lock
        # discipline, crash-point coverage, durable-write protocol, memmap
        # hygiene — see docs/static-analysis.md).  A benched-but-broken
        # tree poisons the committed baseline.
        from repro.analysis import analyze
        lint = analyze(Path(__file__).resolve().parent.parent)
        print(lint.summary())
        if not lint.is_clean:
            print(lint.render())
            raise SystemExit("invariant lint failed; fix the findings or "
                             "rerun with --skip-invariant-lint")

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pipeline": run_pipeline_bench(),
        # part of --quick: the CI gate compares its combined phase-4+5 time
        "update_workload": run_update_workload_bench(),
        # part of --quick: the CI gate fails on a materialised profile copy
        # or a resumed-fingerprint mismatch
        "resume": run_resume_bench(),
        # part of --quick: the CI gate fails when a crashed durable run
        # does not recover to the uninterrupted fingerprint
        "recovery": run_recovery_bench(),
        # part of --quick: the CI gate fails on dirty-vs-full fingerprint
        # or profile-byte divergence, or a skip rate below 60%
        "dirty_scheduling": run_dirty_scheduling_bench(),
        # part of --quick: the CI gate fails on any failed read under load,
        # on unproven snapshot isolation, or when burst load is not shed
        "serving": run_serving_bench(),
        # part of --quick: the CI gate fails on sharded-vs-serial
        # fingerprint/profile divergence or a busted per-worker budget,
        # and (on ≥ 4 cores) on a process-over-thread speedup below 2x
        "sharded": run_sharded_bench(),
    }
    if args.million:
        report["sharded_million"] = run_million_user_bench()
    if not quick:
        report["thread_sweep"] = run_thread_sweep()
    if not (quick or args.skip_backends):
        report["backend_sweep"] = run_backend_sweep()
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
