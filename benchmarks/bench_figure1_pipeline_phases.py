"""Figure 1 — the five-phase out-of-core KNN pipeline.

The paper's Figure 1 is the architecture diagram of one iteration:
1) KNN graph partitioning, 2) hash table, 3) PI graph, 4) KNN computation,
5) profile update.  This benchmark runs the full engine on a synthetic
recommender workload and reports how wall-clock time and operation counts
split across those phases, demonstrating that every phase is exercised.

Run with:  pytest benchmarks/bench_figure1_pipeline_phases.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_pipeline_phase_breakdown
from repro.core.iteration import PHASE_NAMES


def test_figure1_phase_breakdown(benchmark, pedantic_kwargs):
    summary = benchmark.pedantic(
        run_pipeline_phase_breakdown,
        kwargs=dict(num_users=1500, k=10, num_partitions=6, num_iterations=2,
                    heuristic="degree-low-high", seed=11),
        **pedantic_kwargs,
    )

    phase_seconds = summary["phase_seconds"]
    benchmark.extra_info["phase_seconds"] = {k: round(v, 4) for k, v in phase_seconds.items()}
    benchmark.extra_info["total_load_unload_operations"] = summary[
        "total_load_unload_operations"]
    benchmark.extra_info["total_similarity_evaluations"] = summary[
        "total_similarity_evaluations"]

    # every one of the paper's five phases must have been executed and timed
    assert set(phase_seconds) == set(PHASE_NAMES)
    assert all(seconds >= 0.0 for seconds in phase_seconds.values())
    # phase 4 (similarity scoring) dominates the iteration, as in the paper's design
    assert phase_seconds["4-knn-computation"] == max(phase_seconds.values())
    assert summary["total_similarity_evaluations"] > 0


def test_figure1_per_iteration_accounting(benchmark, pedantic_kwargs):
    summary = benchmark.pedantic(
        run_pipeline_phase_breakdown,
        kwargs=dict(num_users=800, k=8, num_partitions=5, num_iterations=3, seed=13),
        **pedantic_kwargs,
    )
    iterations = summary["per_iteration"]
    assert len(iterations) == 3
    # the KNN graph stabilises, so later iterations generate no more candidate
    # tuples than a small multiple of the first iteration's count
    first = iterations[0]["num_candidate_tuples"]
    assert all(it["num_candidate_tuples"] <= 4 * first for it in iterations)
    assert all(it["load_unload_operations"] > 0 for it in iterations)
