"""Shared fixtures and knobs for the benchmark suite.

Every benchmark runs a deterministic workload exactly once per measurement
(``pedantic`` with one round): the quantities of interest are operation
counts and qualitative orderings, not micro-second timings, and the heavy
end-to-end runs would otherwise dominate wall-clock time.
"""

from __future__ import annotations

import pytest

#: Default arguments used by every benchmark's ``benchmark.pedantic`` call.
PEDANTIC_KWARGS = dict(rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def pedantic_kwargs():
    return dict(PEDANTIC_KWARGS)
