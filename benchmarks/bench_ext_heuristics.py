"""Ext-F (future work) — additional PI-graph traversal heuristics.

The paper's future work calls for "more heuristics for the PI graph
traversal".  This benchmark compares the paper's three heuristics with the
``greedy-resident`` extension (chain the next pivot through a partition
that is already resident) on two of the Table 1 datasets and on the
PI graph of a real engine iteration.

Run with:  pytest benchmarks/bench_ext_heuristics.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.graph.datasets import DATASETS
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import compare_heuristics
from repro.similarity.workloads import generate_dense_profiles

ALL_HEURISTICS = ("sequential", "degree-high-low", "degree-low-high", "greedy-resident")


@pytest.mark.parametrize("dataset", ("gen-rel", "gnutella"))
def test_extension_heuristic_on_datasets(benchmark, pedantic_kwargs, dataset):
    pi_graph = PIGraph.from_digraph(DATASETS[dataset].generate())

    results = benchmark.pedantic(
        compare_heuristics, args=(pi_graph, list(ALL_HEURISTICS)), **pedantic_kwargs)

    operations = {name: result.load_unload_operations for name, result in results.items()}
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["operations"] = operations
    # the extension must at least match the best paper heuristic
    best_paper = min(operations["degree-high-low"], operations["degree-low-high"])
    assert operations["greedy-resident"] <= best_paper
    assert operations["sequential"] >= best_paper


@pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
def test_heuristics_inside_full_engine(benchmark, pedantic_kwargs, heuristic):
    """Operation counts of each heuristic when driving a real engine iteration."""
    profiles = generate_dense_profiles(1200, dim=16, num_communities=8, seed=43)

    def run():
        config = EngineConfig(k=8, num_partitions=12, heuristic=heuristic, seed=43)
        with KNNEngine(profiles, config) as engine:
            return engine.run_iteration()

    result = benchmark.pedantic(run, **pedantic_kwargs)
    benchmark.extra_info["heuristic"] = heuristic
    benchmark.extra_info["load_unload_operations"] = result.load_unload_operations
    assert result.load_unload_operations == result.schedule.load_unload_operations
