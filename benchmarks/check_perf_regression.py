#!/usr/bin/env python
"""CI gate: compare a fresh perf-suite run against the committed trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_suite.py --quick --output /tmp/fresh.json
    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        --baseline BENCH_perf.json --fresh /tmp/fresh.json [--tolerance 0.20]

Fails (exit 1) when the fresh phase-4 wall-clock regresses more than
``tolerance`` (default 20%) against the committed ``BENCH_perf.json``, and
prints a behaviour warning when the graph fingerprint changed (a fingerprint
change is legitimate when an algorithmic PR intends it — the diff to the
committed baseline makes it explicit — so it warns rather than fails).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Key of the gated phase inside ``pipeline.phase_seconds``.
PHASE4_KEY = "4-knn-computation"


def compare_phase4(baseline: dict, fresh: dict, tolerance: float) -> "tuple[bool, str]":
    """Return ``(ok, message)`` for the phase-4 wall-clock comparison."""
    base_phase = baseline["pipeline"]["phase_seconds"][PHASE4_KEY]
    fresh_phase = fresh["pipeline"]["phase_seconds"][PHASE4_KEY]
    if base_phase <= 0:
        return True, f"baseline phase-4 time is {base_phase}s; nothing to gate"
    ratio = fresh_phase / base_phase
    message = (f"phase-4 wall-clock: baseline {base_phase:.4f}s, "
               f"fresh {fresh_phase:.4f}s ({ratio:.2f}x)")
    if ratio > 1.0 + tolerance:
        return False, message + f" — REGRESSION beyond {tolerance:.0%} tolerance"
    return True, message + " — within tolerance"


def compare_fingerprints(baseline: dict, fresh: dict) -> "tuple[bool, str]":
    """Return ``(same, message)`` for the behaviour fingerprint."""
    base_fp = baseline["pipeline"].get("graph_fingerprint")
    fresh_fp = fresh["pipeline"].get("graph_fingerprint")
    if base_fp == fresh_fp:
        return True, f"graph fingerprint unchanged ({str(base_fp)[:12]}…)"
    return False, (f"graph fingerprint CHANGED: {str(base_fp)[:12]}… → "
                   f"{str(fresh_fp)[:12]}… (behaviour differs from the baseline)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_perf.json")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated perf report")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional phase-4 slowdown (default 0.20)")
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    ok, message = compare_phase4(baseline, fresh, args.tolerance)
    print(message)
    same, fp_message = compare_fingerprints(baseline, fresh)
    print(("" if same else "WARNING: ") + fp_message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
