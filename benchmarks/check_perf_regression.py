#!/usr/bin/env python
"""CI gate: compare a fresh perf-suite run against the committed trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_suite.py --quick --output /tmp/fresh.json
    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        --baseline BENCH_perf.json --fresh /tmp/fresh.json [--tolerance 0.20]

Fails (exit 1) when the fresh phase-4 wall-clock of the pipeline bench — or
the combined phase-4 + phase-5 wall-clock of the update-heavy workload —
regresses more than ``tolerance`` (default 20%) against the baseline, and
prints a behaviour warning when the graph fingerprint changed (a fingerprint
change is legitimate when an algorithmic PR intends it — the diff to the
committed baseline makes it explicit — so it warns rather than fails).
Baselines predating the update workload simply skip that gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Key of the gated phase inside ``pipeline.phase_seconds``.
PHASE4_KEY = "4-knn-computation"


def compare_phase4(baseline: dict, fresh: dict, tolerance: float) -> "tuple[bool, str]":
    """Return ``(ok, message)`` for the phase-4 wall-clock comparison."""
    base_phase = baseline["pipeline"]["phase_seconds"][PHASE4_KEY]
    fresh_phase = fresh["pipeline"]["phase_seconds"][PHASE4_KEY]
    if base_phase <= 0:
        return True, f"baseline phase-4 time is {base_phase}s; nothing to gate"
    ratio = fresh_phase / base_phase
    message = (f"phase-4 wall-clock: baseline {base_phase:.4f}s, "
               f"fresh {fresh_phase:.4f}s ({ratio:.2f}x)")
    if ratio > 1.0 + tolerance:
        return False, message + f" — REGRESSION beyond {tolerance:.0%} tolerance"
    return True, message + " — within tolerance"


def compare_phase45(baseline: dict, fresh: dict, tolerance: float) -> "tuple[bool, str]":
    """Phase-4+5 gate over the update-heavy workload (skipped on old baselines)."""
    base_section = baseline.get("update_workload")
    fresh_section = fresh.get("update_workload")
    if not fresh_section:
        # HEAD's suite always emits the section; losing it means the bench
        # itself broke, which must not read as a silent pass
        return False, ("update_workload section missing from the FRESH report "
                       "— run_perf_suite no longer emits the phase-4+5 bench")
    if "phase45_seconds" not in fresh_section:
        return False, ("phase45_seconds missing from the FRESH update_workload "
                       "section — run_perf_suite no longer records the gated value")
    if not base_section:
        return True, ("phase-4+5 update-workload gate skipped "
                      "(baseline predates the bench)")
    base_value = base_section.get("phase45_seconds", 0.0)
    fresh_value = fresh_section["phase45_seconds"]
    if base_value <= 0:
        return True, f"baseline phase-4+5 time is {base_value}s; nothing to gate"
    ratio = fresh_value / base_value
    message = (f"update-workload phase-4+5 wall-clock: baseline {base_value:.4f}s, "
               f"fresh {fresh_value:.4f}s ({ratio:.2f}x)")
    if ratio > 1.0 + tolerance:
        return False, message + f" — REGRESSION beyond {tolerance:.0%} tolerance"
    return True, message + " — within tolerance"


def compare_fingerprints(baseline: dict, fresh: dict) -> "tuple[bool, str]":
    """Return ``(same, message)`` for the behaviour fingerprint."""
    base_fp = baseline["pipeline"].get("graph_fingerprint")
    fresh_fp = fresh["pipeline"].get("graph_fingerprint")
    if base_fp == fresh_fp:
        return True, f"graph fingerprint unchanged ({str(base_fp)[:12]}…)"
    return False, (f"graph fingerprint CHANGED: {str(base_fp)[:12]}… → "
                   f"{str(fresh_fp)[:12]}… (behaviour differs from the baseline)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_perf.json")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated perf report")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional phase-4 slowdown (default 0.20)")
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    ok, message = compare_phase4(baseline, fresh, args.tolerance)
    print(message)
    ok45, message45 = compare_phase45(baseline, fresh, args.tolerance)
    print(message45)
    same, fp_message = compare_fingerprints(baseline, fresh)
    print(("" if same else "WARNING: ") + fp_message)
    return 0 if (ok and ok45) else 1


if __name__ == "__main__":
    sys.exit(main())
