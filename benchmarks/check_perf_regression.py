#!/usr/bin/env python
"""CI gate: compare a fresh perf-suite run against the committed trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_suite.py --quick --output /tmp/fresh.json
    PYTHONPATH=src python benchmarks/check_perf_regression.py \
        --baseline BENCH_perf.json --fresh /tmp/fresh.json [--tolerance 0.20]

Fails (exit 1) when the fresh phase-4 wall-clock of the pipeline bench — or
the combined phase-4 + phase-5 wall-clock of the update-heavy workload —
regresses more than ``tolerance`` (default 20%) against the baseline, or
when the update workload's incremental-phase-4 run no longer produces the
same fingerprint as its full-rescore run (the score cache must be
bit-transparent), or when the resume bench reports that
``KNNEngine.from_checkpoint`` materialised a profile copy instead of
hard-linking the snapshot (or resumed to a diverging fingerprint), or when
the resume peak-RSS delta grows beyond the baseline's ratio-plus-slack
limit (resume must stay O(partition) memory), or when the serving load
bench records any failed read, an unproven snapshot-isolation verdict, or
a burst phase that shed nothing, or when
the dirty-scheduling bench reports a dirty-vs-full fingerprint or
profile-byte divergence — or a steady-state skip rate below 60% — or when
the sharded bench reports a sharded-vs-unsharded fingerprint or
profile-byte divergence, a worker breaking its per-worker memory budget,
or (on machines with ≥4 cores) a process-over-thread phase-4 speedup
below 2x; smaller machines skip the speedup clause with an explicit
message because a 1-core process pool measures overhead, not
parallelism.  It prints a behaviour warning when the graph fingerprint
changed between baseline and fresh (a fingerprint change is legitimate when
an algorithmic PR intends it — the diff to the committed baseline makes it
explicit — so it warns rather than fails).  Baselines predating the update
workload simply skip that gate.

Backend-sweep rows are compared per ``(num_users, backend, workers)`` when
both reports carry the sweep; **multi-worker rows (process and thread
pools) are skipped when the two reports' ``cpu_count`` differ** — a 1-core
container can only measure a parallel backend's overhead, so comparing it
against a multi-core baseline (or vice versa) would mask or fake the ≥2x
multicore target.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Key of the gated phase inside ``pipeline.phase_seconds``.
PHASE4_KEY = "4-knn-computation"


def compare_phase4(baseline: dict, fresh: dict, tolerance: float) -> "tuple[bool, str]":
    """Return ``(ok, message)`` for the phase-4 wall-clock comparison."""
    base_phase = baseline["pipeline"]["phase_seconds"][PHASE4_KEY]
    fresh_phase = fresh["pipeline"]["phase_seconds"][PHASE4_KEY]
    if base_phase <= 0:
        return True, f"baseline phase-4 time is {base_phase}s; nothing to gate"
    ratio = fresh_phase / base_phase
    message = (f"phase-4 wall-clock: baseline {base_phase:.4f}s, "
               f"fresh {fresh_phase:.4f}s ({ratio:.2f}x)")
    if ratio > 1.0 + tolerance:
        return False, message + f" — REGRESSION beyond {tolerance:.0%} tolerance"
    return True, message + " — within tolerance"


def compare_phase45(baseline: dict, fresh: dict, tolerance: float) -> "tuple[bool, str]":
    """Phase-4+5 gate over the update-heavy workload (skipped on old baselines)."""
    base_section = baseline.get("update_workload")
    fresh_section = fresh.get("update_workload")
    if not fresh_section:
        # HEAD's suite always emits the section; losing it means the bench
        # itself broke, which must not read as a silent pass
        return False, ("update_workload section missing from the FRESH report "
                       "— run_perf_suite no longer emits the phase-4+5 bench")
    if "phase45_seconds" not in fresh_section:
        return False, ("phase45_seconds missing from the FRESH update_workload "
                       "section — run_perf_suite no longer records the gated value")
    if not base_section:
        return True, ("phase-4+5 update-workload gate skipped "
                      "(baseline predates the bench)")
    base_value = base_section.get("phase45_seconds", 0.0)
    fresh_value = fresh_section["phase45_seconds"]
    if base_value <= 0:
        return True, f"baseline phase-4+5 time is {base_value}s; nothing to gate"
    ratio = fresh_value / base_value
    message = (f"update-workload phase-4+5 wall-clock: baseline {base_value:.4f}s, "
               f"fresh {fresh_value:.4f}s ({ratio:.2f}x)")
    if ratio > 1.0 + tolerance:
        return False, message + f" — REGRESSION beyond {tolerance:.0%} tolerance"
    return True, message + " — within tolerance"


def compare_phase24(baseline: dict, fresh: dict, tolerance: float) -> "tuple[bool, str]":
    """Combined phase-2 + phase-4 gate over the update-heavy workload.

    Phase 2 (bridge-tuple generation) rivals the amortised phase 4 on
    sparse workloads, so the two are gated together; skipped on baselines
    predating the combined record.
    """
    base_value = (baseline.get("update_workload") or {}).get("phase24_seconds")
    fresh_value = (fresh.get("update_workload") or {}).get("phase24_seconds")
    if fresh_value is None:
        return True, ("phase-2+4 update-workload gate skipped "
                      "(fresh report predates the combined record)")
    if base_value is None:
        return True, ("phase-2+4 update-workload gate skipped "
                      "(baseline predates the combined record)")
    if base_value <= 0:
        return True, f"baseline phase-2+4 time is {base_value}s; nothing to gate"
    ratio = fresh_value / base_value
    message = (f"update-workload phase-2+4 wall-clock: baseline {base_value:.4f}s, "
               f"fresh {fresh_value:.4f}s ({ratio:.2f}x)")
    if ratio > 1.0 + tolerance:
        return False, message + f" — REGRESSION beyond {tolerance:.0%} tolerance"
    return True, message + " — within tolerance"


def compare_incremental_parity(fresh: dict) -> "tuple[bool, str]":
    """Fail when the fresh incremental run diverges from its full-rescore run.

    The phase-4 score cache promises bit-identical graphs; the suite runs
    the update workload with the cache on and off and records whether the
    fingerprints agree.  Reports predating the incremental bench skip.
    """
    section = fresh.get("update_workload") or {}
    verdict = section.get("incremental_fingerprints_match")
    if verdict is None:
        return True, ("incremental-vs-full parity gate skipped "
                      "(report predates the incremental phase-4 bench)")
    if verdict:
        return True, "incremental phase-4 fingerprints match the full rescore"
    return False, ("incremental phase-4 fingerprints DIVERGE from the full "
                   "rescore — the score cache changed a result bit")


def compare_resume(fresh: dict) -> "tuple[bool, str]":
    """Gate the zero-copy resume path (fresh report only, like parity).

    Fails when the resume bench materialised a full profile copy (bytes
    eligible for hard-linking were copied instead — the zero-copy property
    regressed) or when the resumed run's fingerprint diverged from the
    uninterrupted run.  The fresh suite must emit the section; losing it
    would silently un-gate the path.
    """
    section = fresh.get("resume")
    if section is None:
        return False, ("resume section missing from the FRESH report — "
                       "run_perf_suite no longer measures the resume path")
    if section.get("full_profile_copy"):
        return False, (
            f"resume MATERIALISED a profile copy: {section.get('linked_bytes', 0)}"
            f" of {section.get('linkable_bytes', 0)} linkable bytes were "
            "hard-linked (the rest were copied) — the zero-copy resume regressed")
    if not section.get("resumed_fingerprint_matches", False):
        return False, ("resumed-run fingerprint DIVERGES from the "
                       "uninterrupted run — the resume path changed a result bit")
    return True, (
        f"zero-copy resume ok: {section.get('linked_files', 0)} files "
        f"({section.get('linked_bytes', 0)} bytes) hard-linked, "
        f"{section.get('copied_bytes', 0)} mutable bytes copied, "
        f"resume {section.get('resume_seconds', 0.0):.4f}s, "
        f"peak-RSS delta {section.get('peak_rss_kb_delta', 0)} KB, "
        "fingerprint matches")


def compare_recovery(fresh: dict) -> "tuple[bool, str]":
    """Gate the crash-recovery path (fresh report only, like resume).

    Fails when the recovery bench's recovered run diverged from the
    uninterrupted fingerprint, or when the section disappears from the
    fresh report (the bench breaking must not read as a pass).  The
    recovery wall-clock and WAL replay count are trajectory records, not
    gated values — recovery is a cold path dominated by checksum reads.
    """
    section = fresh.get("recovery")
    if section is None:
        return False, ("recovery section missing from the FRESH report — "
                       "run_perf_suite no longer measures crash recovery")
    if not section.get("recovered_fingerprint_matches", False):
        return False, ("recovered-run fingerprint DIVERGES from the "
                       "uninterrupted run — crash recovery lost or "
                       "double-applied state")
    return True, (
        f"crash recovery ok: recovered in "
        f"{section.get('recover_seconds', 0.0):.4f}s, "
        f"{section.get('wal_replayed', 0)} WAL records replayed, "
        "fingerprint matches")


#: Absolute slack (KB) on top of the resume peak-RSS ratio gate.  The
#: delta is the forked bench child's high-water mark minus the parent's
#: fork-time RSS, which wobbles by tens of MB run-to-run (allocator, CoW
#: sharing, parent state at fork) — so the gate is a coarse *explosion*
#: detector; the precise zero-copy gate is the byte-level accounting in
#: ``compare_resume`` (``full_profile_copy``).
RESUME_RSS_SLACK_KB = 131072

#: Allowed fractional growth of the resume peak-RSS delta (looser than the
#: wall-clock tolerance for the same noise reason).
RESUME_RSS_TOLERANCE = 0.5


def compare_resume_rss(baseline: dict, fresh: dict) -> "tuple[bool, str]":
    """Gate the resume bench's peak-RSS delta against the baseline.

    ``KNNEngine.from_checkpoint`` promises O(partition) memory — resuming
    must not page the whole profile store in.  A fresh delta beyond
    ``baseline * (1 + RESUME_RSS_TOLERANCE) + RESUME_RSS_SLACK_KB`` fails:
    generous enough for the measurement's inherent noise (see
    ``RESUME_RSS_SLACK_KB``), tight enough to flag resume regressing to
    O(store) allocations on the bench tiers above it.  Baselines
    predating the record skip; a fresh report without it fails (the bench
    silently dropping the measurement must not read as a pass).
    """
    fresh_value = (fresh.get("resume") or {}).get("peak_rss_kb_delta")
    if fresh_value is None:
        return False, ("resume.peak_rss_kb_delta missing from the FRESH "
                       "report — run_perf_suite no longer measures resume "
                       "memory")
    base_value = (baseline.get("resume") or {}).get("peak_rss_kb_delta")
    if base_value is None:
        return True, ("resume peak-RSS gate skipped "
                      "(baseline predates the record)")
    limit = base_value * (1.0 + RESUME_RSS_TOLERANCE) + RESUME_RSS_SLACK_KB
    message = (f"resume peak-RSS delta: baseline {base_value} KB, "
               f"fresh {fresh_value} KB (limit {limit:.0f} KB)")
    if fresh_value > limit:
        return False, message + (" — REGRESSION: resume materialises far "
                                 "more memory than the baseline")
    return True, message + " — within limit"


def compare_serving(fresh: dict) -> "tuple[bool, str]":
    """Gate the serving load bench (fresh report only, like resume).

    Fails when any simulated client's read failed under load, when the
    snapshot-isolation proof did not hold (reads must land while a refresh
    iteration is in flight with a p99 far below the fastest refresh
    cycle — asserted, not assumed), when the burst phase failed to shed
    load (admission control queueing unboundedly), or when the section
    disappears from the fresh report.  The p99 latencies are trajectory
    records, not gated values.
    """
    section = fresh.get("serving")
    if section is None:
        return False, ("serving section missing from the FRESH report — "
                       "run_perf_suite no longer measures the serving "
                       "runtime under load")
    failures = section.get("query_failures", -1)
    if failures != 0:
        return False, (f"serving bench recorded {failures} failed reads "
                       "under load — the availability SLO broke")
    if not section.get("snapshot_isolation_proven", False):
        return False, (
            "serving snapshot isolation UNPROVEN: "
            f"{section.get('queries_during_refresh', 0)} reads mid-refresh, "
            f"worst p99 {max(section.get('p99_sustained_seconds', 0.0), section.get('p99_burst_seconds', 0.0)):.6f}s "
            f"vs fastest refresh {section.get('min_refresh_seconds')}s — "
            "reads may be blocking on in-flight iterations")
    if section.get("burst_shed_changes", 0) <= 0:
        return False, ("serving burst phase shed nothing — admission "
                       "control no longer bounds the update backlog")
    return True, (
        f"serving ok: {section.get('queries', 0)} reads, 0 failed, "
        f"{section.get('queries_during_refresh', 0)} answered mid-refresh, "
        f"p99 {section.get('p99_sustained_seconds', 0.0) * 1e6:.0f}µs sustained / "
        f"{section.get('p99_burst_seconds', 0.0) * 1e6:.0f}µs burst vs "
        f"{section.get('min_refresh_seconds')}s fastest refresh, "
        f"{section.get('burst_shed_changes', 0)} changes shed under burst")


#: Floor on the dirty-scheduling bench's worst-backend skip rate.
MIN_SKIP_RATE = 0.6


def compare_dirty_scheduling(fresh: dict) -> "tuple[bool, str]":
    """Gate the dirty-partition scheduling path (fresh report only).

    Fails when a dirty-scheduled run's final graph fingerprint or final
    profile bytes diverge from the full-schedule reference on any backend
    (skipping a residency step must never change a result bit), when the
    steady-state skip rate drops below ``MIN_SKIP_RATE`` on any backend,
    or when the section disappears from the fresh report — the bench
    breaking must not read as a silent pass.
    """
    section = fresh.get("dirty_scheduling")
    if section is None:
        return False, ("dirty_scheduling section missing from the FRESH "
                       "report — run_perf_suite no longer measures the "
                       "dirty-vs-full schedule parity")
    if not section.get("fingerprints_match", False):
        return False, ("dirty-scheduled fingerprints DIVERGE from the full "
                       "schedule — skipping a residency step changed a "
                       "result bit")
    if not section.get("profiles_match", False):
        return False, ("dirty-scheduled final profile bytes DIVERGE from "
                       "the full schedule — phase 5 applied different "
                       "updates under skipping")
    skip_rate = section.get("min_skip_rate")
    if skip_rate is None or skip_rate < MIN_SKIP_RATE:
        return False, (f"dirty-scheduling skip rate {skip_rate} fell below "
                       f"{MIN_SKIP_RATE:.0%} — the steady-state drift "
                       "workload no longer skips clean residency steps")
    return True, (
        f"dirty scheduling ok: worst-backend skip rate {skip_rate:.0%}, "
        f"drift-window phase 4 {section.get('phase4_seconds_dirty', 0.0):.4f}s "
        f"vs full {section.get('phase4_seconds_full', 0.0):.4f}s, "
        "fingerprints and profile bytes match on every backend")


#: Minimum process-over-thread phase-4 speedup required from the sharded
#: bench when the fresh run had real cores to parallelise across.  Below
#: four cores a process pool mostly measures fork/pickle overhead, so the
#: speedup clause skips honestly (reported, not silently dropped) — the
#: parity and budget clauses still gate unconditionally.
SHARDED_MIN_SPEEDUP = 2.0
SHARDED_SPEEDUP_MIN_CPUS = 4


def compare_sharded(fresh: dict) -> "tuple[bool, str]":
    """Gate the shard-parallel execution path (fresh report only).

    Fails when any sharded backend's final graph fingerprint or final
    profile bytes diverge from the unsharded reference (shard-parallel
    execution must be bit-transparent), when any worker's peak resident
    bytes exceeded the per-worker memory budget, or when the section
    disappears from the fresh report — the bench breaking must not read
    as a silent pass.  The process-over-thread speedup is gated at
    ``SHARDED_MIN_SPEEDUP`` only when the fresh run saw at least
    ``SHARDED_SPEEDUP_MIN_CPUS`` cores; on smaller machines the clause
    skips with an explicit message rather than faking a multicore
    verdict.  The optional ``sharded_million`` tier (``--million`` runs)
    is checked when present: its worker residency must stay within the
    budget carved out of the 1M-user store.
    """
    section = fresh.get("sharded")
    if section is None:
        return False, ("sharded section missing from the FRESH report — "
                       "run_perf_suite no longer measures shard-parallel "
                       "parity")
    if not section.get("fingerprints_match", False):
        return False, ("sharded fingerprints DIVERGE from the unsharded "
                       "reference — shard-parallel execution changed a "
                       "result bit")
    if not section.get("profiles_match", False):
        return False, ("sharded final profile bytes DIVERGE from the "
                       "unsharded reference — phase 5 applied different "
                       "updates under sharding")
    if not section.get("within_budget", False):
        return False, ("sharded worker residency exceeded the per-worker "
                       "memory budget — shard execution no longer bounds "
                       "resident profile bytes")
    million = fresh.get("sharded_million")
    million_note = ""
    if million is not None:
        if not million.get("within_budget", False):
            return False, (
                f"1M-user tier worker residency "
                f"{million.get('peak_worker_bytes')} bytes broke its "
                f"{million.get('worker_budget_bytes')}-byte budget — the "
                "sharded path no longer scales out-of-core")
        million_note = (
            f"; 1M-user tier ok (peak worker "
            f"{million.get('peak_worker_bytes')} of "
            f"{million.get('worker_budget_bytes')} budget bytes, "
            f"phase 4 {million.get('phase4_seconds', 0.0):.1f}s)")
    cpus = fresh.get("cpu_count") or section.get("cpu_count") or 0
    speedup = section.get("process_speedup_over_thread")
    if cpus >= SHARDED_SPEEDUP_MIN_CPUS:
        if speedup is None or speedup < SHARDED_MIN_SPEEDUP:
            return False, (
                f"sharded process-over-thread speedup {speedup} fell below "
                f"{SHARDED_MIN_SPEEDUP}x on a {cpus}-core machine — the "
                "process backend no longer beats the GIL")
        speedup_note = f"process {speedup:.2f}x over thread on {cpus} cores"
    else:
        speedup_note = (
            f"speedup clause skipped honestly (cpu_count={cpus} < "
            f"{SHARDED_SPEEDUP_MIN_CPUS}; measured {speedup}x is overhead, "
            "not parallelism)")
    return True, (
        "sharded ok: fingerprints and profile bytes bit-identical on "
        "serial/thread/process, worker residency within budget, "
        + speedup_note + million_note)


def compare_backend_sweep(baseline: dict, fresh: dict,
                          tolerance: float) -> "tuple[bool, list]":
    """Per-row backend-sweep gate, cpu-count-aware for parallel rows.

    Serial rows regress like any other timing.  Multi-worker rows — the
    process pool *and* GIL-releasing thread pools alike — only mean
    something when both runs saw the same core count: on mismatch the row
    is skipped (reported, not silently dropped), because a 1-core run's
    parallel timings measure overhead, not speedup.  Reports without a
    sweep (``--quick`` runs) skip entirely.
    """
    base_rows = baseline.get("backend_sweep")
    fresh_rows = fresh.get("backend_sweep")
    if not base_rows or not fresh_rows:
        return True, ["backend-sweep gate skipped (no sweep in one of the reports)"]
    base_cpu = baseline.get("cpu_count")
    fresh_cpu = fresh.get("cpu_count")
    base_by_key = {(row["num_users"], row["backend"], row["workers"]): row
                   for row in base_rows}
    ok = True
    messages = []
    for row in fresh_rows:
        key = (row["num_users"], row["backend"], row["workers"])
        base_row = base_by_key.get(key)
        if base_row is None:
            continue
        label = f"{key[1]} x{key[2]} @ {key[0]} users"
        parallel_row = row["backend"] != "serial" and row["workers"] > 1
        if parallel_row and base_cpu != fresh_cpu:
            messages.append(
                f"backend-sweep {label}: skipped (baseline cpu_count="
                f"{base_cpu}, fresh cpu_count={fresh_cpu})")
            continue
        base_value = base_row.get("phase4_seconds", 0.0)
        if not base_value or base_value <= 0:
            continue
        ratio = row["phase4_seconds"] / base_value
        message = (f"backend-sweep {label}: baseline {base_value:.4f}s, "
                   f"fresh {row['phase4_seconds']:.4f}s ({ratio:.2f}x)")
        if ratio > 1.0 + tolerance:
            ok = False
            message += f" — REGRESSION beyond {tolerance:.0%} tolerance"
        messages.append(message)
    return ok, messages


def compare_fingerprints(baseline: dict, fresh: dict) -> "tuple[bool, str]":
    """Return ``(same, message)`` for the behaviour fingerprint."""
    base_fp = baseline["pipeline"].get("graph_fingerprint")
    fresh_fp = fresh["pipeline"].get("graph_fingerprint")
    if base_fp == fresh_fp:
        return True, f"graph fingerprint unchanged ({str(base_fp)[:12]}…)"
    return False, (f"graph fingerprint CHANGED: {str(base_fp)[:12]}… → "
                   f"{str(fresh_fp)[:12]}… (behaviour differs from the baseline)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_perf.json")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated perf report")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional phase-4 slowdown (default 0.20)")
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    ok, message = compare_phase4(baseline, fresh, args.tolerance)
    print(message)
    ok45, message45 = compare_phase45(baseline, fresh, args.tolerance)
    print(message45)
    ok24, message24 = compare_phase24(baseline, fresh, args.tolerance)
    print(message24)
    ok_parity, parity_message = compare_incremental_parity(fresh)
    print(parity_message)
    ok_resume, resume_message = compare_resume(fresh)
    print(resume_message)
    ok_rss, rss_message = compare_resume_rss(baseline, fresh)
    print(rss_message)
    ok_serving, serving_message = compare_serving(fresh)
    print(serving_message)
    ok_recovery, recovery_message = compare_recovery(fresh)
    print(recovery_message)
    ok_dirty, dirty_message = compare_dirty_scheduling(fresh)
    print(dirty_message)
    ok_sharded, sharded_message = compare_sharded(fresh)
    print(sharded_message)
    ok_sweep, sweep_messages = compare_backend_sweep(baseline, fresh,
                                                     args.tolerance)
    for sweep_message in sweep_messages:
        print(sweep_message)
    same, fp_message = compare_fingerprints(baseline, fresh)
    print(("" if same else "WARNING: ") + fp_message)
    return 0 if (ok and ok45 and ok24 and ok_parity and ok_resume
                 and ok_rss and ok_serving and ok_recovery and ok_dirty
                 and ok_sharded and ok_sweep) else 1


if __name__ == "__main__":
    sys.exit(main())
