#!/usr/bin/env python
"""Quickstart: build a KNN graph out-of-core with the five-phase engine.

This is the smallest end-to-end use of the public API:

1. generate (or load) user profiles,
2. configure the engine (K, number of partitions, traversal heuristic),
3. run a few iterations,
4. read neighbours off the resulting KNN graph and check quality against
   the exact brute-force answer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EngineConfig, KNNEngine
from repro.baselines.brute_force import brute_force_knn
from repro.similarity.workloads import generate_dense_profiles
from repro.utils.logging import enable_console_logging


def main() -> None:
    enable_console_logging()

    # 1. A synthetic workload: 2 000 users, 16-dimensional taste vectors with
    #    8 planted communities (so there is real neighbourhood structure).
    profiles = generate_dense_profiles(num_users=2000, dim=16,
                                       num_communities=8, noise=0.25, seed=1)

    # 2. Engine configuration: K=10 neighbours, 8 on-disk partitions, at most
    #    two partitions resident (the paper's memory constraint), and the
    #    degree-based low-to-high PI-graph traversal heuristic.
    #
    #    Phase-4 scoring is parallelisable via two knobs (all backends
    #    produce bit-identical graphs):
    #      backend="thread",  num_threads=4  — thread pool (kernels drop the GIL)
    #      backend="process", num_workers=4  — process pool; workers re-open the
    #                                          profile store read-only by path and
    #                                          score against zero-copy mmap slices
    #
    #    For a crash-safe deployment add durable=True (+ a workdir): every
    #    iteration commits atomically and streamed profile updates land in a
    #    write-ahead log, so a killed run resumes bit-identically via
    #    KNNEngine.recover(workdir).  See docs/robustness.md.  For an
    #    always-on deployment — snapshot-isolated queries + streaming
    #    updates around this same engine — see examples/serving.py and
    #    docs/serving.md.
    config = EngineConfig(
        k=10,
        num_partitions=8,
        partitioner="contiguous",
        heuristic="degree-low-high",
        disk_model="ssd",
        backend="thread",
        num_threads=1,
        seed=1,
    )

    # 3. Run five iterations (or stop early once fewer than 1% of KNN edges change).
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=5, convergence_threshold=0.01)

        print("\n=== run summary ===")
        print(f"iterations run           : {run.num_iterations}")
        print(f"converged                : {run.convergence.converged}")
        print(f"similarity evaluations   : {run.total_similarity_evaluations}")
        print(f"partition load/unload ops: {run.total_load_unload_operations}")
        print(f"simulated disk time      : {run.total_io.simulated_io_seconds:.3f}s")
        print("\nper-phase wall-clock time:")
        print(run.total_phases.format_table())

        # 4. Use the result: the 10 most similar users of user 0, best first.
        graph = run.final_graph
        print(f"\nKNN of user 0: {graph.neighbors(0)}")

    # Quality check against the exact answer (feasible at this small scale).
    exact = brute_force_knn(profiles, k=10, measure="cosine")
    recall = graph.recall_against(exact)
    print(f"recall against brute force: {recall:.3f}")


if __name__ == "__main__":
    main()
