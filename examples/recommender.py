#!/usr/bin/env python
"""Item recommendation from an out-of-core KNN graph.

The paper motivates KNN with recommender systems: once each user's K most
similar users are known, items can be recommended by aggregating what those
neighbours consumed.  This example builds the KNN graph with the out-of-core
engine over *sparse* item-set profiles (Jaccard similarity) and then produces
top-N item recommendations for a few users, excluding items they already have.

It also contrasts the engine against NN-Descent (the in-memory baseline the
paper cites) on quality and similarity-evaluation cost.

Run with:  python examples/recommender.py
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro import EngineConfig, KNNEngine
from repro.baselines.brute_force import brute_force_knn
from repro.baselines.nn_descent import NNDescent
from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import SparseProfileStore
from repro.similarity.workloads import generate_sparse_profiles

NUM_USERS = 1500
NUM_ITEMS = 5000
K = 10
TOP_N = 5


def recommend(graph: KNNGraph, profiles: SparseProfileStore,
              user: int, top_n: int = TOP_N) -> List[int]:
    """Recommend items consumed by the user's KNN, weighted by similarity rank."""
    own_items = profiles.get(user)
    votes: Counter = Counter()
    for rank, neighbor in enumerate(graph.neighbors(user)):
        weight = graph.k - rank                     # closer neighbours count more
        for item in profiles.get(neighbor):
            if item not in own_items:
                votes[item] += weight
    return [item for item, _ in votes.most_common(top_n)]


def main() -> None:
    print(f"generating {NUM_USERS} users over a {NUM_ITEMS}-item catalogue ...")
    profiles = generate_sparse_profiles(NUM_USERS, NUM_ITEMS, items_per_user=30,
                                        num_communities=10, seed=2)

    config = EngineConfig(
        k=K,
        num_partitions=10,
        partitioner="greedy-locality",      # the paper's locality objective
        heuristic="degree-low-high",
        measure="jaccard",
        seed=2,
        # the evaluation counts below are compared against NN-Descent and
        # brute force, which have no score cache; count every candidate
        # pair the way the paper does (see examples/dynamic_profiles.py
        # for the cache's rescored/reused accounting instead)
        incremental_phase4=False,
    )
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=6, convergence_threshold=0.02)
    graph = run.final_graph

    print(f"\nengine finished in {run.num_iterations} iterations, "
          f"{run.total_similarity_evaluations} similarity evaluations, "
          f"{run.total_load_unload_operations} partition load/unload operations")

    print(f"\ntop-{TOP_N} recommendations:")
    for user in (0, 1, 2, 42, 777):
        items = recommend(graph, profiles, user)
        print(f"  user {user:>4}: {items}")

    # --- quality and cost vs the baselines -------------------------------
    print("\ncomparing against baselines (this computes an exact KNN graph) ...")
    exact = brute_force_knn(profiles, K, measure="jaccard")
    descent = NNDescent(k=K, measure="jaccard", seed=2).run(profiles)

    total_pairs = NUM_USERS * (NUM_USERS - 1)
    print(f"{'method':<22} {'recall':>8} {'similarity evals':>18}")
    print(f"{'out-of-core engine':<22} {graph.recall_against(exact):>8.3f} "
          f"{run.total_similarity_evaluations:>18}")
    print(f"{'NN-Descent':<22} {descent.graph.recall_against(exact):>8.3f} "
          f"{descent.similarity_evaluations:>18}")
    print(f"{'brute force':<22} {1.0:>8.3f} {total_pairs:>18}")


if __name__ == "__main__":
    main()
