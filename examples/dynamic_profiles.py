#!/usr/bin/env python
"""Dynamic profiles: KNN computation while user profiles keep changing.

The paper's key departure from GraphChi/X-Stream is that both the graph
*and* the user profiles change during the computation.  Profile changes that
arrive during iteration ``t`` are buffered in a queue and applied lazily at
the end of the iteration (phase 5), producing ``P(t+1)``.

This example simulates a stream of profile churn (users consuming new items
and dropping old ones every iteration), feeds it to the engine through the
update queue, and shows that

* the queued changes are applied exactly at iteration boundaries,
* the KNN graph keeps improving against the *current* ground truth even
  though the target is moving,
* phase 5 is *incremental*: the segmented on-disk layout writes only the
  touched rows' journal entries each iteration (watch the ``p5 bytes``
  column stay orders of magnitude below the store size), bumping the store
  generation that keeps long-lived scoring workers cache-coherent, and
* phase 4 is *incremental* too: candidate tuples whose endpoints did not
  change since the last scored generation reuse their cached similarity
  verbatim — the ``rescored`` column (kernel work) shrinks towards the
  churn-touched tuples while ``reused`` grows, with bit-identical graphs.

Run with:  python examples/dynamic_profiles.py
"""

from __future__ import annotations

from repro import EngineConfig, KNNEngine
from repro.baselines.brute_force import brute_force_knn
from repro.similarity.workloads import generate_profile_churn, generate_sparse_profiles

NUM_USERS = 800
NUM_ITEMS = 3000
K = 8
ITERATIONS = 6
CHURN_FRACTION = 0.05          # 5% of users change their profile every iteration


def main() -> None:
    profiles = generate_sparse_profiles(NUM_USERS, NUM_ITEMS, items_per_user=25,
                                        num_communities=8, seed=3)
    config = EngineConfig(k=K, num_partitions=8, heuristic="degree-low-high",
                          measure="jaccard", seed=3)

    print(f"{'iter':>4} {'queued':>7} {'applied':>8} {'changed edges':>14} "
          f"{'rescored':>9} {'reused':>7} {'p5 (s)':>8} {'p5 bytes':>9} "
          f"{'gen':>4} {'recall (current truth)':>24}")

    with KNNEngine(profiles, config) as engine:
        previous_graph = engine.graph.copy()
        for iteration in range(ITERATIONS):
            # profile churn arriving *during* the iteration: buffered, not applied
            churn = generate_profile_churn(engine.profile_store.load_all(),
                                           change_fraction=CHURN_FRACTION,
                                           num_items=NUM_ITEMS, seed=100 + iteration)
            engine.enqueue_profile_changes(churn)

            result = engine.run_iteration()

            # ground truth against the *updated* profiles the next iteration will see
            current_profiles = engine.profile_store.load_all()
            exact = brute_force_knn(current_profiles, K, measure="jaccard")
            recall = result.graph.recall_against(exact)
            changed = result.graph.edge_difference(previous_graph)
            previous_graph = result.graph.copy()

            phase5_seconds = result.phase_timer.as_dict()["5-profile-update"]
            # write side of the profile store's I/O = this iteration's
            # incremental journal append (iteration 0 includes the initial
            # store write, so read the scaling from iterations 1+)
            phase5_bytes = result.profile_io_stats.bytes_written
            print(f"{iteration:>4} {len(churn):>7} {result.profile_updates_applied:>8} "
                  f"{changed:>14} {result.rescored_tuples:>9} "
                  f"{result.reused_scores:>7} {phase5_seconds:>8.4f} "
                  f"{phase5_bytes:>9} {engine.profile_store.generation:>4} "
                  f"{recall:>24.3f}")

    print("\nThe recall climbs despite the moving target: the lazily-applied")
    print("profile updates keep each iteration consistent (it always sees the")
    print("profile snapshot P(t)), exactly as the paper's phase 5 prescribes.")
    print("And applying them stays cheap: each batch journals only the touched")
    print("rows of the segmented store (p5 bytes ≪ store size) and bumps the")
    print("generation that keeps persistent scoring workers cache-coherent.")
    print("Scoring them stays cheap too: the rescored column is the kernel")
    print("work per iteration — tuples between unchanged profiles reuse last")
    print("generation's scores (reused column) with bit-identical results.")


if __name__ == "__main__":
    main()
