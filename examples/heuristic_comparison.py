#!/usr/bin/env python
"""Reproduce the paper's Table 1: PI-graph traversal heuristics.

For each of the six datasets the paper evaluates (regenerated here as
synthetic stand-ins with matching node/edge counts), this example counts the
partition load/unload operations required to parse the whole PI graph with

* the sequential heuristic,
* the degree-based high-to-low heuristic,
* the degree-based low-to-high heuristic, and
* the ``greedy-resident`` extension heuristic (this repo's addition,
  answering the paper's future-work call for better heuristics),

using a two-slot partition cache, and prints the paper's reported values for
side-by-side comparison.

Run with:  python examples/heuristic_comparison.py        (full table, ~1 min)
           python examples/heuristic_comparison.py quick  (two datasets only)
"""

from __future__ import annotations

import sys

from repro.bench.experiments import PAPER_TABLE1, run_table1
from repro.graph.datasets import DATASETS, TABLE1_ORDER

HEURISTICS = ("sequential", "degree-high-low", "degree-low-high", "greedy-resident")
PAPER_COLUMNS = ("sequential", "degree-high-low", "degree-low-high")


def main() -> None:
    quick = len(sys.argv) > 1 and sys.argv[1] == "quick"
    datasets = TABLE1_ORDER[:2] if quick else TABLE1_ORDER

    print("reproducing Table 1 (this generates each dataset and plans every traversal)\n")
    rows = run_table1(datasets=datasets, heuristics=HEURISTICS)

    header = (f"{'Dataset':<12} {'Nodes':>7} {'Edges':>8} "
              + " ".join(f"{name:>17}" for name in HEURISTICS))
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = " ".join(f"{row.operations[name]:>17}" for name in HEURISTICS)
        print(f"{row.display_name:<12} {row.num_nodes:>7} {row.num_edges:>8} {cells}")
        paper = PAPER_TABLE1[row.dataset]
        paper_cells = " ".join(f"{value:>17}" for value in paper) + f" {'—':>17}"
        print(f"{'  (paper)':<12} {'':>7} {'':>8} {paper_cells}")

    print("\nimprovement over the sequential heuristic (reproduced):")
    for row in rows:
        high_low = 100 * row.improvement_over_sequential("degree-high-low")
        low_high = 100 * row.improvement_over_sequential("degree-low-high")
        greedy = 100 * row.improvement_over_sequential("greedy-resident")
        print(f"  {row.display_name:<12} high-low {high_low:5.1f}%   "
              f"low-high {low_high:5.1f}%   greedy-resident {greedy:5.1f}%")

    print("\nThe paper reports 5-15% fewer load/unload operations for the degree-based")
    print("heuristics; the synthetic stand-ins show the same ordering (sequential worst,")
    print("low-high best of the paper's three) with improvements in the same range, and")
    print("the greedy-resident extension does at least as well as the best paper heuristic.")


if __name__ == "__main__":
    main()
