#!/usr/bin/env python
"""Always-on serving: queries and profile churn against one live runtime.

The batch engine (see ``quickstart.py``) computes a KNN graph and exits.
This demo runs the *service* built on top of it instead
(``repro.service.ServingRuntime``):

1. start the runtime — it seals the pre-iteration state as epoch 0 and is
   ready immediately, serving ``G(0)`` while the first refresh runs;
2. simulated clients: reader threads issue ``neighbors()`` queries in a
   closed loop while a writer streams profile-update batches through the
   bounded admission controller;
3. the supervised background loop folds accepted updates into new epochs
   and atomically swaps the serving snapshot — queries never block on an
   in-flight iteration (each phase report counts the reads answered
   *while* a refresh was running);
4. a graceful drain seals the final epoch so nothing accepted is lost.

Run with:  python examples/serving.py
"""

from __future__ import annotations

from random import Random

from repro import EngineConfig
from repro.service import LoadGenerator, ServingRuntime, dense_set_batch
from repro.similarity.workloads import generate_dense_profiles

NUM_USERS = 1000
DIM = 16
UPDATE_BATCH = 25


def main() -> None:
    profiles = generate_dense_profiles(num_users=NUM_USERS, dim=DIM,
                                       num_communities=8, noise=0.25, seed=1)
    config = EngineConfig(k=10, num_partitions=8, seed=1)

    # durable=True is implied: accepted updates are WAL-fsynced, every
    # served snapshot is a sealed checksummed epoch, and the whole service
    # can restart from disk with ServingRuntime.recover(workdir)
    with ServingRuntime(profiles, config, admission_capacity=2000,
                        default_deadline_seconds=1.0) as service:
        print(f"ready at epoch {service.current_epoch} "
              f"(serving G(0) while the first refresh runs)")

        rng = Random(7)
        generator = LoadGenerator(service, num_users=NUM_USERS,
                                  num_readers=4, seed=7)

        def writer() -> None:
            result = service.submit_updates(
                dense_set_batch(NUM_USERS, DIM, UPDATE_BATCH, rng))
            if not result.accepted:
                # explicit backpressure, not an exception: back off and retry
                print(f"  shed {result.batch_size} changes "
                      f"({result.shed_reason}, backlog {result.pending})")

        for round_index in range(3):
            report = generator.run_phase(f"round-{round_index}",
                                         duration_seconds=2.0, writer=writer,
                                         writer_interval=0.05)
            print(f"round {round_index}: {report.queries} queries, "
                  f"p50 {report.p50_query_seconds * 1e3:.2f}ms, "
                  f"p99 {report.p99_query_seconds * 1e3:.2f}ms, "
                  f"{report.query_failures} failed, "
                  f"{report.queries_during_refresh} answered mid-refresh, "
                  f"epochs +{report.epochs_advanced}")

        health = service.health()
        print(f"health: ready={health.ready} epoch={health.serving_epoch} "
              f"pending={health.pending_updates} state={health.refresh_state}")

        service.stop(drain=True)  # stop admitting, flush WAL, seal final epoch
        stats = service.stats()
        print(f"drained at epoch {stats['serving_epoch']}: "
              f"{stats['queries_served']} queries served "
              f"({stats['query_failures']} failed), "
              f"{stats['accepted_changes']} changes applied, "
              f"{stats['shed_changes']} shed")


if __name__ == "__main__":
    main()
