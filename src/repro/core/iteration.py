"""One out-of-core KNN iteration: the paper's five phases, end to end.

The orchestration follows Figure 1 of the paper exactly:

1. partition ``G(t)`` and spill the partitions to disk,
2. populate the dedup hash table ``H`` with candidate tuples,
3. build the partition-interaction graph and plan its traversal,
4. walk the plan with at most two partitions resident, score every tuple,
   and emit ``G(t+1)``,
5. apply the queued profile changes to produce ``P(t+1)``.

:class:`OutOfCoreIteration` carries no per-iteration state — the engine
(:mod:`repro.core.engine`) owns the loop, the profile store and the update
queue, and calls :meth:`OutOfCoreIteration.run` once per iteration.  The
one thing it *does* keep across iterations is the phase-4 process scoring
pool: forking workers every iteration used to dominate short iterations,
so the pool is created once, reused for the whole run, and its workers
invalidate their cached mmap slices through the profile store's
``generation`` counter whenever phase 5 changes the files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import EngineConfig
from repro.core.parallel import ProcessScoringPool, fork_available, score_tuples
from repro.core.update_queue import ProfileUpdateQueue
from repro.graph.knn_graph import KNNGraph
from repro.partition.model import Partition, build_partitions
from repro.partition.partitioners import get_partitioner
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import ScheduleResult, simulate_schedule
from repro.pigraph.traversal import ResidencyStep, get_heuristic
from repro.storage.io_stats import IOStats
from repro.storage.memory_manager import MemoryBudget, PartitionCache
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore, ProfileSlice
from repro.tuples.generator import generate_candidate_tuples
from repro.tuples.hash_table import TupleHashTable
from repro.utils.logging import get_logger
from repro.utils.timer import PhaseTimer

_logger = get_logger("core.iteration")

#: Floor (in scored rows) for the phase-4 bulk-merge flush threshold; the
#: effective threshold is ``max(4 * num_vertices * k, _SCORED_FLUSH_ROWS)``.
_SCORED_FLUSH_ROWS = 262144

#: Names of the five phases, used consistently in timers, logs and benches.
PHASE_NAMES = (
    "1-partitioning",
    "2-hash-table",
    "3-pi-graph",
    "4-knn-computation",
    "5-profile-update",
)


@dataclass
class IterationResult:
    """Everything produced and measured by one out-of-core KNN iteration."""

    iteration: int
    graph: KNNGraph
    assignment: np.ndarray
    schedule: ScheduleResult
    num_candidate_tuples: int
    similarity_evaluations: int
    profile_updates_applied: int
    phase_timer: PhaseTimer
    io_stats: IOStats
    #: The profile store's share of ``io_stats`` — its write side is the
    #: phase-5 update traffic, which the perf suite tracks per iteration.
    profile_io_stats: IOStats = field(default_factory=IOStats)

    @property
    def load_unload_operations(self) -> int:
        """Actual partition load/unload operations performed in phase 4."""
        return self.io_stats.load_unload_operations

    def summary(self) -> Dict[str, object]:
        return {
            "iteration": self.iteration,
            "num_candidate_tuples": self.num_candidate_tuples,
            "similarity_evaluations": self.similarity_evaluations,
            "load_unload_operations": self.load_unload_operations,
            "scheduled_load_unload_operations": self.schedule.load_unload_operations,
            "profile_updates_applied": self.profile_updates_applied,
            "simulated_io_seconds": self.io_stats.simulated_io_seconds,
            "phase_seconds": self.phase_timer.as_dict(),
        }


class OutOfCoreIteration:
    """Executes a single KNN iteration against on-disk partitions and profiles."""

    def __init__(self, config: EngineConfig, partition_store: PartitionStore,
                 profile_store: OnDiskProfileStore):
        self._config = config
        self._partition_store = partition_store
        self._profile_store = profile_store
        self._pool: Optional[ProcessScoringPool] = None
        self._warned_process_fallback = False

    def close(self) -> None:
        """Shut down the persistent scoring pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _scoring_pool(self) -> Optional[ProcessScoringPool]:
        """The run-lifetime process pool, or ``None`` for in-process scoring.

        ``backend="process"`` with a single worker (or on a platform without
        ``fork``) would pay pool start-up and pipe traffic for zero
        parallelism, so those configurations fall back to the serial path —
        which is bit-identical — with a one-time warning.
        """
        config = self._config
        if config.backend != "process":
            return None
        if config.num_workers == 1 or not fork_available():
            if not self._warned_process_fallback:
                reason = ("num_workers=1" if config.num_workers == 1
                          else "fork is unavailable on this platform")
                _logger.warning(
                    "backend='process' with %s: skipping the worker pool and "
                    "scoring in-process (results are identical)", reason)
                self._warned_process_fallback = True
            return None
        if self._pool is None:
            self._pool = ProcessScoringPool(self._profile_store,
                                            num_workers=config.num_workers)
        return self._pool

    # -- public entry point -------------------------------------------------

    def run(self, iteration: int, graph: KNNGraph,
            update_queue: Optional[ProfileUpdateQueue] = None) -> IterationResult:
        """Run phases 1–5 once, turning ``G(t)`` into ``G(t+1)``."""
        config = self._config
        timer = PhaseTimer()
        io_stats = IOStats()
        measure = config.measure or self._profile_store_default_measure()

        # both phase 1 and phase 2 scan G(t) in CSR form; build it once
        csr = graph.to_csr()

        with timer.phase(PHASE_NAMES[0]):
            assignment, partitions = self._phase1_partition(csr)

        with timer.phase(PHASE_NAMES[1]):
            table = self._phase2_hash_table(csr, partitions, assignment)
            # the partitions now live on disk; drop the in-memory copies
            del partitions, csr

        with timer.phase(PHASE_NAMES[2]):
            pi_graph, steps, schedule = self._phase3_pi_graph(table)

        with timer.phase(PHASE_NAMES[3]):
            new_graph, evaluations = self._phase4_knn(iteration, graph, table,
                                                      steps, measure, io_stats)

        with timer.phase(PHASE_NAMES[4]):
            updates_applied = self._phase5_profile_update(update_queue)

        store_stats, profile_stats = self._drain_store_stats()
        io_stats.merge(store_stats)
        result = IterationResult(
            iteration=iteration,
            graph=new_graph,
            assignment=assignment,
            schedule=schedule,
            num_candidate_tuples=table.num_tuples,
            similarity_evaluations=evaluations,
            profile_updates_applied=updates_applied,
            phase_timer=timer,
            io_stats=io_stats,
            profile_io_stats=profile_stats,
        )
        _logger.info(
            "iteration %d: %d tuples, %d similarity evaluations, %d load/unload ops",
            iteration, result.num_candidate_tuples, evaluations,
            result.load_unload_operations,
        )
        return result

    # -- phase 1 --------------------------------------------------------------

    def _phase1_partition(self, csr) -> Tuple[np.ndarray, List[Partition]]:
        config = self._config
        partitioner = get_partitioner(config.partitioner)
        assignment = partitioner.assign(csr, config.num_partitions)
        partitions = build_partitions(csr, assignment, config.num_partitions)
        # overwrite last iteration's files in place instead of unlink+create
        self._partition_store.replace_all(partitions)
        return assignment, partitions

    # -- phase 2 --------------------------------------------------------------

    def _phase2_hash_table(self, csr, partitions: Sequence[Partition],
                           assignment: np.ndarray) -> TupleHashTable:
        config = self._config
        return generate_candidate_tuples(
            csr,
            partitions,
            assignment,
            include_direct_edges=config.include_direct_edges,
            max_pairs_per_bridge=config.max_pairs_per_bridge,
        )

    # -- phase 3 --------------------------------------------------------------

    def _phase3_pi_graph(self, table: TupleHashTable):
        config = self._config
        pi_graph = PIGraph.from_tuple_table(table, config.num_partitions)
        heuristic = get_heuristic(config.heuristic)
        steps = heuristic.plan(pi_graph)
        schedule = simulate_schedule(
            steps,
            heuristic_name=heuristic.name,
            num_partitions=config.num_partitions,
            cache_slots=config.max_resident_partitions,
        )
        return pi_graph, steps, schedule

    # -- phase 4 --------------------------------------------------------------

    def _phase4_knn(self, iteration: int, graph: KNNGraph, table: TupleHashTable,
                    steps: Sequence[ResidencyStep], measure: str,
                    io_stats: IOStats) -> Tuple[KNNGraph, int]:
        config = self._config
        budget = (MemoryBudget(config.memory_budget_bytes)
                  if config.memory_budget_bytes is not None else None)
        cache = PartitionCache(
            self._partition_store,
            max_resident=config.max_resident_partitions,
            memory_budget=budget,
            profile_bytes_per_user=self._profile_store.estimated_bytes_per_user(),
            io_stats=io_stats,
        )
        pool = self._scoring_pool()
        use_process = pool is not None
        # backend="process" without a pool (single worker / no fork) scores
        # serially in-process — same results, none of the pipe overhead
        inprocess_backend = ("serial" if config.backend == "process"
                             else config.backend)
        merge_shards = config.num_workers if use_process else 1
        # worker slice caches are keyed by (iteration, partition): partition
        # ids repeat across iterations with different vertex sets, and the
        # store generation tells workers when phase 5 replaced the files
        store_generation = self._profile_store.generation
        resident_profiles: Dict[int, ProfileSlice] = {}
        charged_profiles: Set[int] = set()
        new_graph = KNNGraph(graph.num_vertices, config.k)
        evaluations = 0
        scored_tuples: List[np.ndarray] = []
        scored_values: List[np.ndarray] = []
        pending_rows = 0
        # scored tuples are merged into G(t+1) in bounded batches so the
        # accumulation never outgrows a small multiple of the graph itself,
        # preserving the two-resident-partitions memory envelope
        flush_threshold = max(4 * graph.num_vertices * config.k, _SCORED_FLUSH_ROWS)

        def flush_scored() -> None:
            nonlocal pending_rows
            if not scored_tuples:
                return
            tuples_block = (scored_tuples[0] if len(scored_tuples) == 1
                            else np.concatenate(scored_tuples))
            scores_block = (scored_values[0] if len(scored_values) == 1
                            else np.concatenate(scored_values))
            # the hash table guarantees each (s, d) pair is scored once per
            # iteration, so every flushed block is duplicate-free; the
            # sharded merge is bit-identical to a single batch call (the
            # top-K selection is independent per source vertex)
            new_graph.add_candidates_sharded(tuples_block[:, 0], tuples_block[:, 1],
                                             scores_block, num_shards=merge_shards,
                                             assume_unique=True)
            scored_tuples.clear()
            scored_values.clear()
            pending_rows = 0

        for first, second, edges in steps:
            partition_a, partition_b = cache.acquire_pair(first, second)
            needed = {first: partition_a, second: partition_b}
            if use_process:
                # the workers load (mmap, zero-copy) the slices themselves;
                # the coordinator only keeps the I/O accounting aligned
                self._sync_profile_charges(cache, charged_profiles, needed)
            else:
                self._sync_profile_slices(cache, resident_profiles, needed)
                merged = self._merged_slice(resident_profiles, first, second)
            # concatenate every PI edge of the residency step into one batch
            # and score it with a single (parallel) scoring call
            chunks = [table.tuples_for(edge.src, edge.dst) for edge in edges]
            chunks = [chunk for chunk in chunks if len(chunk)]
            if not chunks:
                continue
            tuples = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            if use_process:
                # per-partition id arrays, so workers cache each partition's
                # zero-copy slice across residency steps (and iterations)
                parts = [((iteration, first), partition_a.vertices)]
                if second != first:
                    parts.append(((iteration, second), partition_b.vertices))
                scores = pool.score(None, tuples, measure,
                                    key=(iteration, first, second), parts=parts,
                                    generation=store_generation)
            else:
                scores = score_tuples(merged, tuples, measure,
                                      num_threads=config.num_threads,
                                      backend=inprocess_backend)
            evaluations += len(tuples)
            scored_tuples.append(tuples)
            scored_values.append(scores)
            pending_rows += len(tuples)
            if pending_rows >= flush_threshold:
                flush_scored()
        cache.flush()
        resident_profiles.clear()
        flush_scored()
        return new_graph, evaluations

    def _sync_profile_slices(self, cache: PartitionCache,
                             resident_profiles: Dict[int, ProfileSlice],
                             needed: Dict[int, Partition]) -> None:
        """Keep the loaded profile slices aligned with the resident partitions."""
        resident_ids = set(cache.resident_ids)
        for pid in list(resident_profiles):
            if pid not in resident_ids:
                del resident_profiles[pid]
        for pid, partition in needed.items():
            if pid not in resident_profiles:
                resident_profiles[pid] = self._profile_store.load_users(partition.vertices)

    def _sync_profile_charges(self, cache: PartitionCache,
                              charged: Set[int],
                              needed: Dict[int, Partition]) -> None:
        """Mirror :meth:`_sync_profile_slices` accounting for the process backend.

        Worker processes load the profile slices in their own address space;
        their IOStats never reach the engine, so the coordinator charges one
        mapped slice read per partition residency — the same schedule the
        in-process backends pay, and an honest model of the shared page
        cache (each slice is faulted in once, not once per worker).
        """
        charged &= set(cache.resident_ids)
        for pid, partition in needed.items():
            if pid not in charged:
                self._profile_store.charge_slice_read(partition.vertices)
                charged.add(pid)

    @staticmethod
    def _merged_slice(resident_profiles: Dict[int, ProfileSlice],
                      first: int, second: int) -> ProfileSlice:
        if first == second:
            return resident_profiles[first]
        return resident_profiles[first].merge(resident_profiles[second])

    # -- phase 5 --------------------------------------------------------------

    def _phase5_profile_update(self, update_queue: Optional[ProfileUpdateQueue]) -> int:
        if update_queue is None or len(update_queue) == 0:
            return 0
        changes = update_queue.drain()
        return self._profile_store.apply_changes(changes)

    # -- helpers ----------------------------------------------------------------

    def _profile_store_default_measure(self) -> str:
        return "cosine" if self._profile_store.kind == "dense" else "jaccard"

    def _drain_store_stats(self) -> Tuple[IOStats, IOStats]:
        """Collect and reset the stores' own I/O counters.

        Returns ``(combined, profile_only)`` — the profile store's snapshot is
        kept separate so callers can watch phase-5 update write-bytes without
        the partition traffic mixed in.
        """
        profile_snapshot = IOStats()
        profile_snapshot.merge(self._profile_store.io_stats)
        snapshot = IOStats()
        snapshot.merge(self._partition_store.io_stats)
        snapshot.merge(profile_snapshot)
        self._partition_store.io_stats.reset()
        self._profile_store.io_stats.reset()
        return snapshot, profile_snapshot
