"""One out-of-core KNN iteration: the paper's five phases, end to end.

The orchestration follows Figure 1 of the paper exactly:

1. partition ``G(t)`` and spill the partitions to disk,
2. populate the dedup hash table ``H`` with candidate tuples,
3. build the partition-interaction graph and plan its traversal,
4. walk the plan with at most two partitions resident, score every tuple,
   and emit ``G(t+1)``,
5. apply the queued profile changes to produce ``P(t+1)``.

:class:`OutOfCoreIteration` carries no per-iteration state — the engine
(:mod:`repro.core.engine`) owns the loop, the profile store and the update
queue, and calls :meth:`OutOfCoreIteration.run` once per iteration.  Two
things *do* survive across iterations:

* the phase-4 process scoring pool — forking workers every iteration used
  to dominate short iterations, so the pool is created once, reused for
  the whole run, and its workers invalidate their cached mmap slices
  through the profile store's ``generation`` counter whenever phase 5
  changes the files; and
* the phase-4 **score cache** (:class:`Phase4ScoreCache`) — the previous
  scored generation's pair → score map.  Each iteration asks the store
  which rows changed since that generation and rescores only the candidate
  tuples with at least one touched endpoint (plus pairs never scored
  before); every clean tuple reuses its cached score bit-for-bit, so the
  produced ``G(t+1)`` is identical to a full rescore while the kernel work
  scales with the churn, not the candidate volume.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.config import EngineConfig
from repro.core.parallel import (ProcessScoringPool, ScoringPoolBroken,
                                 ShardCoordinator, ShardStepTask,
                                 SharedRowIndex, _compact_ids, fork_available,
                                 score_tuples)
from repro.core.update_queue import ProfileUpdateQueue
from repro.graph.knn_graph import KNNGraph
from repro.utils.arrays import counting_argsort
from repro.partition.model import Partition, build_partitions
from repro.partition.partitioners import get_partitioner
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import (DirtySchedule, ScheduleResult,
                                     plan_dirty_schedule, plan_shard_schedule,
                                     simulate_schedule)
from repro.pigraph.traversal import ResidencyStep, get_heuristic
from repro.storage.io_stats import IOStats
from repro.storage.memory_manager import MemoryBudget, PartitionCache
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore, ProfileSlice
from repro.tuples.generator import generate_candidate_tuples
from repro.tuples.hash_table import TupleHashTable
from repro.utils.logging import get_logger
from repro.utils.timer import PhaseTimer

_logger = get_logger("core.iteration")

#: Floor (in scored rows) for the phase-4 bulk-merge flush threshold; the
#: effective threshold is ``max(4 * num_vertices * k, _SCORED_FLUSH_ROWS)``.
_SCORED_FLUSH_ROWS = 262144

#: Entries kept in the coordinator's merged row-index cache — one per
#: ``(iteration, partition pair)``.  A pair recurring in the residency
#: schedule (common under the paper's heuristics, which revisit a resident
#: partition against several peers) then skips the argsort rebuild.  Each
#: entry is two int64 arrays of the pair's combined vertex count, so a
#: handful of slots bounds the footprint to a few partition-sized arrays.
_ROW_INDEX_CACHE_SLOTS = 16

#: Names of the five phases, used consistently in timers, logs and benches.
PHASE_NAMES = (
    "1-partitioning",
    "2-hash-table",
    "3-pi-graph",
    "4-knn-computation",
    "5-profile-update",
)


class Phase4ScoreCache:
    """Generation-keyed cache of phase-4 similarity scores.

    Holds the previous scored iteration's ``(source, destination) → score``
    map as a sorted int64 pair-key array plus an aligned score array, tagged
    with the ``(measure, store generation, vertex count)`` it was computed
    under.  A similarity score depends only on the two endpoint profiles,
    so a cached entry may be reused **bit-for-bit** as long as neither
    endpoint's profile changed since the cached generation — exactly what
    the profile store's touched-row deltas
    (:meth:`~repro.storage.profile_store.OnDiskProfileStore.touched_rows_since`)
    report.  Anything the deltas cannot vouch for (unknown history, measure
    or vertex-count mismatch, empty cache) falls back to a full rescore,
    which is always correct.

    Capacity is bounded by ``max_entries`` (16 bytes per entry): an
    iteration whose scored set exceeds the cap leaves the cache empty
    (recorded in :attr:`evictions`) rather than keeping a partial map.
    """

    def __init__(self, max_entries: int = 4_000_000):
        self.max_entries = int(max_entries)
        self.measure: Optional[str] = None
        self.generation: Optional[int] = None
        self.num_vertices: int = 0
        self.keys: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None
        self.evictions: int = 0
        # per-iteration hit recording (see begin_iteration/merge): marks the
        # cache rows reused this iteration so merge() can keep them without
        # re-sorting them
        self._hit_marks: Optional[np.ndarray] = None

    def clear(self) -> None:
        self.measure = None
        self.generation = None
        self.num_vertices = 0
        self.keys = None
        self.values = None
        self._hit_marks = None

    @property
    def num_entries(self) -> int:
        return 0 if self.keys is None else len(self.keys)

    def matches(self, measure: str, num_vertices: int) -> bool:
        """Whether the cached scores speak about this measure and graph."""
        return (self.keys is not None and self.generation is not None
                and self.measure == measure and self.num_vertices == num_vertices)

    def lookup(self, tuples: np.ndarray, touched_mask: np.ndarray,
               pair_keys: Optional[np.ndarray] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Partition a candidate batch into cached-clean and dirty tuples.

        Returns ``(scores, hit_mask)``: ``hit_mask[i]`` is ``True`` exactly
        when both endpoints of ``tuples[i]`` are untouched since the cached
        generation *and* the pair was scored then; ``scores[i]`` carries the
        cached score for those rows (and ``0.0`` — to be overwritten by the
        caller — for dirty rows).  ``pair_keys`` optionally supplies the
        rows' ``src * num_vertices + dst`` keys when the caller already
        computed them (phase 4 needs them again to refill the cache).
        """
        scores = np.zeros(len(tuples), dtype=np.float64)
        hit_mask = np.zeros(len(tuples), dtype=bool)
        if self.keys is None or not len(self.keys) or not len(tuples):
            return scores, hit_mask
        clean = ~(touched_mask[tuples[:, 0]] | touched_mask[tuples[:, 1]])
        if not clean.any():
            return scores, hit_mask
        clean_rows = np.flatnonzero(clean)
        if pair_keys is not None:
            clean_keys = pair_keys[clean_rows]
        else:
            clean_keys = (tuples[clean_rows, 0] * np.int64(self.num_vertices)
                          + tuples[clean_rows, 1])
        pos = np.searchsorted(self.keys, clean_keys)
        pos = np.minimum(pos, len(self.keys) - 1)
        found = self.keys[pos] == clean_keys
        hit_rows = clean_rows[found]
        hit_mask[hit_rows] = True
        scores[hit_rows] = self.values[pos[found]]
        if self._hit_marks is not None:
            # remember which cache rows were reused: merge() keeps exactly
            # those (already sorted) and only sorts the rescored pairs
            self._hit_marks[pos[found]] = True
        return scores, hit_mask

    def advanced_to(self, touched_rows: np.ndarray,
                    generation: int) -> "Phase4ScoreCache":
        """A copy of this cache advanced past the given touched rows.

        Entries with a touched endpoint are pruned (they would be dirty
        anyway) and the remainder re-tagged with ``generation`` — the
        store state the pruned map now describes exactly.  Keeps the pair
        key encoding in one place for checkpointing
        (:meth:`KNNEngine.save_checkpoint` advances the cache to the
        snapshot generation this way).
        """
        advanced = Phase4ScoreCache(max_entries=self.max_entries)
        if self.keys is None:
            return advanced
        n = np.int64(self.num_vertices)
        mask = np.zeros(self.num_vertices, dtype=bool)
        touched_rows = np.asarray(touched_rows, dtype=np.int64)
        mask[touched_rows[touched_rows < self.num_vertices]] = True
        keep = ~(mask[self.keys // n] | mask[self.keys % n])
        advanced.keys = self.keys[keep]
        advanced.values = self.values[keep]
        advanced.measure = self.measure
        advanced.generation = int(generation)
        advanced.num_vertices = self.num_vertices
        return advanced

    def replace(self, key_chunks: Sequence[np.ndarray],
                score_chunks: Sequence[np.ndarray], measure: str,
                generation: int, num_vertices: int) -> None:
        """Install one iteration's scored pairs as the new cache contents.

        ``key_chunks`` hold ``src * num_vertices + dst`` pair keys, unique
        across chunks (the dedup hash table scores each pair once per
        iteration).  Over-capacity iterations clear the cache instead of
        keeping an arbitrary subset.
        """
        total = sum(len(chunk) for chunk in key_chunks)
        if total > self.max_entries:
            self.clear()
            self.evictions += 1
            return
        keys = (key_chunks[0] if len(key_chunks) == 1
                else np.concatenate(key_chunks)) if key_chunks else np.empty(
                    0, dtype=np.int64)
        values = (score_chunks[0] if len(score_chunks) == 1
                  else np.concatenate(score_chunks)) if score_chunks else np.empty(
                      0, dtype=np.float64)
        # pair keys are bounded by num_vertices², so the 16-bit LSD counting
        # passes sort them in O(passes·n) — this runs once per iteration
        # over every scored pair, where a comparison sort was measurable
        order = counting_argsort(keys, int(num_vertices) * int(num_vertices))
        self.keys = keys[order]
        self.values = values[order]
        self.measure = measure
        self.generation = int(generation)
        self.num_vertices = int(num_vertices)

    def begin_iteration(self, record_hits: bool = True) -> None:
        """Reset per-iteration hit recording (called before the lookups).

        While armed, :meth:`lookup` marks every cache row it hands out, so
        :meth:`merge` can later keep exactly the reused rows — already in
        sorted order — and only sort the rescored remainder.  **Every**
        iteration must call this, with ``record_hits=False`` on iterations
        that run no lookups: marks left armed by an aborted iteration
        would otherwise survive into the next merge and collide with the
        fresh chunks (the interleave assumes kept and fresh are disjoint).
        """
        self._hit_marks = (np.zeros(len(self.keys), dtype=bool)
                           if record_hits and self.keys is not None else None)

    def merge(self, dirty_key_chunks: Sequence[np.ndarray],
              dirty_score_chunks: Sequence[np.ndarray], measure: str,
              generation: int, num_vertices: int) -> None:
        """Install one iteration's scored pairs via an in-place merge.

        Produces byte-identical arrays to handing :meth:`replace` *all*
        scored pairs (pinned by a hypothesis differential test) — the cache
        still holds exactly this iteration's ``(pair, score)`` set — but
        does asymptotically less work: the reused pairs are the cache rows
        marked by this iteration's lookups (:meth:`begin_iteration`), a
        sorted subsequence that needs no re-sorting, so only the **dirty**
        chunks (rescored pairs — the churn fraction, not the candidate
        volume) are counting-sorted, and one galloping interleave (two
        ``searchsorted`` passes) zips the two disjoint sorted runs
        together.  Without armed hit marks (full rescore, adaptive skip,
        cold cache) every pair is in the dirty chunks and the call is a
        plain rebuild.  Over-capacity iterations clear the cache, exactly
        like :meth:`replace`.
        """
        fresh_keys = (np.concatenate(dirty_key_chunks) if dirty_key_chunks
                      else np.empty(0, dtype=np.int64))
        fresh_values = (np.concatenate(dirty_score_chunks) if dirty_score_chunks
                        else np.empty(0, dtype=np.float64))
        if self._hit_marks is not None and self._hit_marks.any():
            kept_keys = self.keys[self._hit_marks]
            kept_values = self.values[self._hit_marks]
        else:
            kept_keys = np.empty(0, dtype=np.int64)
            kept_values = np.empty(0, dtype=np.float64)
        self._hit_marks = None
        total = len(kept_keys) + len(fresh_keys)
        if total > self.max_entries:
            self.clear()
            self.evictions += 1
            return
        order = counting_argsort(fresh_keys,
                                 int(num_vertices) * int(num_vertices))
        fresh_keys = fresh_keys[order]
        fresh_values = fresh_values[order]
        # a pair is either reused (kept) or rescored (fresh), never both —
        # the dedup hash table scores each pair at most once per iteration —
        # so the interleave of the two sorted runs is strictly disjoint
        merged_keys = np.empty(total, dtype=np.int64)
        merged_values = np.empty(total, dtype=np.float64)
        kept_to = (np.searchsorted(fresh_keys, kept_keys)
                   + np.arange(len(kept_keys), dtype=np.int64))
        fresh_to = (np.searchsorted(kept_keys, fresh_keys)
                    + np.arange(len(fresh_keys), dtype=np.int64))
        merged_keys[kept_to] = kept_keys
        merged_keys[fresh_to] = fresh_keys
        merged_values[kept_to] = kept_values
        merged_values[fresh_to] = fresh_values
        self.keys = merged_keys
        self.values = merged_values
        self.measure = measure
        self.generation = int(generation)
        self.num_vertices = int(num_vertices)


class AdaptiveCachePolicy:
    """Measured per-tuple economics of the phase-4 score cache.

    A cache lookup costs one binary search per candidate tuple; a hit saves
    one kernel evaluation.  For cheap kernels — dense low-dimensional
    cosine costs about as much as the lookup itself — the bookkeeping can
    cancel the reuse.  This policy tracks exponential moving averages of
    the *measured* per-tuple lookup cost, per-tuple kernel cost and hit
    rate, and recommends skipping lookups while the expected saving per
    looked-up tuple (``hit_rate × kernel_cost``) stays below the lookup
    cost.  Skipping only means scoring every tuple — results stay
    bit-identical — and every ``REPROBE_EVERY``-th skipped iteration runs
    the lookups anyway so a shift in workload economics (bigger kernels,
    higher overlap) re-engages the cache.  Enabled by
    ``EngineConfig.adaptive_score_cache``.
    """

    #: Probe with real lookups after this many consecutive skipped iterations.
    REPROBE_EVERY = 4
    #: EMA weight of the newest measurement.
    ALPHA = 0.5

    def __init__(self):
        self.lookup_cost: Optional[float] = None   # seconds / looked-up tuple
        self.kernel_cost: Optional[float] = None   # seconds / rescored tuple
        self.hit_rate: Optional[float] = None
        self.skipped_iterations: int = 0
        self._skips_since_probe: int = 0

    def use_lookups(self) -> bool:
        """Decide (once per iteration) whether lookups pay for themselves."""
        if None in (self.lookup_cost, self.kernel_cost, self.hit_rate):
            return True  # no measurements yet: probe
        if self.hit_rate * self.kernel_cost >= self.lookup_cost:
            self._skips_since_probe = 0
            return True
        self._skips_since_probe += 1
        if self._skips_since_probe >= self.REPROBE_EVERY:
            self._skips_since_probe = 0
            return True
        self.skipped_iterations += 1
        return False

    @classmethod
    def _ema(cls, previous: Optional[float], value: float) -> float:
        if previous is None:
            return value
        return (1.0 - cls.ALPHA) * previous + cls.ALPHA * value

    def observe_lookups(self, seconds: float, tuples: int, hits: int) -> None:
        if tuples > 0:
            self.lookup_cost = self._ema(self.lookup_cost, seconds / tuples)
            self.hit_rate = self._ema(self.hit_rate, hits / tuples)

    def observe_kernel(self, seconds: float, tuples: int) -> None:
        if tuples > 0:
            self.kernel_cost = self._ema(self.kernel_cost, seconds / tuples)


@dataclass
class IterationResult:
    """Everything produced and measured by one out-of-core KNN iteration."""

    iteration: int
    graph: KNNGraph
    assignment: np.ndarray
    schedule: ScheduleResult
    num_candidate_tuples: int
    similarity_evaluations: int
    profile_updates_applied: int
    phase_timer: PhaseTimer
    io_stats: IOStats
    #: The profile store's share of ``io_stats`` — its write side is the
    #: phase-5 update traffic, which the perf suite tracks per iteration.
    profile_io_stats: IOStats = field(default_factory=IOStats)
    #: Tuples actually pushed through a similarity kernel this iteration
    #: (equals ``similarity_evaluations``; named for the bench reports).
    rescored_tuples: int = 0
    #: Tuples whose score was reused verbatim from the phase-4 score cache.
    reused_scores: int = 0
    #: ``True`` when no cached score was usable this iteration (cold cache,
    #: unknown delta history, or ``incremental_phase4`` disabled).
    full_rescore: bool = True
    #: ``True`` when the adaptive policy chose not to run cache lookups this
    #: iteration (the cache *was* usable; scoring everything was measured to
    #: be cheaper).  Results are bit-identical either way.
    lookups_skipped: bool = False
    #: Wall-clock seconds spent folding this iteration's scores into the
    #: phase-4 score cache (the in-place galloping merge, or the full
    #: rebuild on full-rescore iterations).
    cache_merge_seconds: float = 0.0
    #: Residency steps that reused the coordinator's cached merged row
    #: index for their partition pair instead of rebuilding the argsort.
    row_index_reuses: int = 0
    #: Residency steps that never acquired their partition pair under dirty
    #: scheduling: scores came from the score cache, plus at most a small
    #: row-level residual gather for never-seen pairs.  Always 0 when
    #: ``dirty_scheduling`` is off or the delta history could not vouch for
    #: the churn (full schedule).
    steps_skipped: int = 0
    #: Residency steps in the full traversal plan this iteration.
    steps_total: int = 0

    @property
    def load_unload_operations(self) -> int:
        """Actual partition load/unload operations performed in phase 4."""
        return self.io_stats.load_unload_operations

    def summary(self) -> Dict[str, object]:
        return {
            "iteration": self.iteration,
            "num_candidate_tuples": self.num_candidate_tuples,
            "similarity_evaluations": self.similarity_evaluations,
            "rescored_tuples": self.rescored_tuples,
            "reused_scores": self.reused_scores,
            "full_rescore": self.full_rescore,
            "lookups_skipped": self.lookups_skipped,
            "cache_merge_seconds": self.cache_merge_seconds,
            "row_index_reuses": self.row_index_reuses,
            "steps_skipped": self.steps_skipped,
            "steps_total": self.steps_total,
            "load_unload_operations": self.load_unload_operations,
            "scheduled_load_unload_operations": self.schedule.load_unload_operations,
            "profile_updates_applied": self.profile_updates_applied,
            "simulated_io_seconds": self.io_stats.simulated_io_seconds,
            "phase_seconds": self.phase_timer.as_dict(),
        }


@dataclass
class _Phase4Outcome:
    """Internal bundle of everything phase 4 measures (see IterationResult)."""

    graph: KNNGraph
    schedule: ScheduleResult
    evaluations: int
    reused: int
    full_rescore: bool
    lookups_skipped: bool
    cache_merge_seconds: float
    row_index_reuses: int
    steps_skipped: int
    steps_total: int


class OutOfCoreIteration:
    """Executes a single KNN iteration against on-disk partitions and profiles."""

    def __init__(self, config: EngineConfig, partition_store: PartitionStore,
                 profile_store: OnDiskProfileStore):
        self._config = config
        self._partition_store = partition_store
        self._profile_store = profile_store
        self._pool: Optional[ProcessScoringPool] = None
        self._warned_process_fallback = False
        self._fault = config.fault_plan
        # set when pool supervision exhausted its retries: the rest of the
        # run scores in-process (bit-identical, just without the pool)
        self._pool_degraded = False
        # shard-parallel wave executor (config.shard_parallel); like the
        # scoring pool it lives for the whole run and degrades to serial
        # waves when process-pool supervision exhausts its retries
        self._coordinator: Optional[ShardCoordinator] = None
        self._coordinator_degraded = False
        # merged row-index cache, keyed (iteration, first, second) — see
        # _ROW_INDEX_CACHE_SLOTS
        self._row_index_cache: "OrderedDict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        # survives across iterations, exactly like the scoring pool: the
        # cache holds the last scored generation's pair → score map
        self._score_cache = Phase4ScoreCache(config.score_cache_entries)
        # normalised (min, max) partition pair → store generation at which
        # the pair's tuples were last fully covered by the score cache.
        # Deliberately *not* checkpointed: a fresh runner (resume, recovery)
        # starts empty, which only costs executing clean pairs once — dirty
        # scheduling must never trust a pair the current cache can't vouch
        # for.  Rebuilt wholesale every non-overflow iteration, so entries
        # from older partition assignments cannot accumulate.
        self._pair_generations: Dict[Tuple[int, int], int] = {}
        # measured lookup/kernel economics (only consulted when
        # config.adaptive_score_cache is on)
        self._cache_policy = AdaptiveCachePolicy()

    @property
    def score_cache(self) -> Phase4ScoreCache:
        """The run-lifetime phase-4 score cache (checkpointing reads it)."""
        return self._score_cache

    @property
    def cache_policy(self) -> AdaptiveCachePolicy:
        """The adaptive lookup policy's measured state (benchmarks read it)."""
        return self._cache_policy

    def restore_score_cache(self, cache: Phase4ScoreCache) -> None:
        """Adopt a (checkpoint-loaded) score cache.

        Safe by construction: reuse only happens when the profile store can
        vouch for the row deltas since ``cache.generation``; a generation
        the store has no history for costs exactly one full rescore.  The
        engine-configured capacity wins over the serialised one — a cache
        larger than this run's ``score_cache_entries`` is dropped outright
        so the configured memory bound holds from the first iteration.
        """
        cache.max_entries = self._config.score_cache_entries
        if cache.num_entries > cache.max_entries:
            cache.clear()
            cache.evictions += 1
        self._score_cache = cache

    def close(self) -> None:
        """Shut down the persistent scoring pool and coordinator (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._coordinator is not None:
            self._coordinator.shutdown()
            self._coordinator = None

    @property
    def shard_coordinator(self) -> Optional[ShardCoordinator]:
        """The live shard coordinator, if any (benchmarks read its budget)."""
        return self._coordinator

    def _scoring_pool(self) -> Optional[ProcessScoringPool]:
        """The run-lifetime process pool, or ``None`` for in-process scoring.

        ``backend="process"`` with a single worker (or on a platform without
        ``fork``) would pay pool start-up and pipe traffic for zero
        parallelism, so those configurations fall back to the serial path —
        which is bit-identical — with a one-time warning.
        """
        config = self._config
        if config.backend != "process":
            return None
        if self._pool_degraded:
            return None
        if config.num_workers == 1 or not fork_available():
            if not self._warned_process_fallback:
                reason = ("num_workers=1" if config.num_workers == 1
                          else "fork is unavailable on this platform")
                _logger.warning(
                    "backend='process' with %s: skipping the worker pool and "
                    "scoring in-process (results are identical)", reason)
                self._warned_process_fallback = True
            return None
        if self._pool is None:
            self._pool = ProcessScoringPool(
                self._profile_store,
                num_workers=config.num_workers,
                shard_timeout=config.shard_timeout_seconds,
                fault_plan=config.fault_plan)
        return self._pool

    def _shard_coordinator(self) -> ShardCoordinator:
        """The run-lifetime wave executor for ``config.shard_parallel``.

        The backend maps directly: ``serial`` runs waves sequentially (the
        reference semantics), ``thread`` scores a wave's steps on
        ``num_threads`` threads, ``process`` ships whole steps to
        ``num_workers`` fork workers.  The same fallbacks as
        :meth:`_scoring_pool` apply — a process backend without ``fork`` or
        with a single worker, or one whose supervision exhausted its
        retries, executes serial waves (bit-identical, just sequential).
        """
        if self._coordinator is not None:
            return self._coordinator
        config = self._config
        backend = config.backend
        workers = 1
        if backend == "thread":
            workers = config.num_threads
        elif backend == "process":
            workers = config.num_workers
            if self._coordinator_degraded:
                backend, workers = "serial", 1
            elif config.num_workers == 1 or not fork_available():
                if not self._warned_process_fallback:
                    reason = ("num_workers=1" if config.num_workers == 1
                              else "fork is unavailable on this platform")
                    _logger.warning(
                        "backend='process' with %s: skipping the worker pool "
                        "and scoring in-process (results are identical)",
                        reason)
                    self._warned_process_fallback = True
                backend, workers = "serial", 1
        if backend == "thread" and workers == 1:
            backend = "serial"
        self._coordinator = ShardCoordinator(
            self._profile_store,
            backend=backend,
            num_workers=max(1, workers),
            shard_timeout=config.shard_timeout_seconds,
            worker_budget_bytes=config.memory_budget_bytes,
            bytes_per_user=self._profile_store.estimated_bytes_per_user(),
            fault_plan=config.fault_plan)
        return self._coordinator

    # -- public entry point -------------------------------------------------

    def run(self, iteration: int, graph: KNNGraph,
            update_queue: Optional[ProfileUpdateQueue] = None) -> IterationResult:
        """Run phases 1–5 once, turning ``G(t)`` into ``G(t+1)``."""
        config = self._config
        if self._fault is not None:
            self._fault.point("iteration.begin")
        timer = PhaseTimer()
        io_stats = IOStats()
        measure = config.measure or self._profile_store_default_measure()

        # both phase 1 and phase 2 scan G(t) in CSR form; build it once
        csr = graph.to_csr()

        with timer.phase(PHASE_NAMES[0]):
            assignment, partitions = self._phase1_partition(csr)

        with timer.phase(PHASE_NAMES[1]):
            table = self._phase2_hash_table(csr, partitions, assignment)
            # the partitions now live on disk; drop the in-memory copies
            del partitions, csr

        with timer.phase(PHASE_NAMES[2]):
            pi_graph, steps, schedule = self._phase3_pi_graph(table)

        with timer.phase(PHASE_NAMES[3]):
            outcome = self._phase4_knn(iteration, graph, table, steps, measure,
                                       io_stats, assignment, schedule)
        if self._fault is not None:
            # crash window: G(t+1) fully scored, phase-5 updates not applied
            self._fault.point("phase4.done")

        with timer.phase(PHASE_NAMES[4]):
            updates_applied = self._phase5_profile_update(update_queue)

        store_stats, profile_stats = self._drain_store_stats()
        io_stats.merge(store_stats)
        result = IterationResult(
            iteration=iteration,
            graph=outcome.graph,
            assignment=assignment,
            schedule=outcome.schedule,
            num_candidate_tuples=table.num_tuples,
            similarity_evaluations=outcome.evaluations,
            profile_updates_applied=updates_applied,
            phase_timer=timer,
            io_stats=io_stats,
            profile_io_stats=profile_stats,
            rescored_tuples=outcome.evaluations,
            reused_scores=outcome.reused,
            full_rescore=outcome.full_rescore,
            lookups_skipped=outcome.lookups_skipped,
            cache_merge_seconds=outcome.cache_merge_seconds,
            row_index_reuses=outcome.row_index_reuses,
            steps_skipped=outcome.steps_skipped,
            steps_total=outcome.steps_total,
        )
        _logger.info(
            "iteration %d: %d tuples, %d similarity evaluations "
            "(%d reused from cache), %d/%d steps skipped, %d load/unload ops",
            iteration, result.num_candidate_tuples, outcome.evaluations,
            outcome.reused, outcome.steps_skipped, outcome.steps_total,
            result.load_unload_operations,
        )
        return result

    # -- phase 1 --------------------------------------------------------------

    def _phase1_partition(self, csr) -> Tuple[np.ndarray, List[Partition]]:
        config = self._config
        partitioner = get_partitioner(config.partitioner)
        assignment = partitioner.assign(csr, config.num_partitions)
        partitions = build_partitions(csr, assignment, config.num_partitions)
        # overwrite last iteration's files in place instead of unlink+create
        self._partition_store.replace_all(partitions)
        return assignment, partitions

    # -- phase 2 --------------------------------------------------------------

    def _phase2_hash_table(self, csr, partitions: Sequence[Partition],
                           assignment: np.ndarray) -> TupleHashTable:
        config = self._config
        return generate_candidate_tuples(
            csr,
            partitions,
            assignment,
            include_direct_edges=config.include_direct_edges,
            max_pairs_per_bridge=config.max_pairs_per_bridge,
        )

    # -- phase 3 --------------------------------------------------------------

    def _phase3_pi_graph(self, table: TupleHashTable):
        config = self._config
        pi_graph = PIGraph.from_tuple_table(table, config.num_partitions)
        heuristic = get_heuristic(config.heuristic)
        steps = heuristic.plan(pi_graph)
        schedule = simulate_schedule(
            steps,
            heuristic_name=heuristic.name,
            num_partitions=config.num_partitions,
            cache_slots=config.max_resident_partitions,
        )
        return pi_graph, steps, schedule

    # -- phase 4 --------------------------------------------------------------

    def _touched_mask(self, graph: KNNGraph, measure: str) -> Optional[np.ndarray]:
        """Vertices whose profiles changed since the cached generation.

        Returns ``None`` when the cache cannot be consulted at all — wrong
        measure or vertex count, empty cache, or a delta history the profile
        store cannot vouch for (external rewrite, journal compaction,
        :meth:`~repro.storage.profile_store.OnDiskProfileStore.reload`) —
        which makes the iteration a full rescore.
        """
        cache = self._score_cache
        if not cache.matches(measure, graph.num_vertices):
            return None
        touched = self._profile_store.touched_rows_since(cache.generation)
        if touched is None:
            return None
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[touched[touched < graph.num_vertices]] = True
        return mask

    def _plan_dirty(self, steps: Sequence[ResidencyStep],
                    assignment: np.ndarray) -> Optional[DirtySchedule]:
        """The iteration's dirty-partition plan, or ``None`` for the full one.

        ``None`` covers every situation where planning cannot help or
        cannot be trusted: the toggle is off, the cache is unusable this
        iteration (cold, wrong measure, full rescore, adaptive skip), or
        the delta history cannot vouch for the churn — reload, compaction
        rollover and recovery all surface as ``touched_partitions_since``
        returning ``None``, and the only safe answer is to run everything.
        """
        score_cache = self._score_cache
        dirty_partitions = self._profile_store.touched_partitions_since(
            score_cache.generation, assignment)
        plan = plan_dirty_schedule(steps, dirty_partitions,
                                   self._pair_generations,
                                   score_cache.generation)
        return None if plan.assume_all_dirty else plan

    def _phase4_knn(self, iteration: int, graph: KNNGraph, table: TupleHashTable,
                    steps: Sequence[ResidencyStep], measure: str,
                    io_stats: IOStats, assignment: np.ndarray,
                    schedule: ScheduleResult) -> _Phase4Outcome:
        config = self._config
        if config.shard_parallel:
            return self._phase4_knn_sharded(iteration, graph, table, steps,
                                            measure, io_stats, assignment,
                                            schedule)
        budget = (MemoryBudget(config.memory_budget_bytes)
                  if config.memory_budget_bytes is not None else None)
        partition_cache = PartitionCache(
            self._partition_store,
            max_resident=config.max_resident_partitions,
            memory_budget=budget,
            profile_bytes_per_user=self._profile_store.estimated_bytes_per_user(),
            io_stats=io_stats,
        )
        pool = self._scoring_pool()
        use_process = pool is not None
        # backend="process" without a pool (single worker / no fork) scores
        # serially in-process — same results, none of the pipe overhead
        inprocess_backend = ("serial" if config.backend == "process"
                             else config.backend)
        merge_shards = config.num_workers if use_process else 1
        # worker slice caches are keyed by (iteration, partition): partition
        # ids repeat across iterations with different vertex sets, and the
        # store generation tells workers when phase 5 replaced the files
        store_generation = self._profile_store.generation
        resident_profiles: Dict[int, ProfileSlice] = {}
        charged_profiles: Set[int] = set()
        new_graph = KNNGraph(graph.num_vertices, config.k)
        evaluations = 0
        reused = 0
        row_index_reuses = 0
        # candidate tuples whose endpoints are both untouched since the
        # cache's generation reuse the cached score verbatim; only the
        # remaining "dirty" tuples reach a similarity kernel (or the worker
        # pool).  Scores are per-pair deterministic, so the merged result is
        # bit-identical to a full rescore.
        score_cache = self._score_cache
        touched_mask = (self._touched_mask(graph, measure)
                        if config.incremental_phase4 else None)
        full_rescore = touched_mask is None
        # the adaptive policy may decline lookups whose measured expected
        # value is below their cost; the cache itself is still maintained
        # (merged below) so a later probe iteration can reuse again
        lookups_skipped = bool(not full_rescore and config.adaptive_score_cache
                               and not self._cache_policy.use_lookups())
        do_lookups = not full_rescore and not lookups_skipped
        # arm hit recording (the reused rows form the sorted "kept" run of
        # the end-of-iteration merge) — or explicitly disarm it, so marks
        # left over from an aborted iteration can never leak into merge()
        score_cache.begin_iteration(record_hits=do_lookups)
        # dirty-partition planning: steps whose partitions are both clean
        # and whose pair the cache vouches for run lookup-only (no partition
        # acquired unless a lookup misses); everything else runs dirty-first
        dirty_plan = (self._plan_dirty(steps, assignment)
                      if config.dirty_scheduling and do_lookups else None)
        if dirty_plan is not None:
            ordered_steps = ([(step, False) for step in dirty_plan.executed]
                             + [(step, True) for step in dirty_plan.cached])
        else:
            ordered_steps = [(step, False) for step in steps]
        # the steps that actually touched the partition cache, in order —
        # re-simulated at the end so the reported ScheduleResult keeps the
        # plan == actual load/unload invariant under any amount of skipping
        executed_sequence: List[ResidencyStep] = []
        steps_skipped = 0
        # per-partition row counts, for the residual-gather economics of
        # cached steps (see below); only needed when a dirty plan exists
        partition_rows = (np.bincount(assignment,
                                      minlength=config.num_partitions)
                          if dirty_plan is not None else None)
        lookup_seconds = 0.0
        looked_tuples = 0
        kernel_seconds = 0.0
        cache_keys: List[np.ndarray] = []
        cache_values: List[np.ndarray] = []
        cache_overflow = not config.incremental_phase4
        scored_tuples: List[np.ndarray] = []
        scored_values: List[np.ndarray] = []
        pending_rows = 0
        # scored tuples are merged into G(t+1) in bounded batches so the
        # accumulation never outgrows a small multiple of the graph itself,
        # preserving the two-resident-partitions memory envelope
        flush_threshold = max(4 * graph.num_vertices * config.k, _SCORED_FLUSH_ROWS)

        def flush_scored() -> None:
            nonlocal pending_rows
            if not scored_tuples:
                return
            tuples_block = (scored_tuples[0] if len(scored_tuples) == 1
                            else np.concatenate(scored_tuples))
            scores_block = (scored_values[0] if len(scored_values) == 1
                            else np.concatenate(scored_values))
            # the hash table guarantees each (s, d) pair is scored once per
            # iteration, so every flushed block is duplicate-free; the
            # sharded merge is bit-identical to a single batch call (the
            # top-K selection is independent per source vertex)
            new_graph.add_candidates_sharded(tuples_block[:, 0], tuples_block[:, 1],
                                             scores_block, num_shards=merge_shards,
                                             assume_unique=True)
            scored_tuples.clear()
            scored_values.clear()
            pending_rows = 0

        def tally_step(tuples, scores, pair_keys, dirty_rows, num_dirty) -> None:
            """Per-step tail: counters, cache accumulation, graph flush."""
            nonlocal evaluations, cache_overflow, pending_rows
            evaluations += num_dirty
            if not cache_overflow:
                # only the *dirty* (rescored) pairs are accumulated for the
                # cache update; reused pairs are already cache rows and are
                # carried over through the lookup hit marks
                if dirty_rows is None:
                    cache_keys.append(pair_keys)
                    cache_values.append(scores)
                elif len(dirty_rows):
                    cache_keys.append(pair_keys[dirty_rows])
                    cache_values.append(scores[dirty_rows])
                if (reused + sum(len(chunk) for chunk in cache_keys)
                        > score_cache.max_entries):
                    cache_keys.clear()
                    cache_values.clear()
                    cache_overflow = True
            scored_tuples.append(tuples)
            scored_values.append(scores)
            pending_rows += len(tuples)
            if pending_rows >= flush_threshold:
                flush_scored()

        for step, from_cache in ordered_steps:
            first, second, edges = step
            partition_a = partition_b = None
            if not from_cache:
                partition_a, partition_b = partition_cache.acquire_pair(first, second)
                executed_sequence.append(step)
                # profile slices are loaded (and their reads charged) only
                # when the step has dirty tuples — a fully cache-hit step
                # touches no profile bytes at all; the eviction side still
                # runs every acquiring step so the slice set never outgrows
                # the resident partitions
                self._evict_stale_profiles(partition_cache, resident_profiles,
                                           charged_profiles)
            # concatenate every PI edge of the residency step into one batch
            # and score it with a single (parallel) scoring call
            chunks = [table.tuples_for(edge.src, edge.dst) for edge in edges]
            chunks = [chunk for chunk in chunks if len(chunk)]
            if not chunks:
                if from_cache:
                    steps_skipped += 1
                continue
            tuples = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            pair_keys = (tuples[:, 0] * np.int64(graph.num_vertices) + tuples[:, 1]
                         if not cache_overflow or do_lookups else None)
            if not do_lookups:
                dirty_rows = None
                dirty = tuples
                scores = np.empty(0, dtype=np.float64)  # replaced below
            else:
                lookup_start = time.perf_counter()
                scores, hit_mask = score_cache.lookup(tuples, touched_mask,
                                                      pair_keys=pair_keys)
                lookup_seconds += time.perf_counter() - lookup_start
                looked_tuples += len(tuples)
                dirty_rows = np.flatnonzero(~hit_mask)
                dirty = tuples if len(dirty_rows) == len(tuples) else tuples[dirty_rows]
                reused += len(tuples) - len(dirty_rows)
            if len(dirty):
                if from_cache:
                    # the plan called this pair clean, but graph churn
                    # elsewhere minted candidate tuples the cache has never
                    # seen (neighbour lists keep moving even between clean
                    # partitions).  A small residue is scored off a
                    # row-level gather of exactly the needed profiles — no
                    # partition acquired, the step still skips; a large one
                    # means the pair genuinely needs its partitions, so the
                    # step falls back to executing.  The 4x rule is a pure
                    # function of the data, so every backend and every
                    # resume makes the same choice.
                    residual_rows = np.unique(dirty.ravel())
                    pair_span = int(partition_rows[first]
                                    + (partition_rows[second]
                                       if second != first else 0))
                    if len(residual_rows) * 4 <= pair_span:
                        kernel_start = time.perf_counter()
                        residual_slice = self._profile_store.load_users(
                            residual_rows)
                        fresh = score_tuples(residual_slice, dirty, measure,
                                             num_threads=config.num_threads,
                                             backend=inprocess_backend)
                        kernel_seconds += time.perf_counter() - kernel_start
                        scores[dirty_rows] = fresh
                        steps_skipped += 1
                        tally_step(tuples, scores, pair_keys, dirty_rows,
                                   len(dirty))
                        continue
                    # fall back to executing the step — acquire on demand,
                    # score the misses against the resident pair, stay exact
                    partition_a, partition_b = partition_cache.acquire_pair(
                        first, second)
                    executed_sequence.append(step)
                    self._evict_stale_profiles(partition_cache,
                                               resident_profiles,
                                               charged_profiles)
                needed = {first: partition_a, second: partition_b}
                if self._fault is not None:
                    # crash window: mid-phase-4, some steps scored, nothing
                    # committed (placed outside the shared-index lifetime so
                    # the injected crash itself never doubles as a leak)
                    self._fault.point("phase4.step")
                # the merged slice's id→row index (the stable argsort of the
                # two partitions' concatenated ids) is built once per
                # (iteration, pair) — recurring pairs reuse it from a small
                # LRU — and shared with every consumer: in-process merges
                # skip their per-step argsort, and pool workers receive it
                # through a shared-memory segment instead of each re-deriving
                # it
                index_users = index_order = None
                if second != first:
                    index_key = (iteration, first, second)
                    cached_index = self._row_index_cache.get(index_key)
                    if cached_index is not None:
                        index_users, index_order = cached_index
                        self._row_index_cache.move_to_end(index_key)
                        row_index_reuses += 1
                    else:
                        concat_ids = np.concatenate([partition_a.vertices,
                                                     partition_b.vertices])
                        index_order = np.argsort(concat_ids, kind="stable")
                        index_users = concat_ids[index_order]
                        self._row_index_cache[index_key] = (index_users,
                                                            index_order)
                        while len(self._row_index_cache) > _ROW_INDEX_CACHE_SLOTS:
                            self._row_index_cache.popitem(last=False)
                kernel_start = time.perf_counter()
                fresh = None
                if use_process:
                    # the workers load (mmap, zero-copy) the slices
                    # themselves; the coordinator only keeps the I/O
                    # accounting aligned.  Per-partition id arrays let
                    # workers cache each partition's slice across residency
                    # steps (and iterations); only the dirty shard crosses
                    # the pipe
                    self._sync_profile_charges(charged_profiles, needed)
                    parts = [((iteration, first), partition_a.vertices)]
                    if second != first:
                        parts.append(((iteration, second), partition_b.vertices))
                    shared_index = None
                    row_index = None
                    if index_users is not None:
                        try:
                            shared_index = SharedRowIndex(index_users, index_order)
                            row_index = shared_index.descriptor
                        except OSError:
                            shared_index = None  # no shm: workers re-gather
                    try:
                        fresh = pool.score(None, dirty, measure,
                                           key=(iteration, first, second),
                                           parts=parts,
                                           generation=store_generation,
                                           row_index=row_index)
                    except ScoringPoolBroken:
                        # supervision exhausted respawn-and-retry: finish
                        # this step (and the rest of the run) in-process —
                        # scores are per-pair deterministic, so the result
                        # is bit-identical, just slower
                        _logger.warning(
                            "scoring pool failed repeatedly; degrading to "
                            "in-process scoring for the rest of the run")
                        self._pool_degraded = True
                        pool.terminate()
                        self._pool = None
                        pool = None
                        use_process = False
                    finally:
                        if shared_index is not None:
                            shared_index.close()
                if fresh is None:
                    self._sync_profile_slices(resident_profiles, needed)
                    merged = self._merged_slice(resident_profiles, first, second,
                                                index_users, index_order)
                    fresh = score_tuples(merged, dirty, measure,
                                         num_threads=config.num_threads,
                                         backend=inprocess_backend)
                kernel_seconds += time.perf_counter() - kernel_start
                if dirty_rows is None:
                    scores = fresh
                else:
                    scores[dirty_rows] = fresh
            elif from_cache:
                # every tuple answered from the cache: the step never
                # touched the partition cache, a profile byte or a kernel
                steps_skipped += 1
            tally_step(tuples, scores, pair_keys, dirty_rows, len(dirty))
        partition_cache.flush()
        resident_profiles.clear()
        flush_scored()
        cache_merge_seconds = 0.0
        if cache_overflow:
            score_cache.clear()
            self._pair_generations.clear()
            if config.incremental_phase4:
                score_cache.evictions += 1
        else:
            # the cached scores describe the store as of *this* phase 4 —
            # phase 5 runs after and its deltas are what the next iteration
            # asks touched_rows_since() about.  The in-place merge keeps the
            # reused rows (marked during the lookups, already sorted) and
            # sorts only the rescored chunks; on full-rescore iterations
            # every pair is in the chunks and this is a plain rebuild.
            merge_start = time.perf_counter()
            score_cache.merge(cache_keys, cache_values, measure,
                              store_generation, graph.num_vertices)
            cache_merge_seconds = time.perf_counter() - merge_start
            # after the merge the cache covers every tuple of every step in
            # this iteration's plan — executed steps contributed rescored
            # chunks, cached steps marked their hits as kept rows — all
            # tagged with this phase 4's store generation.  Rebuilding the
            # map wholesale drops pairs from older partition assignments.
            self._pair_generations = {
                ((first, second) if first <= second else (second, first)):
                store_generation
                for first, second, _ in steps}
        if config.adaptive_score_cache:
            self._cache_policy.observe_kernel(kernel_seconds, evaluations)
            if do_lookups:
                self._cache_policy.observe_lookups(lookup_seconds,
                                                   looked_tuples, reused)
        if dirty_plan is not None:
            # the plan changed which steps reach the partition cache and in
            # what order; re-simulating over the acquired sequence keeps the
            # schedule's load/unload counts equal to the executed ones
            schedule = simulate_schedule(
                executed_sequence,
                heuristic_name=schedule.heuristic,
                num_partitions=schedule.num_partitions,
                cache_slots=config.max_resident_partitions,
            )
        return _Phase4Outcome(
            graph=new_graph,
            schedule=schedule,
            evaluations=evaluations,
            reused=reused,
            full_rescore=full_rescore,
            lookups_skipped=lookups_skipped,
            cache_merge_seconds=cache_merge_seconds,
            row_index_reuses=row_index_reuses,
            steps_skipped=steps_skipped,
            steps_total=len(steps),
        )

    def _phase4_knn_sharded(self, iteration: int, graph: KNNGraph,
                            table: TupleHashTable,
                            steps: Sequence[ResidencyStep], measure: str,
                            io_stats: IOStats, assignment: np.ndarray,
                            schedule: ScheduleResult) -> _Phase4Outcome:
        """Phase 4 with waves of partition-disjoint steps executed in parallel.

        Two passes over the dirty-scheduled step order:

        1. *Classify* — exactly the serial path's per-step lookup logic:
           cache hits are taken, fully-hit steps and small cached-step
           residues finish inline, and every step that still needs its
           partitions becomes a pending record.
        2. *Execute* — the pending steps are colored into waves of
           partition-disjoint steps (:func:`plan_shard_schedule`) and each
           wave runs concurrently on the :class:`ShardCoordinator`, every
           worker exclusively owning its step's partitions for the wave.

        Bit-identity with the serial path holds by construction, not by
        luck: similarity scores are a pure function of the two endpoint
        profiles (no worker observes phase-5 writes mid-iteration — they run
        after phase 4), each worker's per-source top-K pre-reduction ranks
        by the same ``(-score, destination)`` order as the merge (so dropped
        rows are provably dominated), and the G(t+1) merge itself is a pure
        function of the offered candidate multiset — the invariant the
        dirty-scheduling wall already proves.  Reordering steps into waves
        therefore cannot move a single edge or byte.

        Accounting: each wave loads its distinct partitions once and drops
        them at the wave barrier, so loads = unloads = the plan's
        ``total_partition_residencies``; one profile-slice read is charged
        per (wave, partition).  The reported :class:`ScheduleResult` is
        rebuilt from the wave plan, keeping the schedule == actual
        load/unload invariant the serial path maintains.
        """
        config = self._config
        coordinator = self._shard_coordinator()
        store_generation = self._profile_store.generation
        merge_shards = (config.num_workers
                        if coordinator.backend == "process" else 1)
        new_graph = KNNGraph(graph.num_vertices, config.k)
        evaluations = 0
        reused = 0
        score_cache = self._score_cache
        touched_mask = (self._touched_mask(graph, measure)
                        if config.incremental_phase4 else None)
        full_rescore = touched_mask is None
        lookups_skipped = bool(not full_rescore and config.adaptive_score_cache
                               and not self._cache_policy.use_lookups())
        do_lookups = not full_rescore and not lookups_skipped
        score_cache.begin_iteration(record_hits=do_lookups)
        dirty_plan = (self._plan_dirty(steps, assignment)
                      if config.dirty_scheduling and do_lookups else None)
        if dirty_plan is not None:
            ordered_steps = ([(step, False) for step in dirty_plan.executed]
                             + [(step, True) for step in dirty_plan.cached])
        else:
            ordered_steps = [(step, False) for step in steps]
        partition_rows = np.bincount(assignment,
                                     minlength=config.num_partitions)
        steps_skipped = 0
        lookup_seconds = 0.0
        looked_tuples = 0
        kernel_seconds = 0.0
        cache_keys: List[np.ndarray] = []
        cache_values: List[np.ndarray] = []
        cache_overflow = not config.incremental_phase4
        scored_tuples: List[np.ndarray] = []
        scored_values: List[np.ndarray] = []
        pending_rows = 0
        flush_threshold = max(4 * graph.num_vertices * config.k,
                              _SCORED_FLUSH_ROWS)

        def flush_scored() -> None:
            nonlocal pending_rows
            if not scored_tuples:
                return
            tuples_block = (scored_tuples[0] if len(scored_tuples) == 1
                            else np.concatenate(scored_tuples))
            scores_block = (scored_values[0] if len(scored_values) == 1
                            else np.concatenate(scored_values))
            new_graph.add_candidates_sharded(tuples_block[:, 0],
                                             tuples_block[:, 1], scores_block,
                                             num_shards=merge_shards,
                                             assume_unique=True)
            scored_tuples.clear()
            scored_values.clear()
            pending_rows = 0

        def stage_for_graph(tuples_rows: np.ndarray,
                            scores_rows: np.ndarray) -> None:
            nonlocal pending_rows
            if not len(tuples_rows):
                return
            scored_tuples.append(tuples_rows)
            scored_values.append(scores_rows)
            pending_rows += len(tuples_rows)
            if pending_rows >= flush_threshold:
                flush_scored()

        def account_cache(pair_keys, scores, dirty_rows) -> None:
            nonlocal cache_overflow
            if cache_overflow:
                return
            if dirty_rows is None:
                cache_keys.append(pair_keys)
                cache_values.append(scores)
            elif len(dirty_rows):
                cache_keys.append(pair_keys[dirty_rows])
                cache_values.append(scores[dirty_rows])
            if (reused + sum(len(chunk) for chunk in cache_keys)
                    > score_cache.max_entries):
                cache_keys.clear()
                cache_values.clear()
                cache_overflow = True

        # -- pass 1: per-step lookup/classification (serial-path semantics) --
        # pending: steps that must execute — (step, tuples, pair_keys,
        # scores, dirty_rows, dirty); hit rows of pending steps are staged
        # for the graph here, their dirty scores arrive from the waves
        pending: List[tuple] = []
        for step, from_cache in ordered_steps:
            first, second, edges = step
            chunks = [table.tuples_for(edge.src, edge.dst) for edge in edges]
            chunks = [chunk for chunk in chunks if len(chunk)]
            if not chunks:
                if from_cache:
                    steps_skipped += 1
                continue
            tuples = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            pair_keys = (tuples[:, 0] * np.int64(graph.num_vertices)
                         + tuples[:, 1]
                         if not cache_overflow or do_lookups else None)
            if not do_lookups:
                pending.append((step, tuples, pair_keys, None, None, tuples))
                continue
            lookup_start = time.perf_counter()
            scores, hit_mask = score_cache.lookup(tuples, touched_mask,
                                                  pair_keys=pair_keys)
            lookup_seconds += time.perf_counter() - lookup_start
            looked_tuples += len(tuples)
            dirty_rows = np.flatnonzero(~hit_mask)
            dirty = (tuples if len(dirty_rows) == len(tuples)
                     else tuples[dirty_rows])
            reused += len(tuples) - len(dirty_rows)
            if not len(dirty):
                if from_cache:
                    steps_skipped += 1
                account_cache(pair_keys, scores, dirty_rows)
                stage_for_graph(tuples, scores)
                continue
            if from_cache:
                # same residual-gather economics as the serial path: a small
                # never-seen residue of a clean pair is scored off a
                # row-level gather right here (the 4x rule is a pure
                # function of the data); a large one falls through and the
                # step executes in a wave
                residual_rows = np.unique(dirty.ravel())
                pair_span = int(partition_rows[first]
                                + (partition_rows[second]
                                   if second != first else 0))
                if len(residual_rows) * 4 <= pair_span:
                    kernel_start = time.perf_counter()
                    residual_slice = self._profile_store.load_users(
                        residual_rows)
                    fresh = score_tuples(residual_slice, dirty, measure,
                                         backend="serial")
                    kernel_seconds += time.perf_counter() - kernel_start
                    scores[dirty_rows] = fresh
                    steps_skipped += 1
                    evaluations += len(dirty)
                    account_cache(pair_keys, scores, dirty_rows)
                    stage_for_graph(tuples, scores)
                    continue
            hit_rows = np.flatnonzero(hit_mask)
            stage_for_graph(tuples[hit_rows], scores[hit_rows])
            pending.append((step, tuples, pair_keys, scores, dirty_rows,
                            dirty))

        # -- pass 2: wave-plan the pending steps and execute ------------------
        shard_plan = plan_shard_schedule([item[0] for item in pending])
        wave_items: List[List[tuple]] = [[] for _ in range(shard_plan.num_waves)]
        for item, wave_index in zip(pending, shard_plan.wave_of):
            wave_items[wave_index].append(item)
        part_ids_cache: Dict[int, np.ndarray] = {}

        def part_ids(pid: int) -> np.ndarray:
            ids = part_ids_cache.get(pid)
            if ids is None:
                ids = np.flatnonzero(assignment == pid)
                part_ids_cache[pid] = ids
            return ids

        tuples_executed = 0
        total_residencies = 0
        for wave in wave_items:
            tasks: List[ShardStepTask] = []
            wave_partitions: List[int] = []
            seen_partitions: Set[int] = set()
            for (step, tuples, pair_keys, scores, dirty_rows, dirty) in wave:
                first, second, edges = step
                if self._fault is not None:
                    # crash window: mid-phase-4, some steps scored, nothing
                    # committed — one firing per executed step, matching the
                    # serial path's schedule
                    self._fault.point("phase4.step")
                parts = [((iteration, first), _compact_ids(part_ids(first)))]
                if second != first:
                    parts.append(((iteration, second),
                                  _compact_ids(part_ids(second))))
                tasks.append(ShardStepTask(
                    key=(iteration, first, second), parts=tuple(parts),
                    tuples=dirty, measure=measure,
                    generation=store_generation, k=config.k))
                tuples_executed += sum(edge.weight for edge in edges)
                for pid in (first, second):
                    if pid not in seen_partitions:
                        seen_partitions.add(pid)
                        wave_partitions.append(pid)
            # each wave loads its distinct partitions once — in the workers'
            # address spaces, so the coordinator attributes the operations
            # and one slice read per (wave, partition), exactly like
            # _sync_profile_charges does for the scoring pool — and drops
            # them at the wave barrier
            for pid in wave_partitions:
                io_stats.record_partition_load()
                self._profile_store.charge_slice_read(part_ids(pid))
            kernel_start = time.perf_counter()
            try:
                deltas = coordinator.execute_wave(tasks)
            except ScoringPoolBroken:
                # wave supervision exhausted respawn-and-retry: tasks are
                # pure, so re-running the whole wave serially is
                # bit-identical — degrade for the rest of the run
                _logger.warning(
                    "shard coordinator failed repeatedly; degrading to "
                    "serial wave execution for the rest of the run")
                self._coordinator_degraded = True
                coordinator.shutdown()
                self._coordinator = None
                coordinator = self._shard_coordinator()
                deltas = coordinator.execute_wave(tasks)
            kernel_seconds += time.perf_counter() - kernel_start
            for pid in wave_partitions:
                io_stats.record_partition_unload()
            total_residencies += len(wave_partitions)
            for item, delta in zip(wave, deltas):
                step, tuples, pair_keys, scores, dirty_rows, dirty = item
                evaluations += len(dirty)
                if dirty_rows is None:
                    # full rescore / lookups skipped: the whole step is dirty
                    account_cache(pair_keys, delta.scores, None)
                    stage_for_graph(dirty[delta.topk_rows],
                                    delta.scores[delta.topk_rows])
                else:
                    scores[dirty_rows] = delta.scores
                    account_cache(pair_keys, scores, dirty_rows)
                    stage_for_graph(dirty[delta.topk_rows],
                                    delta.scores[delta.topk_rows])
        flush_scored()

        cache_merge_seconds = 0.0
        if cache_overflow:
            score_cache.clear()
            self._pair_generations.clear()
            if config.incremental_phase4:
                score_cache.evictions += 1
        else:
            merge_start = time.perf_counter()
            score_cache.merge(cache_keys, cache_values, measure,
                              store_generation, graph.num_vertices)
            cache_merge_seconds = time.perf_counter() - merge_start
            self._pair_generations = {
                ((first, second) if first <= second else (second, first)):
                store_generation
                for first, second, _ in steps}
        if config.adaptive_score_cache:
            self._cache_policy.observe_kernel(kernel_seconds, evaluations)
            if do_lookups:
                self._cache_policy.observe_lookups(lookup_seconds,
                                                   looked_tuples, reused)
        # the executed-residency ScheduleResult of the wave model: loads and
        # unloads both equal the per-wave distinct-partition count, so the
        # schedule == actual invariant holds by construction
        executed_schedule = ScheduleResult(
            heuristic=schedule.heuristic,
            num_partitions=schedule.num_partitions,
            num_steps=len(pending),
            loads=total_residencies,
            unloads=total_residencies,
            cache_hits=0,
            tuples_scheduled=tuples_executed,
        )
        return _Phase4Outcome(
            graph=new_graph,
            schedule=executed_schedule,
            evaluations=evaluations,
            reused=reused,
            full_rescore=full_rescore,
            lookups_skipped=lookups_skipped,
            cache_merge_seconds=cache_merge_seconds,
            row_index_reuses=0,
            steps_skipped=steps_skipped,
            steps_total=len(steps),
        )

    @staticmethod
    def _evict_stale_profiles(cache: PartitionCache,
                              resident_profiles: Dict[int, ProfileSlice],
                              charged: Set[int]) -> None:
        """Drop slice state for partitions no longer resident.

        Runs every residency step (loading is deferred to dirty steps, but
        eviction must not be, or fully cache-hit steps would let the slice
        set outgrow the two-resident-partitions memory envelope).
        """
        resident_ids = set(cache.resident_ids)
        for pid in list(resident_profiles):
            if pid not in resident_ids:
                del resident_profiles[pid]
        charged &= resident_ids

    def _sync_profile_slices(self, resident_profiles: Dict[int, ProfileSlice],
                             needed: Dict[int, Partition]) -> None:
        """Load the needed partitions' profile slices (dirty steps only).

        Eviction of no-longer-resident slices is *not* done here — it runs
        unconditionally per step in :meth:`_evict_stale_profiles`.
        """
        for pid, partition in needed.items():
            if pid not in resident_profiles:
                resident_profiles[pid] = self._profile_store.load_users(partition.vertices)

    def _sync_profile_charges(self, charged: Set[int],
                              needed: Dict[int, Partition]) -> None:
        """Mirror :meth:`_sync_profile_slices` accounting for the process backend.

        Worker processes load the profile slices in their own address space;
        their IOStats never reach the engine, so the coordinator charges one
        mapped slice read per partition residency — the same schedule the
        in-process backends pay, and an honest model of the shared page
        cache (each slice is faulted in once, not once per worker).  Like
        the slice loader, the charged-set pruning lives in
        :meth:`_evict_stale_profiles`.
        """
        for pid, partition in needed.items():
            if pid not in charged:
                self._profile_store.charge_slice_read(partition.vertices)
                charged.add(pid)

    @staticmethod
    def _merged_slice(resident_profiles: Dict[int, ProfileSlice],
                      first: int, second: int,
                      index_users: Optional[np.ndarray] = None,
                      index_order: Optional[np.ndarray] = None) -> ProfileSlice:
        if first == second:
            return resident_profiles[first]
        if index_users is not None:
            # the step's precomputed merge index (partitions are disjoint)
            return resident_profiles[first].merge_indexed(
                resident_profiles[second], index_users, index_order)
        return resident_profiles[first].merge(resident_profiles[second])

    # -- phase 5 --------------------------------------------------------------

    def _phase5_profile_update(self, update_queue: Optional[ProfileUpdateQueue]) -> int:
        if update_queue is None or len(update_queue) == 0:
            return 0
        if self._fault is not None:
            # crash window: updates scored and enqueued (WAL-durable when the
            # engine runs durable) but not yet applied to the profile store
            self._fault.point("phase5.before_apply")
        changes = update_queue.drain()
        return self._profile_store.apply_changes(changes)

    # -- helpers ----------------------------------------------------------------

    def _profile_store_default_measure(self) -> str:
        return "cosine" if self._profile_store.kind == "dense" else "jaccard"

    def _drain_store_stats(self) -> Tuple[IOStats, IOStats]:
        """Collect and reset the stores' own I/O counters.

        Returns ``(combined, profile_only)`` — the profile store's snapshot is
        kept separate so callers can watch phase-5 update write-bytes without
        the partition traffic mixed in.
        """
        profile_snapshot = IOStats()
        profile_snapshot.merge(self._profile_store.io_stats)
        snapshot = IOStats()
        snapshot.merge(self._partition_store.io_stats)
        snapshot.merge(profile_snapshot)
        self._partition_store.io_stats.reset()
        self._profile_store.io_stats.reset()
        return snapshot, profile_snapshot
