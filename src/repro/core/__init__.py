"""The paper's core contribution: the out-of-core five-phase KNN engine."""

from repro.core.config import EngineConfig
from repro.core.convergence import ConvergenceTracker
from repro.core.engine import KNNEngine, EngineRunResult
from repro.core.iteration import IterationResult
from repro.core.update_queue import ProfileUpdateQueue

__all__ = [
    "EngineConfig",
    "KNNEngine",
    "EngineRunResult",
    "IterationResult",
    "ConvergenceTracker",
    "ProfileUpdateQueue",
]
