"""Engine configuration.

All knobs of the out-of-core KNN engine live in one frozen dataclass so that
experiments are fully described by (dataset, profiles, EngineConfig, seed).
Defaults reproduce the paper's setup: two resident partitions, the
sequential traversal heuristic as the baseline, and direct edges included in
the candidate set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.core.parallel import BACKENDS
from repro.pigraph.traversal import HEURISTICS
from repro.partition.partitioners import available_partitioners
from repro.similarity.measures import MEASURES
from repro.storage.disk_model import DISK_PRESETS, DiskModel
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one :class:`~repro.core.engine.KNNEngine` instance.

    Parameters
    ----------
    k:
        Number of nearest neighbours maintained per user.
    num_partitions:
        ``m`` — the number of phase-1 partitions.
    partitioner:
        Phase-1 strategy: ``contiguous`` (the paper's n/m split), ``hash``,
        ``ldg`` or ``greedy-locality``.
    heuristic:
        PI-graph traversal heuristic: ``sequential``, ``degree-high-low``,
        ``degree-low-high`` or ``greedy-resident``.
    measure:
        Similarity measure name; ``None`` uses the profile store's default
        (Jaccard for sparse profiles, cosine for dense ones).
    disk_model:
        ``"hdd"``, ``"ssd"``, ``"instant"`` or a custom
        :class:`~repro.storage.disk_model.DiskModel`.
    max_resident_partitions:
        Cache slots for phase 4; the paper uses 2.
    memory_budget_bytes:
        Optional hard byte budget for resident partitions (``None`` = only
        the slot limit applies).
    include_direct_edges:
        Whether the direct edges of ``G(t)`` are added to the hash table
        alongside the neighbours-of-neighbours tuples (the paper does).
    max_pairs_per_bridge:
        Optional cap on the per-bridge-vertex cross product when generating
        candidate tuples (``None`` reproduces the paper exactly).
    backend:
        Phase-4 scoring backend: ``"serial"`` (one kernel call per residency
        step), ``"thread"`` (a GIL-sharing thread pool of ``num_threads``),
        or ``"process"`` (a pool of ``num_workers`` processes that re-open
        the profile store read-only by path and score tuple shards against
        mmap-served slices).  All three produce bit-identical graphs.
    num_threads:
        Worker threads for the ``thread`` backend (1 = sequential).
    num_workers:
        Worker processes for the ``process`` backend; also the shard count
        of the deterministic per-shard top-K merge into ``G(t+1)``.
        ``num_workers=1`` (or a platform without ``fork``) skips the pool
        entirely and scores in-process — identical results, no pipe cost.
    profile_segment_rows:
        Row count per on-disk sparse profile segment (the unit phase-5
        incremental updates rewrite).  ``None`` aligns segments with the
        contiguous partitioner's n/m split (one segment per partition) and
        falls back to the store's default for scattering partitioners.
    incremental_phase4:
        Reuse the previous iteration's similarity scores for candidate
        tuples whose endpoints' profiles are unchanged (tracked through the
        profile store's touched-row deltas).  Scores are deterministic per
        pair, so the produced graphs are **bit-identical** with the toggle
        on or off; iterations after the first just rescore only tuples with
        at least one touched endpoint (plus never-seen pairs).
    dirty_scheduling:
        Plan each iteration's residency steps around the partitions the
        update churn actually touched: steps whose two partitions are both
        clean and whose pair was scored at the score cache's generation are
        served from the cache without loading a partition, and the
        remaining steps run dirty-first (convergence-driven ordering).
        Needs ``incremental_phase4``; every situation the delta history
        cannot vouch for (reload, compaction, recovery) falls back to the
        full schedule.  Produced graphs are **bit-identical** with the
        toggle on or off — per-tuple cache validity is still checked
        against the touched-row mask, and the G(t+1) merge is a pure
        function of the scored candidate multiset.
    score_cache_entries:
        Capacity of the phase-4 score cache in (pair, score) entries
        (16 bytes each).  An iteration whose scored tuple set exceeds the
        cap leaves the cache empty — the next iteration then rescores
        everything — so memory stays bounded on huge candidate sets.
    adaptive_score_cache:
        Measure the per-tuple cost of cache lookups against their expected
        saving (hit rate × kernel cost) and skip the lookups while they do
        not pay — recovering the last few percent on dense low-dimensional
        kernels whose evaluation costs about as much as the lookup itself.
        Skipping only means scoring every tuple, so produced graphs stay
        **bit-identical** with the policy on or off.  Off by default
        because the decision rests on machine-dependent wall-clock
        measurements: per-iteration reuse counters
        (``IterationResult.reused_scores``/``lookups_skipped``) then vary
        by hardware, which reproducibility-sensitive experiments may not
        want.
    shard_parallel:
        Execute *whole residency steps* concurrently instead of one step at
        a time: the dirty-scheduled step sequence is colored into waves of
        pairwise partition-disjoint steps (``plan_shard_schedule``) and each
        wave's steps run in parallel on the configured backend, every worker
        exclusively owning its step's partitions for the wave
        (:class:`~repro.core.parallel.ShardCoordinator`).  Per-shard deltas
        are pre-reduced to each source's top-K and merged through the
        order-independent sharded batch merge, so produced graphs and
        profile bytes stay **bit-identical** with the toggle on or off, on
        every backend.  ``memory_budget_bytes`` then caps each *worker's*
        resident profile bytes (its step's slices — the sharded analogue of
        the serial two-resident-partitions envelope) instead of the
        partition cache.  Off by default: one-step-at-a-time residency is
        the paper's cost model and the right shape for single-core boxes.
    seed:
        Seed for the random initial KNN graph.
    shard_timeout_seconds:
        Per-shard watchdog timeout for the ``process`` backend: a shard
        whose worker produces no result within this many seconds is treated
        as hung, the pool is respawned and the shard retried (default
        ``None`` = wait forever, the historical behaviour).
    durable:
        Run the engine in fault-tolerant mode: queued profile changes go
        through an fsynced write-ahead log, every iteration commits a
        checksummed checkpoint epoch under ``workdir/commits/``, and
        :meth:`~repro.core.engine.KNNEngine.recover` can resume the run
        after a crash with exactly-once update semantics.  Off by default —
        durability costs one checkpoint write per iteration.
    fault_plan:
        Optional :class:`repro.testing.faults.FaultPlan` consulted at the
        runtime's named crash points and file-operation hooks.  Tests and
        benchmarks use it to script exact failure schedules; production
        runs leave it ``None`` (the hooks are no-ops).  The plan is live
        runtime state: it is excluded from checkpoint manifests and shared
        (never copied) by ``with_overrides``.
    """

    k: int = 10
    num_partitions: int = 8
    partitioner: str = "contiguous"
    heuristic: str = "sequential"
    measure: Optional[str] = None
    disk_model: Union[str, DiskModel] = "ssd"
    max_resident_partitions: int = 2
    memory_budget_bytes: Optional[float] = None
    include_direct_edges: bool = True
    max_pairs_per_bridge: Optional[int] = None
    backend: str = "thread"
    num_threads: int = 1
    num_workers: int = 1
    profile_segment_rows: Optional[int] = None
    incremental_phase4: bool = True
    dirty_scheduling: bool = True
    score_cache_entries: int = 4_000_000
    adaptive_score_cache: bool = False
    shard_parallel: bool = False
    seed: Optional[int] = 0
    shard_timeout_seconds: Optional[float] = None
    durable: bool = False
    fault_plan: Optional[object] = None

    def __post_init__(self):
        check_positive_int(self.k, "k")
        check_positive_int(self.num_partitions, "num_partitions")
        check_positive_int(self.max_resident_partitions, "max_resident_partitions")
        check_positive_int(self.num_threads, "num_threads")
        check_positive_int(self.num_workers, "num_workers")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {', '.join(BACKENDS)}"
            )
        if self.max_resident_partitions < 2:
            raise ValueError(
                "max_resident_partitions must be at least 2: phase 4 needs the two "
                "partitions of a PI edge resident simultaneously"
            )
        if self.partitioner not in available_partitioners():
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; "
                f"known: {', '.join(available_partitioners())}"
            )
        if self.heuristic not in HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; known: {', '.join(sorted(HEURISTICS))}"
            )
        if self.measure is not None and self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; known: {', '.join(sorted(MEASURES))}"
            )
        if isinstance(self.disk_model, str) and self.disk_model not in DISK_PRESETS:
            raise ValueError(
                f"unknown disk model {self.disk_model!r}; "
                f"known presets: {', '.join(sorted(DISK_PRESETS))}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive when given")
        if self.max_pairs_per_bridge is not None and self.max_pairs_per_bridge <= 0:
            raise ValueError("max_pairs_per_bridge must be positive when given")
        if self.profile_segment_rows is not None and self.profile_segment_rows <= 0:
            raise ValueError("profile_segment_rows must be positive when given")
        check_positive_int(self.score_cache_entries, "score_cache_entries")
        if self.shard_timeout_seconds is not None and self.shard_timeout_seconds <= 0:
            raise ValueError("shard_timeout_seconds must be positive when given")

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """Return a copy of this configuration with the given fields replaced."""
        return replace(self, **kwargs)
