"""Checkpointing: persist and restore the state of a KNN computation.

An out-of-core computation over millions of users can run for hours, and the
paper's setting (profiles keep changing, iterations are independent) makes it
natural to stop after any iteration and resume later.  A checkpoint captures
exactly the state the next iteration needs:

* the scored KNN graph ``G(t)`` (binary, NumPy-packed), and
* the iteration counter plus the engine configuration fingerprint,

while the profiles ``P(t)`` already live on disk in the engine's working
directory.  ``save_checkpoint``/``load_checkpoint`` work on any
:class:`~repro.graph.knn_graph.KNNGraph`, so they are also handy for caching
expensive brute-force ground truths in benchmarks.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.graph.knn_graph import KNNGraph

PathLike = Union[str, os.PathLike]

_MAGIC = b"RPCK0001"


def save_knn_graph(path: PathLike, graph: KNNGraph) -> None:
    """Serialise a scored KNN graph to a compact binary file."""
    path = Path(path)
    rows = []
    for src, dst, score in graph.edges():
        rows.append((src, dst, score))
    sources = np.asarray([r[0] for r in rows], dtype=np.int64)
    destinations = np.asarray([r[1] for r in rows], dtype=np.int64)
    scores = np.asarray([r[2] for r in rows], dtype=np.float64)
    header = np.asarray([graph.num_vertices, graph.k, len(rows)], dtype=np.int64)
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(header.tobytes())
        handle.write(sources.tobytes())
        handle.write(destinations.tobytes())
        handle.write(scores.tobytes())


def load_knn_graph(path: PathLike) -> KNNGraph:
    """Restore a KNN graph written by :func:`save_knn_graph`."""
    path = Path(path)
    raw = path.read_bytes()
    if raw[:len(_MAGIC)] != _MAGIC:
        raise ValueError(f"{path} is not a repro KNN-graph checkpoint (bad magic)")
    offset = len(_MAGIC)
    header = np.frombuffer(raw, dtype=np.int64, count=3, offset=offset)
    offset += 3 * 8
    num_vertices, k, num_edges = (int(x) for x in header)
    expected_size = offset + num_edges * (8 + 8 + 8)
    if len(raw) < expected_size:
        raise ValueError(
            f"{path} is truncated: expected {expected_size} bytes, found {len(raw)}")
    sources = np.frombuffer(raw, dtype=np.int64, count=num_edges, offset=offset)
    offset += num_edges * 8
    destinations = np.frombuffer(raw, dtype=np.int64, count=num_edges, offset=offset)
    offset += num_edges * 8
    scores = np.frombuffer(raw, dtype=np.float64, count=num_edges, offset=offset)
    if len(scores) != num_edges:
        raise ValueError(f"{path} is truncated: expected {num_edges} edges")
    graph = KNNGraph(num_vertices, k)
    for src, dst, score in zip(sources, destinations, scores):
        graph.add_candidate(int(src), int(dst), float(score))
    return graph


def save_checkpoint(directory: PathLike, graph: KNNGraph, iteration: int,
                    metadata: Optional[Dict[str, object]] = None) -> Path:
    """Write a resumable checkpoint (graph + manifest) into ``directory``.

    Returns the manifest path.  ``metadata`` may carry anything JSON-
    serialisable (the engine stores its configuration fingerprint there).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph_path = directory / f"knn_graph_{iteration:05d}.bin"
    save_knn_graph(graph_path, graph)
    manifest = {
        "iteration": int(iteration),
        "graph_file": graph_path.name,
        "num_vertices": graph.num_vertices,
        "k": graph.k,
        "metadata": metadata or {},
    }
    manifest_path = directory / "checkpoint.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return manifest_path


def load_checkpoint(directory: PathLike) -> Tuple[KNNGraph, int, Dict[str, object]]:
    """Load the latest checkpoint from ``directory``.

    Returns ``(graph, iteration, metadata)``.  Raises ``FileNotFoundError``
    when no checkpoint exists.
    """
    directory = Path(directory)
    manifest_path = directory / "checkpoint.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no checkpoint manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    graph = load_knn_graph(directory / manifest["graph_file"])
    if graph.num_vertices != manifest["num_vertices"] or graph.k != manifest["k"]:
        raise ValueError("checkpoint manifest does not match the stored graph")
    return graph, int(manifest["iteration"]), dict(manifest.get("metadata", {}))


def has_checkpoint(directory: PathLike) -> bool:
    """True when ``directory`` holds a loadable checkpoint manifest."""
    return (Path(directory) / "checkpoint.json").exists()
