"""Checkpointing: persist and restore the state of a KNN computation.

An out-of-core computation over millions of users can run for hours, and the
paper's setting (profiles keep changing, iterations are independent) makes it
natural to stop after any iteration and resume later.  A checkpoint captures
exactly the state the next iteration needs:

* the scored KNN graph ``G(t)`` (binary, NumPy-packed), and
* the iteration counter plus the engine configuration fingerprint,

while the profiles ``P(t)`` already live on disk in the engine's working
directory.  ``save_checkpoint``/``load_checkpoint`` work on any
:class:`~repro.graph.knn_graph.KNNGraph`, so they are also handy for caching
expensive brute-force ground truths in benchmarks.

A **portable** checkpoint (:func:`save_portable_checkpoint`) additionally
captures ``P(t)`` itself and the phase-4 score cache, so the checkpoint
directory is self-contained (survives the engine's scratch workdir being
deleted).  The profile snapshot **hard-links** the store's immutable files
— the segmented sparse layout only ever *replaces* segment files via
rename, never rewrites them in place — so snapshotting a multi-gigabyte
store costs a directory entry per segment, not a copy; only the small
mutable files (meta, journal, item table) and in-place-updated dense
matrices are copied.  The score cache rides along as a compact binary of
``(pair key, score)`` arrays keyed by the store generation: a resumed run
that cannot vouch for that generation simply pays one full rescore.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.iteration import Phase4ScoreCache
from repro.graph.knn_graph import KNNGraph
from repro.storage.disk_model import DiskModel
from repro.storage.io_stats import IOStats
from repro.storage.profile_store import OnDiskProfileStore

PathLike = Union[str, os.PathLike]

_MAGIC = b"RPCK0001"
_CACHE_MAGIC = b"RPSC0001"


def save_knn_graph(path: PathLike, graph: KNNGraph, fault_plan=None) -> None:
    """Serialise a scored KNN graph to a compact binary file.

    ``fault_plan`` (see :mod:`repro.testing.faults`) can fail the write or
    truncate the written file to model a crash mid-serialisation; the
    loader's magic/size checks and the checkpoint-level ``checksums.json``
    are what must catch the damage.
    """
    path = Path(path)
    rows = []
    for src, dst, score in graph.edges():
        rows.append((src, dst, score))
    sources = np.asarray([r[0] for r in rows], dtype=np.int64)
    destinations = np.asarray([r[1] for r in rows], dtype=np.int64)
    scores = np.asarray([r[2] for r in rows], dtype=np.float64)
    header = np.asarray([graph.num_vertices, graph.k, len(rows)], dtype=np.int64)
    if fault_plan is not None:
        fault_plan.file_op("write", path)
    with path.open("wb") as handle:
        handle.write(_MAGIC)
        handle.write(header.tobytes())
        handle.write(sources.tobytes())
        handle.write(destinations.tobytes())
        handle.write(scores.tobytes())
    if fault_plan is not None:
        fault_plan.after_file_op("write", path)


def load_knn_graph(path: PathLike) -> KNNGraph:
    """Restore a KNN graph written by :func:`save_knn_graph`."""
    path = Path(path)
    raw = path.read_bytes()
    if raw[:len(_MAGIC)] != _MAGIC:
        raise ValueError(f"{path} is not a repro KNN-graph checkpoint (bad magic)")
    offset = len(_MAGIC)
    header = np.frombuffer(raw, dtype=np.int64, count=3, offset=offset)
    offset += 3 * 8
    num_vertices, k, num_edges = (int(x) for x in header)
    expected_size = offset + num_edges * (8 + 8 + 8)
    if len(raw) < expected_size:
        raise ValueError(
            f"{path} is truncated: expected {expected_size} bytes, found {len(raw)}")
    sources = np.frombuffer(raw, dtype=np.int64, count=num_edges, offset=offset)
    offset += num_edges * 8
    destinations = np.frombuffer(raw, dtype=np.int64, count=num_edges, offset=offset)
    offset += num_edges * 8
    scores = np.frombuffer(raw, dtype=np.float64, count=num_edges, offset=offset)
    if len(scores) != num_edges:
        raise ValueError(f"{path} is truncated: expected {num_edges} edges")
    graph = KNNGraph(num_vertices, k)
    for src, dst, score in zip(sources, destinations, scores):
        graph.add_candidate(int(src), int(dst), float(score))
    return graph


def save_checkpoint(directory: PathLike, graph: KNNGraph, iteration: int,
                    metadata: Optional[Dict[str, object]] = None,
                    fault_plan=None) -> Path:
    """Write a resumable checkpoint (graph + manifest) into ``directory``.

    Returns the manifest path.  ``metadata`` may carry anything JSON-
    serialisable (the engine stores its configuration fingerprint there).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph_path = directory / f"knn_graph_{iteration:05d}.bin"
    save_knn_graph(graph_path, graph, fault_plan=fault_plan)
    manifest = {
        "iteration": int(iteration),
        "graph_file": graph_path.name,
        "num_vertices": graph.num_vertices,
        "k": graph.k,
        "metadata": metadata or {},
    }
    manifest_path = directory / "checkpoint.json"
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return manifest_path


def load_checkpoint(directory: PathLike) -> Tuple[KNNGraph, int, Dict[str, object]]:
    """Load the latest checkpoint from ``directory``.

    Returns ``(graph, iteration, metadata)``.  Raises ``FileNotFoundError``
    when no checkpoint exists.
    """
    directory = Path(directory)
    manifest_path = directory / "checkpoint.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no checkpoint manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    graph = load_knn_graph(directory / manifest["graph_file"])
    if graph.num_vertices != manifest["num_vertices"] or graph.k != manifest["k"]:
        raise ValueError("checkpoint manifest does not match the stored graph")
    return graph, int(manifest["iteration"]), dict(manifest.get("metadata", {}))


def has_checkpoint(directory: PathLike) -> bool:
    """True when ``directory`` holds a loadable checkpoint manifest."""
    return (Path(directory) / "checkpoint.json").exists()


# -- portable checkpoints ----------------------------------------------------


def save_score_cache(path: PathLike, cache: Phase4ScoreCache) -> None:
    """Serialise a phase-4 score cache (possibly empty) to a binary file."""
    path = Path(path)
    measure = (cache.measure or "").encode("utf-8")
    empty = cache.keys is None or cache.generation is None
    header = np.asarray([
        -1 if empty else int(cache.generation),
        int(cache.num_vertices),
        0 if empty else len(cache.keys),
        len(measure),
        int(cache.max_entries),
    ], dtype=np.int64)
    with path.open("wb") as handle:
        handle.write(_CACHE_MAGIC)
        handle.write(header.tobytes())
        handle.write(measure)
        if not empty:
            handle.write(np.asarray(cache.keys, dtype=np.int64).tobytes())
            handle.write(np.asarray(cache.values, dtype=np.float64).tobytes())


def load_score_cache(path: PathLike) -> Phase4ScoreCache:
    """Restore a score cache written by :func:`save_score_cache`."""
    path = Path(path)
    raw = path.read_bytes()
    if raw[:len(_CACHE_MAGIC)] != _CACHE_MAGIC:
        raise ValueError(f"{path} is not a repro score-cache file (bad magic)")
    offset = len(_CACHE_MAGIC)
    header = np.frombuffer(raw, dtype=np.int64, count=5, offset=offset)
    offset += 5 * 8
    generation, num_vertices, num_entries, measure_len, max_entries = (
        int(x) for x in header)
    if num_entries < 0 or measure_len < 0 or num_vertices < 0:
        raise ValueError(f"{path} has a corrupt header (negative counts)")
    measure = raw[offset:offset + measure_len].decode("utf-8")
    offset += measure_len
    cache = Phase4ScoreCache(max_entries=max(1, max_entries))
    if generation < 0:
        return cache
    expected = offset + num_entries * 16
    if len(raw) < expected:
        raise ValueError(
            f"{path} is truncated: expected {expected} bytes, found {len(raw)}")
    keys = np.frombuffer(raw, dtype=np.int64, count=num_entries, offset=offset)
    offset += num_entries * 8
    values = np.frombuffer(raw, dtype=np.float64, count=num_entries, offset=offset)
    cache.keys = keys.copy()
    cache.values = values.copy()
    cache.measure = measure or None
    cache.generation = generation
    cache.num_vertices = num_vertices
    return cache


@dataclass
class CloneStats:
    """Accounting of one profile-store clone (snapshot or resume).

    ``linked_bytes`` entered the destination as hard links (a directory
    entry each — no data was read or written); ``copied_bytes`` were
    streamed through ``shutil.copy2``.  The perf suite's resume gate uses
    the split to prove that resuming a sparse store never materialises a
    full profile copy.
    """

    linked_files: int = 0
    copied_files: int = 0
    linked_bytes: int = 0
    copied_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.linked_bytes + self.copied_bytes


def clone_profile_files(source_dir: PathLike, dest_dir: PathLike,
                        fault_plan=None) -> CloneStats:
    """Clone a profile store's files: hard-link immutable, copy mutable.

    The split is the store's own contract
    (:meth:`OnDiskProfileStore.linkable_snapshot_file`, kept next to the
    write paths it describes): files the store only ever replaces
    atomically (sparse segments, the monolithic v1/v2 CSR files) are
    hard-linked — both sides can keep using them, because every rewrite
    swaps in a fresh inode — while files mutated in place (meta, journal,
    item table, dense matrix/norms) are copied.  Cross-filesystem links
    fall back to copies transparently.  Used in both directions: taking a
    snapshot (live store → checkpoint) and resuming one (checkpoint →
    fresh workdir).  Stale ``profiles_*`` files already present in the
    destination but absent from the source are removed.
    """
    source = Path(source_dir)
    dest = Path(dest_dir)
    dest.mkdir(parents=True, exist_ok=True)
    if dest.resolve() == source.resolve():
        # the copy loop unlinks each target first — cloning a directory
        # onto itself would delete the files before reading them
        raise ValueError(
            f"clone destination {dest} is the source directory itself; "
            "choose a directory outside the store")
    stats = CloneStats()
    for path in sorted(source.glob("profiles_*")):
        if path.name.endswith(".tmp"):
            continue
        target = dest / path.name
        if target.exists():
            target.unlink()
        size = path.stat().st_size
        if OnDiskProfileStore.linkable_snapshot_file(path.name):
            try:
                if fault_plan is not None:
                    # an injected link failure is an OSError like any other
                    # unsupported-link condition, so it exercises exactly
                    # the production fallback below
                    fault_plan.file_op("link", target)
                os.link(path, target)
                stats.linked_files += 1
                stats.linked_bytes += size
                continue
            except OSError:
                pass  # cross-device or unsupported: fall through to a copy
        shutil.copy2(path, target)
        stats.copied_files += 1
        stats.copied_bytes += size
    current = {path.name for path in source.glob("profiles_*")}
    for path in dest.glob("profiles_*"):
        if path.name not in current:
            path.unlink()
    return stats


def snapshot_profile_store(store: OnDiskProfileStore, directory: PathLike,
                           fault_plan=None) -> Path:
    """Snapshot the on-disk profiles into ``directory`` (hard-link + copy).

    See :func:`clone_profile_files` for the link/copy split (including the
    refusal to clone a store onto its own directory).  Returns the
    snapshot directory, itself a valid
    :class:`~repro.storage.profile_store.OnDiskProfileStore` base dir.
    """
    dest = Path(directory)
    clone_profile_files(store.base_dir, dest, fault_plan=fault_plan)
    return dest


def restore_profile_store(snapshot_dir: PathLike, dest_dir: PathLike,
                          disk_model: Union[str, DiskModel] = "ssd",
                          io_stats: Optional[IOStats] = None,
                          ) -> Tuple[OnDiskProfileStore, CloneStats]:
    """Rebuild a working profile store from a snapshot, zero-copy.

    The inverse of :func:`snapshot_profile_store`: the snapshot's immutable
    files are hard-linked into ``dest_dir`` and only the small mutable
    files (meta, journal, item table) and in-place-updated dense matrices
    are copied, so resuming a multi-gigabyte sparse store costs a
    directory entry per segment — no profile matrix is ever materialised
    in memory.  The returned handle owns ``dest_dir`` and may be mutated
    freely: in-place writes only ever touch copied files, and atomic
    replacements give linked files a fresh inode, so the snapshot's bytes
    are never written through.  Copied bytes are charged to the store's
    I/O stats (``io_stats`` when given, else the store's own) as one
    sequential write — mirroring what a fresh ``create`` would have
    charged for the same data — while links cost nothing.
    """
    stats = clone_profile_files(snapshot_dir, dest_dir)
    store = OnDiskProfileStore(dest_dir, disk_model=disk_model,
                               io_stats=io_stats)
    if stats.copied_bytes:
        store.io_stats.record_write(
            stats.copied_bytes,
            store._disk.write_cost(stats.copied_bytes, sequential=True))
    return store, stats


def save_portable_checkpoint(directory: PathLike, graph: KNNGraph, iteration: int,
                             profile_store: Optional[OnDiskProfileStore] = None,
                             score_cache: Optional[Phase4ScoreCache] = None,
                             metadata: Optional[Dict[str, object]] = None,
                             fault_plan=None) -> Path:
    """Write a self-contained checkpoint: graph + profiles ``P(t)`` + cache.

    Extends :func:`save_checkpoint` with a hard-linked snapshot of the
    profile store and the phase-4 score cache, so resuming does not depend
    on the engine's (usually temporary) working directory.  Returns the
    manifest path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = save_checkpoint(directory, graph, iteration, metadata=metadata,
                                    fault_plan=fault_plan)
    manifest = json.loads(manifest_path.read_text())
    if profile_store is not None:
        snapshot_profile_store(profile_store, directory / "profiles",
                               fault_plan=fault_plan)
        manifest["profiles_dir"] = "profiles"
    if score_cache is not None:
        cache_name = "score_cache.bin"
        save_score_cache(directory / cache_name, score_cache)
        manifest["score_cache_file"] = cache_name
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return manifest_path


def load_portable_checkpoint(directory: PathLike) -> Tuple[
        KNNGraph, int, Dict[str, object],
        Optional[OnDiskProfileStore], Optional[Phase4ScoreCache]]:
    """Load a portable checkpoint written by :func:`save_portable_checkpoint`.

    Returns ``(graph, iteration, metadata, profile_store, score_cache)``;
    the last two are ``None`` when the checkpoint was saved without them.
    The returned store handle reads the snapshot in place — callers that
    want to mutate profiles should copy it into a fresh working directory
    first (the engine's resume path loads it fully into memory instead).
    """
    directory = Path(directory)
    graph, iteration, metadata = load_checkpoint(directory)
    manifest = json.loads((directory / "checkpoint.json").read_text())
    store = None
    if manifest.get("profiles_dir"):
        store = OnDiskProfileStore(directory / manifest["profiles_dir"],
                                   disk_model="instant")
    cache = None
    if manifest.get("score_cache_file"):
        cache = load_score_cache(directory / manifest["score_cache_file"])
    return graph, iteration, metadata, store, cache


# -- checkpoint integrity -----------------------------------------------------

_CHECKSUMS_NAME = "checksums.json"


def _checkpoint_files(directory: Path) -> List[Path]:
    return sorted(path for path in directory.rglob("*")
                  if path.is_file() and path.name != _CHECKSUMS_NAME
                  and not path.name.endswith(".tmp"))


def write_checkpoint_checksums(directory: PathLike) -> Path:
    """Record a CRC32 for every file of a checkpoint directory.

    ``checksums.json`` is written **last**, after every other file of the
    checkpoint, so its presence doubles as a completeness marker: the
    engine's commit protocol writes the whole epoch into a temporary
    directory, seals it with this file, and only then renames the directory
    into place.  A crash at any earlier instant leaves either no directory
    or one that :func:`verify_checkpoint` rejects.
    """
    directory = Path(directory)
    checksums = {
        str(path.relative_to(directory)): zlib.crc32(path.read_bytes())
        for path in _checkpoint_files(directory)
    }
    target = directory / _CHECKSUMS_NAME
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(checksums, indent=2, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return target


def verify_checkpoint(directory: PathLike) -> bool:
    """Whether a checkpoint directory passes its recorded checksums.

    ``False`` for a missing/unreadable ``checksums.json`` (the epoch never
    finished committing), a file listed there that is missing or whose
    bytes changed, or a loadable-looking directory with extra damage the
    CRCs catch.  Recovery walks epochs newest-first and takes the first
    directory this accepts.
    """
    directory = Path(directory)
    target = directory / _CHECKSUMS_NAME
    if not target.is_file():
        return False
    try:
        checksums = json.loads(target.read_text())
    except ValueError:
        return False
    if not isinstance(checksums, dict):
        return False
    for name, expected in checksums.items():
        path = directory / name
        if not path.is_file():
            return False
        if zlib.crc32(path.read_bytes()) != int(expected):
            return False
    return True
