"""Parallel similarity scoring: thread and process backends.

Phase 4 scores a (possibly large) batch of candidate tuples against the
profiles of the two resident partitions.  The batch is embarrassingly
parallel.  Two parallel backends are provided:

* ``thread`` — a plain thread pool.  The dense-profile kernels are NumPy
  calls that release the GIL, so threads give real speedups with zero
  serialisation of the profile slices.
* ``process`` — a process pool (:class:`ProcessScoringPool`).  Workers
  *never* receive profile data over the pipe: each worker re-opens the
  on-disk profile store read-only by path and serves its slices straight
  from the mapped files (zero-copy for contiguous partitions, cached per
  partition across residency steps), so per task only the tuple shard, the
  score shard and O(1) slice descriptors cross the pipe.  This sidesteps
  the GIL entirely — including the Python-level portions of the kernels
  that threads serialise on.

Both backends return scores aligned with the input tuples row for row
(shards are concatenated in submission order), so results are bit-identical
to the serial path regardless of worker count.
"""

from __future__ import annotations

import atexit
import os
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro.graph.knn_graph import topk_candidate_rows
from repro.storage.memory_manager import MemoryBudget
from repro.storage.profile_store import OnDiskProfileStore, ProfileSlice
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

_logger = get_logger("core.parallel")

#: Recognised values for the ``backend`` knob (config and ``score_tuples``).
BACKENDS = ("serial", "thread", "process")


def _num_chunks(num_tuples: int, num_threads: int, chunk_size: int) -> int:
    """Chunk count for the thread backend: at least one chunk per thread and
    never a chunk larger than ``chunk_size``, clamped so no chunk is empty."""
    return min(num_tuples, max(num_threads, -(-num_tuples // chunk_size)))


def score_tuples(profile_slice: ProfileSlice, tuples: np.ndarray, measure: str,
                 num_threads: int = 1, chunk_size: int = 4096,
                 backend: str = "thread",
                 pool: "Optional[ProcessScoringPool]" = None,
                 generation: Optional[int] = None) -> np.ndarray:
    """Similarity scores for an ``(n, 2)`` tuple array, optionally parallel.

    The result is aligned with ``tuples`` row for row regardless of the
    backend or worker count, so callers never need to re-associate scores
    with pairs.  ``backend="process"`` requires a :class:`ProcessScoringPool`
    whose workers have the same store open; the slice itself stays in the
    calling process and only its user ids cross the pipe.  A pool that is
    kept alive across profile updates must be told the store's current
    ``generation`` (:attr:`OnDiskProfileStore.generation`) so workers drop
    slices cached before the update; with ``None`` the store is assumed
    unchanged for the pool's lifetime.
    """
    check_positive_int(num_threads, "num_threads")
    check_positive_int(chunk_size, "chunk_size")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")
    tuples = np.asarray(tuples, dtype=np.int64)
    if tuples.size == 0:
        return np.zeros(0, dtype=np.float64)
    if tuples.ndim != 2 or tuples.shape[1] != 2:
        raise ValueError("tuples must be an (n, 2) array")
    if backend == "process":
        if pool is None:
            raise ValueError("backend='process' requires a ProcessScoringPool")
        # a contiguous slice can be identified by its span — the store is
        # immutable under a given generation — letting workers cache the load
        ids = profile_slice.user_ids
        key = None
        if len(ids) and int(ids[-1]) - int(ids[0]) + 1 == len(ids):
            key = ("span", int(ids[0]), int(ids[-1]), generation)
        return pool.score(ids, tuples, measure, key=key, generation=generation)
    if backend == "serial" or num_threads == 1 or len(tuples) <= chunk_size:
        return profile_slice.similarity_pairs(tuples, measure)

    # balance the batch across the pool; the chunk count is clamped to the
    # tuple count so a batch barely above chunk_size never degenerates into
    # near-empty chunks
    chunks = np.array_split(tuples, _num_chunks(len(tuples), num_threads, chunk_size))
    results: list = [None] * len(chunks)
    with ThreadPoolExecutor(max_workers=num_threads) as thread_pool:
        futures = {
            thread_pool.submit(profile_slice.similarity_pairs, chunk, measure): index
            for index, chunk in enumerate(chunks)
        }
        for future, index in futures.items():
            results[index] = future.result()
    return np.concatenate(results)


def fork_available() -> bool:
    """Whether this platform can fork worker processes (cheap pool start-up)."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- shared-memory merged-slice row index ------------------------------------

#: Live (not yet closed) :class:`SharedRowIndex` instances.  Weak so an
#: index dropped without ``close()`` can still be collected — its finalizer
#: unlinks the segment — while the atexit sweep and the no-leak assertion in
#: the crash-matrix suite can enumerate whatever is still open.
_ACTIVE_ROW_INDEXES: "weakref.WeakSet" = weakref.WeakSet()


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink-then-close a segment, tolerating every already-gone state."""
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass  # double-unlink or tracker raced us
    try:
        shm.close()
    except BufferError:
        pass  # an exported view still references the mapping


def _sweep_shared_row_indexes() -> None:
    """Close every still-open :class:`SharedRowIndex` (crash-path cleanup).

    Registered with ``atexit`` so an abnormal coordinator exit — e.g. an
    injected crash raised between creating a segment and unlinking it —
    never strands ``/dev/shm`` segments.  Instance finalizers cover the
    garbage-collection path for indexes orphaned mid-run.
    """
    for index in list(_ACTIVE_ROW_INDEXES):
        index.close()


atexit.register(_sweep_shared_row_indexes)


def active_shared_row_indexes() -> "List[SharedRowIndex]":
    """The coordinator-side shared-index segments currently open.

    The crash-matrix suite asserts this is empty after every kill/recover
    cycle: a non-empty result means a crash path leaked a named segment.
    """
    return [index for index in _ACTIVE_ROW_INDEXES if index._shm is not None]


class SharedRowIndex:
    """A merged-slice row index published once to every scoring worker.

    Merging the two resident partitions' slices needs the stable argsort of
    their concatenated user ids (the id→row index of the merged slice).
    Without sharing, *each* worker re-derives that index for *every*
    residency step it scores a shard of.  The coordinator instead computes
    it once per step, writes it into a ``multiprocessing.shared_memory``
    segment — layout ``[n, user_ids (n), order (n)]`` as int64 — and ships
    only the ``(name, n)`` descriptor over the pipe; workers map the
    segment read-only and build the merged slice via
    :meth:`ProfileSlice.merge_indexed` with zero index computation and
    zero index copies.

    Lifecycle: the coordinator creates the segment just before the step's
    ``score`` call and closes+unlinks it right after (``score`` returns
    only when every shard — hence every attachment — is done).  Workers
    keep their attachment alive while their cached merged slice references
    it and drop it when the next step's descriptor arrives; an unlinked
    segment stays readable until the last attachment closes (POSIX).
    """

    def __init__(self, user_ids: np.ndarray, order: np.ndarray):
        user_ids = np.ascontiguousarray(user_ids, dtype=np.int64)
        order = np.ascontiguousarray(order, dtype=np.int64)
        if len(user_ids) != len(order):
            raise ValueError("user_ids and order must have equal length")
        n = len(user_ids)
        self._shm: Optional[shared_memory.SharedMemory] = (
            shared_memory.SharedMemory(create=True, size=max(8, (1 + 2 * n) * 8)))
        data = np.frombuffer(self._shm.buf, dtype=np.int64)
        data[0] = n
        data[1:1 + n] = user_ids
        data[1 + n:1 + 2 * n] = order
        del data  # drop the exported view so close() can succeed
        #: ``(segment name, row count)`` — what crosses the pipe.
        self.descriptor: Tuple[str, int] = (self._shm.name, n)
        # crash safety: if this index is orphaned (exception between create
        # and close) the finalizer unlinks the segment at GC or interpreter
        # exit, and the atexit sweep catches whatever is still reachable
        self._finalizer = weakref.finalize(self, _release_segment, self._shm)
        _ACTIVE_ROW_INDEXES.add(self)

    def close(self) -> None:
        """Unlink and release the segment (idempotent).

        Unlink runs first: it never raises ``BufferError``, so the name is
        removed from ``/dev/shm`` even if a stray exported view makes
        ``close()`` fail (the mapping is then freed at process exit, but
        never leaks a named segment per residency step).
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._finalizer.detach()
        _ACTIVE_ROW_INDEXES.discard(self)
        _release_segment(shm)

    def __enter__(self) -> "SharedRowIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _ensure_shared_resource_tracker() -> None:
    """Start the multiprocessing resource tracker *before* the pool forks.

    Python < 3.13 registers every ``SharedMemory`` — attachments included
    (gh-82300) — with the resource tracker.  When the tracker is already
    running at fork time, parent and workers inherit one tracker whose
    name cache is a set: the workers' attach-time registrations are
    idempotent re-adds, and the coordinator's ``unlink`` removes the name
    exactly once — no spurious "leaked shared_memory" warnings, no
    double-unregister tracebacks.  A tracker started lazily *after* the
    fork would instead be per-process, and each worker's copy would try to
    unlink the coordinator's segments at exit.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
    except Exception:
        pass  # tracker unavailable: shared-index cleanup is best-effort


# -- process backend ---------------------------------------------------------
#
# Worker-side state: one re-opened store per worker process, a small cache
# of per-partition slices (each partition is one contiguous id run under
# the paper's split, so these are zero-copy mmap views — cheap to keep
# resident across residency steps), and the most recently merged slice,
# keyed so that the shards of one residency step all reuse a single merge.
# A pool now *outlives* phase 4 — the engine keeps one alive for the whole
# run — so store immutability is tracked explicitly: every ``score`` call
# carries the store's generation counter, and a worker seeing a newer
# generation than its caches were loaded under re-opens the store and drops
# every cached slice before scoring (phase-5 updates replace journal and
# segment files, so stale maps must never be read).  Cache keys are scoped
# by the caller (phase 4 keys them by iteration) so a partition id reused
# across iterations with different vertices never hits a stale entry.

_WORKER_STORE: Optional[OnDiskProfileStore] = None
_WORKER_PARTS: "dict[object, ProfileSlice]" = {}
_WORKER_SLICE: Tuple[Optional[object], Optional[ProfileSlice]] = (None, None)
_WORKER_GENERATION: Optional[int] = None
_WORKER_INDEX: Tuple[Optional[str], Optional[shared_memory.SharedMemory]] = (
    None, None)

#: Per-partition slices a worker keeps resident (mirrors the coordinator's
#: small partition cache; the slices are views, so this bounds mapping count,
#: not bytes).
_WORKER_PART_CACHE_SLOTS = 4


def _compact_ids(user_ids) -> "Union[range, np.ndarray]":
    """Contiguous id runs travel the pipe as an O(1) ``range``, not an array."""
    ids = np.ascontiguousarray(user_ids, dtype=np.int64)
    if len(ids) and int(ids[-1]) - int(ids[0]) + 1 == len(ids):
        return range(int(ids[0]), int(ids[-1]) + 1)
    return ids


def _init_scoring_worker(store_dir: str) -> None:
    global _WORKER_STORE, _WORKER_PARTS, _WORKER_SLICE, _WORKER_GENERATION
    global _WORKER_INDEX
    # the coordinator charges slice reads once for the whole pool, so the
    # worker's own accounting uses the free device model
    _WORKER_STORE = OnDiskProfileStore(store_dir, disk_model="instant")
    _WORKER_PARTS = {}
    _WORKER_SLICE = (None, None)
    _WORKER_GENERATION = None
    _WORKER_INDEX = (None, None)


def _attach_row_index(descriptor: Tuple[str, int]
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Map a :class:`SharedRowIndex` segment and return ``(user_ids, order)``.

    The attachment is cached by segment name: all shards of one residency
    step (and the cached merged slice built from them) share one mapping.
    When a new step's descriptor arrives the previous merged slice is
    dropped *first* — its arrays view the old segment — and the old
    attachment closed.
    """
    global _WORKER_INDEX, _WORKER_SLICE
    name, n = descriptor
    if _WORKER_INDEX[0] != name:
        _WORKER_SLICE = (None, None)
        old = _WORKER_INDEX[1]
        _WORKER_INDEX = (None, None)
        if old is not None:
            try:
                old.close()
            except BufferError:
                pass  # a stray view still references it; freed at exit
        # attaching re-registers the name with the (shared, pre-fork)
        # resource tracker — an idempotent set-add; the coordinator's
        # unlink removes it (see _ensure_shared_resource_tracker)
        shm = shared_memory.SharedMemory(name=name)
        _WORKER_INDEX = (name, shm)
    data = np.frombuffer(_WORKER_INDEX[1].buf, dtype=np.int64)
    count = int(data[0])
    if count != n:
        raise ValueError(f"shared row index {name} holds {count} rows, "
                         f"descriptor says {n}")
    return data[1:1 + n], data[1 + n:1 + 2 * n]


def _worker_part_slice(part_key: object, user_ids: np.ndarray) -> ProfileSlice:
    if part_key is None:  # uncacheable ad-hoc id set
        return _WORKER_STORE.load_users(user_ids)
    piece = _WORKER_PARTS.get(part_key)
    if piece is None:
        piece = _WORKER_STORE.load_users(user_ids)
        while len(_WORKER_PARTS) >= _WORKER_PART_CACHE_SLOTS:
            _WORKER_PARTS.pop(next(iter(_WORKER_PARTS)))
        _WORKER_PARTS[part_key] = piece
    return piece


def _score_shard(key: object, parts: "Sequence[Tuple[object, np.ndarray]]",
                 tuples: np.ndarray, measure: str,
                 generation: Optional[int] = None,
                 row_index: Optional[Tuple[str, int]] = None,
                 fault: Optional[Tuple[str, float]] = None) -> np.ndarray:
    """Score one tuple shard against the union of the given partition slices.

    ``parts`` is ``[(part_key, user_ids), ...]``; each partition is loaded
    (zero-copy for contiguous runs) and cached by key, and the merged slice
    is cached per ``key`` so all shards of one residency step share it.
    Merging per-partition slices is exactly what the in-process backends do,
    so scores stay bit-identical.  A ``generation`` newer than the one the
    caches were loaded under means the store files changed underneath us
    (phase-5 updates): the store is re-opened and every cached slice dropped
    before anything is loaded.  ``row_index`` names a
    :class:`SharedRowIndex` segment carrying the two partitions' merged
    id→row index, replacing the per-step argsort re-gather; merging through
    it is exactly equivalent (:meth:`ProfileSlice.merge_indexed`).
    """
    global _WORKER_SLICE, _WORKER_GENERATION
    if fault is not None:
        # injected worker fault (see repro.testing.faults): the coordinator
        # attaches the directive to exactly one shard of one score attempt
        mode, seconds = fault
        if mode == "kill":
            os._exit(43)  # hard death: no cleanup, no exception over the pipe
        elif mode == "hang":
            time.sleep(seconds)
    if generation is not None and generation != _WORKER_GENERATION:
        _WORKER_STORE.reload()
        _WORKER_PARTS.clear()
        _WORKER_SLICE = (None, None)
        _WORKER_GENERATION = generation
    if key is None or _WORKER_SLICE[0] != key:
        pieces = [_worker_part_slice(part_key, user_ids)
                  for part_key, user_ids in parts]
        if row_index is not None and len(pieces) == 2:
            user_ids, order = _attach_row_index(row_index)
            merged: Optional[ProfileSlice] = pieces[0].merge_indexed(
                pieces[1], user_ids, order)
        else:
            merged = None
            for piece in pieces:
                merged = piece if merged is None else merged.merge(piece)
        _WORKER_SLICE = (key, merged)
    return _WORKER_SLICE[1].similarity_pairs(tuples, measure)


def _terminate_executor(executor: Optional[ProcessPoolExecutor]) -> None:
    """Kill-and-reap teardown shared by the pool and the shard coordinator.

    ``shutdown(wait=False)`` alone leaves a *hung* worker running — the
    executor only reaps workers that return — so any process still alive
    after the shutdown is killed explicitly.  Tolerates broken executors
    and ``None``.
    """
    if executor is None:
        return
    processes = list(getattr(executor, "_processes", {}).values())
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass  # a broken pool may refuse; the kills below still run
    for process in processes:
        if process.is_alive():
            process.kill()
    for process in processes:
        process.join(timeout=5.0)


class ScoringPoolBroken(RuntimeError):
    """The scoring pool failed ``max_retries`` consecutive attempts.

    Raised by :meth:`ProcessScoringPool.score` after respawn-and-retry is
    exhausted; phase 4 catches it and degrades to the in-process path
    (bit-identical results, just slower), so a persistently failing worker
    environment never takes the iteration down.
    """


class ProcessScoringPool:
    """A supervised pool of scoring workers that re-open one store by path.

    Tuple shards are split deterministically (``np.array_split`` order) and
    the per-shard score arrays are concatenated in submission order, so the
    assembled result is bit-identical to a serial ``similarity_pairs`` call.
    The pool is designed to live for a whole engine run — fork start-up is
    paid once, not once per iteration — with worker caches invalidated
    through the ``generation`` argument of :meth:`score` whenever phase 5
    changes the store underneath.  Use as a context manager, or call
    :meth:`shutdown`.

    Supervision: a dead worker surfaces as :class:`BrokenProcessPool`; a
    hung worker is caught by the per-shard watchdog (``shard_timeout``
    seconds per shard, ``None`` = wait forever).  Either way the pool is
    torn down (leftover processes killed), respawned, and the whole shard
    batch retried with capped exponential backoff — retrying the full batch
    keeps the deterministic shard/concatenation order, so results stay
    bit-identical under any kill schedule.  After ``max_retries``
    consecutive failures :class:`ScoringPoolBroken` is raised for the
    caller to degrade gracefully.
    """

    RETRY_BACKOFF_BASE = 0.05
    RETRY_BACKOFF_CAP = 1.0

    def __init__(self, store: Union[OnDiskProfileStore, str, os.PathLike],
                 num_workers: int = 1,
                 shard_timeout: Optional[float] = None,
                 max_retries: int = 3,
                 fault_plan=None):
        check_positive_int(num_workers, "num_workers")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive when given")
        check_positive_int(max_retries, "max_retries")
        store_dir = store.base_dir if isinstance(store, OnDiskProfileStore) else store
        self._store_dir = str(store_dir)
        self._num_workers = num_workers
        self._shard_timeout = shard_timeout
        self._max_retries = max_retries
        self._fault_plan = fault_plan
        self._respawns = 0
        self._executor = self._build_executor()

    def _build_executor(self) -> ProcessPoolExecutor:
        # workers must inherit a running resource tracker so shared-index
        # segments are tracked by one process, not one copy per worker
        _ensure_shared_resource_tracker()
        # fork (where available) shares the parent's imports copy-on-write;
        # the workers re-open the store themselves in the initializer
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(
            max_workers=self._num_workers,
            mp_context=context,
            initializer=_init_scoring_worker,
            initargs=(self._store_dir,),
        )

    def terminate(self) -> None:
        """Tear down the executor without waiting on its workers.

        ``shutdown(wait=False)`` alone leaves a *hung* worker running — the
        executor only reaps workers that return — so any process still
        alive after the shutdown is killed explicitly; otherwise a single
        sleeping worker would pin its store mappings for the rest of the
        run.  Safe to call repeatedly (and after :meth:`shutdown`).
        """
        executor, self._executor = self._executor, None
        _terminate_executor(executor)

    def _respawn(self) -> None:
        """Replace the (broken or hung) executor with a fresh one."""
        self.terminate()
        self._respawns += 1
        self._executor = self._build_executor()

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def respawns(self) -> int:
        """How many times supervision replaced the worker pool."""
        return self._respawns

    def score(self, user_ids: Optional[np.ndarray], tuples: np.ndarray,
              measure: str, key: object = None,
              parts: "Optional[Sequence[Tuple[object, np.ndarray]]]" = None,
              generation: Optional[int] = None,
              row_index: Optional[Tuple[str, int]] = None) -> np.ndarray:
        """Score ``tuples`` against a set of loaded profiles, sharded.

        ``parts`` — ``[(part_key, user_ids), ...]`` — names the resident
        partitions of one residency step: workers load each partition slice
        once (zero-copy for a contiguous partition), keep it cached by
        ``part_key`` across steps, and merge exactly as the in-process
        backends do, so scores stay bit-identical.  Without ``parts``, the
        flat ``user_ids`` array is loaded as one slice (cached under ``key``
        when given).  ``key`` identifies the merged slice across the shards
        of one call — phase 4 passes one key per residency step.

        ``generation`` is the store's update counter: a pool that survives
        profile updates (the engine keeps one alive across iterations) must
        pass the current value so workers invalidate their cached slices
        after every phase-5 batch.  ``None`` keeps the legacy contract (the
        store never changes while the pool is alive).

        ``row_index`` is the descriptor of a :class:`SharedRowIndex`
        holding the merged id→row index of exactly two ``parts``; workers
        then skip the per-step merge argsort.  The caller must keep the
        segment alive until this call returns (every attachment happens
        inside the shard tasks) and may unlink it immediately after.
        """
        tuples = np.asarray(tuples, dtype=np.int64)
        if tuples.size == 0:
            return np.zeros(0, dtype=np.float64)
        if tuples.ndim != 2 or tuples.shape[1] != 2:
            raise ValueError("tuples must be an (n, 2) array")
        if parts is None:
            if user_ids is None:
                raise ValueError("provide user_ids or parts")
            part_key = ("slice", key) if key is not None else None
            parts = [(part_key, _compact_ids(user_ids))]
        else:
            parts = [(part_key, _compact_ids(ids)) for part_key, ids in parts]
        shards = [shard for shard
                  in np.array_split(tuples, min(self._num_workers, len(tuples)))
                  if len(shard)]
        for attempt in range(self._max_retries + 1):
            fault = (self._fault_plan.take_worker_fault()
                     if self._fault_plan is not None else None)
            try:
                return self._score_attempt(
                    key, parts, shards, measure, generation, row_index, fault)
            except (BrokenProcessPool, FutureTimeoutError) as exc:
                kind = ("shard timeout" if isinstance(exc, FutureTimeoutError)
                        else "worker died")
                if attempt >= self._max_retries:
                    raise ScoringPoolBroken(
                        f"scoring pool failed {attempt + 1} consecutive "
                        f"attempts (last: {kind})") from exc
                delay = min(self.RETRY_BACKOFF_CAP,
                            self.RETRY_BACKOFF_BASE * (2 ** attempt))
                _logger.warning(
                    "scoring pool %s (attempt %d/%d); respawning workers and "
                    "retrying the shard batch in %.2fs",
                    kind, attempt + 1, self._max_retries + 1, delay)
                time.sleep(delay)
                self._respawn()
        raise AssertionError("unreachable")  # pragma: no cover

    def _score_attempt(self, key, parts, shards, measure, generation,
                       row_index, fault) -> np.ndarray:
        """One submission of the full shard batch (the retry unit).

        A ``fault`` directive ``(mode, shard_index, seconds)`` is attached
        to exactly the targeted shard.  The per-shard watchdog applies the
        timeout to each ``result()`` wait; on expiry the not-yet-started
        shards are cancelled before the supervisor respawns the pool.
        """
        futures = []
        for index, shard in enumerate(shards):
            shard_fault = None
            if fault is not None and index == fault[1] % len(shards):
                shard_fault = (fault[0], fault[2])
            futures.append(self._executor.submit(
                _score_shard, key, parts, shard, measure, generation,
                row_index, shard_fault))
        try:
            return np.concatenate(
                [future.result(timeout=self._shard_timeout)
                 for future in futures])
        except FutureTimeoutError:
            for future in futures:
                future.cancel()
            raise

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessScoringPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


# -- shard-parallel wave execution --------------------------------------------
#
# The pool above parallelises *within* one residency step (tuple shards of a
# single partition pair).  The coordinator below parallelises *across* steps:
# ``plan_shard_schedule`` colors the step sequence into waves of pairwise
# partition-disjoint steps, and within a wave each worker executes whole
# steps — exclusively owning its step's partitions for the wave — against its
# own mmap slices.  The worker contract is deliberately narrow and
# serialisable: a ShardStepTask descriptor goes in, a ShardDelta comes out,
# and nothing else crosses the boundary, so a multi-node RPC backend can
# replace the process pool without touching phase 4.


@dataclass(frozen=True)
class ShardStepTask:
    """Serialisable work order for one residency step (the RPC-ready contract).

    Everything a worker needs crosses the boundary in this one object: the
    step identity (``key`` — scoped per iteration so caches never serve a
    stale pair), the owned partitions as ``(part_key, user_ids)`` descriptors
    (contiguous runs travel as O(1) ranges via :func:`_compact_ids`), the
    dirty tuple batch to score, the similarity measure, the store generation
    the worker must have loaded, and the per-source ``k`` of the delta
    reduction.  Workers never receive profile bytes — they open the store by
    path (today: the pool initializer; later: an RPC server's own replica) —
    so routing a task to a remote shard server is a pure placement decision.
    """

    key: Tuple[int, int, int]
    parts: "Tuple[Tuple[object, Union[range, np.ndarray]], ...]"
    tuples: np.ndarray
    measure: str
    generation: Optional[int]
    k: int


@dataclass(frozen=True)
class ShardDelta:
    """One worker's answer for one step.

    ``scores`` is aligned with the task's tuples row for row (the score
    cache needs every dirty pair's score); ``topk_rows`` indexes the rows
    that can still matter to the graph merge — each source's ``k`` best by
    the merge's own ``(-score, destination)`` order
    (:func:`~repro.graph.knn_graph.topk_candidate_rows`), so merging only
    these rows is provably identical to merging them all.
    """

    scores: np.ndarray
    topk_rows: np.ndarray


def _execute_shard_step(task: ShardStepTask,
                        fault: Optional[Tuple[str, float]] = None) -> ShardDelta:
    """Worker entry point: score one whole residency step, reduce to a delta.

    Runs in a pool worker for the process backend (reusing the worker-global
    store/slice caches of :func:`_score_shard`) and inline for the
    serial/thread backends' scoring half.
    """
    scores = _score_shard(task.key, task.parts, task.tuples, task.measure,
                          task.generation, None, fault)
    rows = topk_candidate_rows(task.tuples[:, 0], task.tuples[:, 1], scores,
                               task.k)
    return ShardDelta(scores=scores, topk_rows=rows)


def _ids_array(ids: "Union[range, np.ndarray]") -> np.ndarray:
    if isinstance(ids, range):
        return np.arange(ids.start, ids.stop, dtype=np.int64)
    return np.ascontiguousarray(ids, dtype=np.int64)


class ShardCoordinator:
    """Executes waves of partition-disjoint residency steps concurrently.

    Ownership model: within one wave no two steps share a partition
    (guaranteed by ``plan_shard_schedule``), so the worker executing a step
    holds exclusive ownership of that step's partitions for the wave — there
    is no cross-worker coordination on profile state, only the barrier
    between waves.  Each backend realises the same contract:

    * ``serial`` — steps run inline, one after another (the degrade target).
    * ``thread`` — the coordinator materialises each step's merged mmap
      slice serially (keeping store access single-threaded), then scores the
      wave's steps on a thread pool; the kernels are NumPy and release the
      GIL.
    * ``process`` — tasks ship to a supervised fork pool whose workers
      re-open the store by path (the :func:`_init_scoring_worker` /
      :func:`_score_shard` infrastructure), with the same dead/hung-worker
      respawn-and-retry discipline as :class:`ProcessScoringPool`; the retry
      unit is the whole wave, which is safe because tasks are pure.  After
      ``max_retries`` consecutive failures :class:`ScoringPoolBroken`
      surfaces for the caller to degrade to serial.

    Per-worker memory budget: ``worker_budget_bytes`` caps the resident
    profile bytes a single worker may hold — one step's partitions, the
    sharded analogue of the serial path's two-resident-partitions envelope.
    Each task's slice bytes are charged transiently against a
    :class:`~repro.storage.memory_manager.MemoryBudget` before dispatch
    (``MemoryError`` on overflow, never a silent spill), and the high-water
    mark is reported via :attr:`peak_worker_bytes`.
    """

    RETRY_BACKOFF_BASE = 0.05
    RETRY_BACKOFF_CAP = 1.0

    def __init__(self, store: Union[OnDiskProfileStore, str, os.PathLike],
                 backend: str = "serial",
                 num_workers: int = 1,
                 shard_timeout: Optional[float] = None,
                 max_retries: int = 3,
                 worker_budget_bytes: Optional[float] = None,
                 bytes_per_user: int = 0,
                 fault_plan=None):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")
        check_positive_int(num_workers, "num_workers")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive when given")
        check_positive_int(max_retries, "max_retries")
        store_dir = store.base_dir if isinstance(store, OnDiskProfileStore) else store
        self._store_dir = str(store_dir)
        self._backend = backend
        self._num_workers = num_workers
        self._shard_timeout = shard_timeout
        self._max_retries = max_retries
        self._budget = (MemoryBudget(worker_budget_bytes)
                        if worker_budget_bytes else None)
        self._bytes_per_user = int(bytes_per_user)
        self._fault_plan = fault_plan
        self._respawns = 0
        self._executor = None  # lazily built (thread or process, per backend)
        # in-process slice state for serial/thread (instance-scoped mirror of
        # the worker globals; slices are mmap views, the bound is on mapping
        # count, not bytes)
        self._local_store: Optional[OnDiskProfileStore] = None
        self._local_parts: "Dict[object, ProfileSlice]" = {}
        self._local_generation: Optional[int] = None
        self._part_cache_slots = max(_WORKER_PART_CACHE_SLOTS, 2 * num_workers)

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def respawns(self) -> int:
        """How many times supervision replaced the worker pool."""
        return self._respawns

    @property
    def peak_worker_bytes(self) -> float:
        """High-water mark of any single worker's resident slice bytes."""
        return self._budget.peak_bytes if self._budget is not None else 0.0

    @property
    def worker_budget_bytes(self) -> Optional[float]:
        return self._budget.capacity_bytes if self._budget is not None else None

    # -- wave execution ------------------------------------------------------

    def execute_wave(self, tasks: Sequence[ShardStepTask]) -> List[ShardDelta]:
        """Run one wave of partition-disjoint step tasks; deltas in task order.

        The caller is responsible for wave membership (tasks must not share
        partitions — ``plan_shard_schedule`` guarantees it); the coordinator
        is indifferent, but the ownership story above assumes it.
        """
        if not tasks:
            return []
        for task in tasks:
            self._charge(task)
        if self._backend == "process":
            return self._execute_wave_process(tasks)
        merged = [self._local_merged(task) for task in tasks]
        if self._backend == "thread" and self._num_workers > 1 and len(tasks) > 1:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self._num_workers)
            futures = [self._executor.submit(self._score_merged, piece, task)
                       for piece, task in zip(merged, tasks)]
            return [future.result() for future in futures]
        return [self._score_merged(piece, task)
                for piece, task in zip(merged, tasks)]

    @staticmethod
    def _score_merged(merged: ProfileSlice, task: ShardStepTask) -> ShardDelta:
        scores = merged.similarity_pairs(task.tuples, task.measure)
        rows = topk_candidate_rows(task.tuples[:, 0], task.tuples[:, 1],
                                   scores, task.k)
        return ShardDelta(scores=scores, topk_rows=rows)

    def _charge(self, task: ShardStepTask) -> None:
        if self._budget is None:
            return
        resident = sum(len(ids) for _, ids in task.parts) * self._bytes_per_user
        self._budget.record_transient(resident)

    def _local_merged(self, task: ShardStepTask) -> ProfileSlice:
        store = self._local_store
        if store is None:
            # own read-only handle with the free device model: phase 4
            # attributes slice reads itself, once per (wave, partition)
            store = self._local_store = OnDiskProfileStore(
                self._store_dir, disk_model="instant")
        if task.generation is not None and task.generation != self._local_generation:
            store.reload()
            self._local_parts.clear()
            self._local_generation = task.generation
        merged: Optional[ProfileSlice] = None
        for part_key, ids in task.parts:
            piece = self._local_parts.get(part_key)
            if piece is None:
                piece = store.load_users(_ids_array(ids))
                while len(self._local_parts) >= self._part_cache_slots:
                    self._local_parts.pop(next(iter(self._local_parts)))
                self._local_parts[part_key] = piece
            merged = piece if merged is None else merged.merge(piece)
        return merged

    # -- process backend supervision -----------------------------------------

    def _build_executor(self) -> ProcessPoolExecutor:
        _ensure_shared_resource_tracker()
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(
            max_workers=self._num_workers,
            mp_context=context,
            initializer=_init_scoring_worker,
            initargs=(self._store_dir,),
        )

    def _execute_wave_process(self, tasks: Sequence[ShardStepTask]
                              ) -> List[ShardDelta]:
        for attempt in range(self._max_retries + 1):
            fault = (self._fault_plan.take_worker_fault()
                     if self._fault_plan is not None else None)
            if self._executor is None:
                self._executor = self._build_executor()
            futures = []
            for index, task in enumerate(tasks):
                task_fault = None
                if fault is not None and index == fault[1] % len(tasks):
                    task_fault = (fault[0], fault[2])
                futures.append(self._executor.submit(
                    _execute_shard_step, task, task_fault))
            try:
                return [future.result(timeout=self._shard_timeout)
                        for future in futures]
            except (BrokenProcessPool, FutureTimeoutError) as exc:
                for future in futures:
                    future.cancel()
                kind = ("shard timeout" if isinstance(exc, FutureTimeoutError)
                        else "worker died")
                if attempt >= self._max_retries:
                    raise ScoringPoolBroken(
                        f"shard coordinator failed {attempt + 1} consecutive "
                        f"wave attempts (last: {kind})") from exc
                delay = min(self.RETRY_BACKOFF_CAP,
                            self.RETRY_BACKOFF_BASE * (2 ** attempt))
                _logger.warning(
                    "shard coordinator %s (attempt %d/%d); respawning workers "
                    "and retrying the wave in %.2fs",
                    kind, attempt + 1, self._max_retries + 1, delay)
                time.sleep(delay)
                executor, self._executor = self._executor, None
                _terminate_executor(executor)
                self._respawns += 1
        raise AssertionError("unreachable")  # pragma: no cover

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            if self._backend == "process":
                _terminate_executor(executor)
            else:
                executor.shutdown(wait=True)
        self._local_store = None
        self._local_parts.clear()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
