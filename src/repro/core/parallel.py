"""Multi-threaded similarity scoring (the paper's future-work "multiple threads").

Phase 4 scores a (possibly large) batch of candidate tuples against the
profiles of the two resident partitions.  The batch is embarrassingly
parallel, and the dense-profile kernels are NumPy calls that release the
GIL, so a plain thread pool gives real speedups without any multiprocessing
serialisation of the profile slices.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.storage.profile_store import ProfileSlice
from repro.utils.validation import check_positive_int


def score_tuples(profile_slice: ProfileSlice, tuples: np.ndarray, measure: str,
                 num_threads: int = 1, chunk_size: int = 4096) -> np.ndarray:
    """Similarity scores for an ``(n, 2)`` tuple array, optionally threaded.

    The result is aligned with ``tuples`` row for row regardless of the
    thread count, so callers never need to re-associate scores with pairs.
    """
    check_positive_int(num_threads, "num_threads")
    check_positive_int(chunk_size, "chunk_size")
    tuples = np.asarray(tuples, dtype=np.int64)
    if tuples.size == 0:
        return np.zeros(0, dtype=np.float64)
    if tuples.ndim != 2 or tuples.shape[1] != 2:
        raise ValueError("tuples must be an (n, 2) array")
    if num_threads == 1 or len(tuples) <= chunk_size:
        return profile_slice.similarity_pairs(tuples, measure)

    # balance the batch across the pool: at least one chunk per thread, and
    # never a chunk larger than chunk_size, so a single residency-step batch
    # keeps every worker busy
    num_chunks = max(num_threads, -(-len(tuples) // chunk_size))
    chunks = np.array_split(tuples, num_chunks)
    results: list = [None] * len(chunks)
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        futures = {
            pool.submit(profile_slice.similarity_pairs, chunk, measure): index
            for index, chunk in enumerate(chunks)
        }
        for future, index in futures.items():
            results[index] = future.result()
    return np.concatenate(results)
