"""Convergence tracking across KNN iterations.

Two complementary signals are tracked:

* the **edge-change rate**: the fraction of KNN edges that differ between
  ``G(t)`` and ``G(t+1)`` — cheap, always available, and the criterion a
  production run would use;
* the **recall** against an exact brute-force KNN graph, when the caller can
  afford to compute one — the quality metric used by the evaluation
  benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.graph.knn_graph import KNNGraph
from repro.utils.validation import check_fraction


@dataclass
class ConvergenceTracker:
    """Accumulates per-iteration change statistics and decides convergence.

    ``threshold`` is the edge-change *rate* (changed edges divided by the
    total number of KNN edges) below which the computation is declared
    converged.
    """

    threshold: float = 0.01
    exact_graph: Optional[KNNGraph] = None
    changed_edges: List[int] = field(default_factory=list)
    change_rates: List[float] = field(default_factory=list)
    recalls: List[float] = field(default_factory=list)
    average_scores: List[float] = field(default_factory=list)

    def __post_init__(self):
        check_fraction(self.threshold, "threshold")

    def record(self, previous: KNNGraph, current: KNNGraph) -> float:
        """Record one iteration transition; returns the edge-change rate."""
        changed = current.edge_difference(previous)
        total = max(1, current.num_edges + previous.num_edges)
        # the symmetric difference double counts replaced edges, so normalise
        # by the average edge count of the two graphs
        rate = changed / (total / 2)
        self.changed_edges.append(changed)
        self.change_rates.append(rate)
        self.average_scores.append(current.average_score())
        if self.exact_graph is not None:
            self.recalls.append(current.recall_against(self.exact_graph))
        return rate

    @property
    def iterations_recorded(self) -> int:
        return len(self.change_rates)

    @property
    def converged(self) -> bool:
        """True once the most recent change rate is below the threshold."""
        return bool(self.change_rates) and self.change_rates[-1] <= self.threshold

    @property
    def latest_recall(self) -> Optional[float]:
        return self.recalls[-1] if self.recalls else None

    def summary(self) -> dict:
        return {
            "iterations": self.iterations_recorded,
            "converged": self.converged,
            "change_rates": list(self.change_rates),
            "recalls": list(self.recalls),
            "average_scores": list(self.average_scores),
        }
