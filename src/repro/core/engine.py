"""The public out-of-core KNN engine.

:class:`KNNEngine` wires the whole system together: it persists the user
profiles to disk, initialises (or accepts) a KNN graph ``G(0)``, and runs
the five-phase iteration of :mod:`repro.core.iteration` until an iteration
budget or a convergence threshold is reached.  Profile changes can be fed
to the engine at any time; they are buffered in the phase-5 update queue
and applied between iterations, exactly as the paper prescribes.

Typical usage::

    from repro import EngineConfig, KNNEngine
    from repro.similarity import generate_dense_profiles

    profiles = generate_dense_profiles(num_users=2000, dim=16, seed=1)
    config = EngineConfig(k=10, num_partitions=8, heuristic="degree-low-high")
    with KNNEngine(profiles, config) as engine:
        result = engine.run(num_iterations=5)
    print(result.final_graph.neighbors(0))
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.core.checkpoint import (CloneStats, load_portable_checkpoint,
                                   restore_profile_store,
                                   save_portable_checkpoint,
                                   verify_checkpoint,
                                   write_checkpoint_checksums)
from repro.core.config import EngineConfig
from repro.core.convergence import ConvergenceTracker
from repro.core.iteration import IterationResult, OutOfCoreIteration, Phase4ScoreCache
from repro.core.update_queue import (ProfileUpdateQueue, change_from_manifest,
                                     change_to_manifest)
from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import ProfileStoreBase
from repro.similarity.workloads import ProfileChange
from repro.storage.io_stats import IOStats
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore, partition_aligned_bounds
from repro.utils.logging import get_logger
from repro.utils.timer import PhaseTimer
from repro.utils.validation import check_positive_int

_logger = get_logger("core.engine")


# the checkpoint serialisation of a ProfileChange lives with the WAL codec
# (same wire format); re-exported here for backwards compatibility
_change_to_manifest = change_to_manifest
_change_from_manifest = change_from_manifest


def _scan_commit_epochs(commits_dir: Path) -> List[Tuple[int, Path]]:
    """``(epoch, path)`` for every sealed commit directory, ascending."""
    epochs: List[Tuple[int, Path]] = []
    if commits_dir.is_dir():
        for path in commits_dir.glob("epoch_*"):
            if not path.is_dir() or path.name.endswith(".tmp"):
                continue
            try:
                epochs.append((int(path.name.split("_", 1)[1]), path))
            except ValueError:
                continue
    return sorted(epochs)


@dataclass
class EngineRunResult:
    """Aggregate outcome of a :meth:`KNNEngine.run` call."""

    iterations: List[IterationResult]
    final_graph: KNNGraph
    convergence: ConvergenceTracker
    total_io: IOStats
    total_phases: PhaseTimer

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_similarity_evaluations(self) -> int:
        return sum(result.similarity_evaluations for result in self.iterations)

    @property
    def total_load_unload_operations(self) -> int:
        return sum(result.load_unload_operations for result in self.iterations)

    def summary(self) -> dict:
        return {
            "num_iterations": self.num_iterations,
            "converged": self.convergence.converged,
            "total_similarity_evaluations": self.total_similarity_evaluations,
            "total_load_unload_operations": self.total_load_unload_operations,
            "simulated_io_seconds": self.total_io.simulated_io_seconds,
            "phase_seconds": self.total_phases.as_dict(),
            "change_rates": list(self.convergence.change_rates),
            "recalls": list(self.convergence.recalls),
        }


class KNNEngine:
    """Out-of-core KNN computation on a single (memory-constrained) machine."""

    def __init__(self, profiles: Union[ProfileStoreBase, OnDiskProfileStore],
                 config: Optional[EngineConfig] = None,
                 workdir: Optional[Union[str, Path]] = None,
                 initial_graph: Optional[KNNGraph] = None):
        self._config = config if config is not None else EngineConfig()
        if profiles.num_users <= self._config.k:
            raise ValueError(
                f"the profile store has {profiles.num_users} users but k={self._config.k}; "
                "KNN needs more users than neighbours"
            )
        if self._config.num_partitions > profiles.num_users:
            raise ValueError(
                f"num_partitions ({self._config.num_partitions}) exceeds the number of "
                f"users ({profiles.num_users})"
            )
        self._owns_workdir = workdir is None
        self._workdir = Path(workdir) if workdir is not None else Path(
            tempfile.mkdtemp(prefix="repro-knn-"))
        self._workdir.mkdir(parents=True, exist_ok=True)
        self._closed = False
        self._resume_clone_stats: Optional[CloneStats] = None

        if isinstance(profiles, OnDiskProfileStore):
            # zero-copy resume: the existing store's files are hard-linked
            # (immutable segments) or copied (in-place-mutated files) into
            # the engine's workdir — no profile matrix is ever loaded into
            # memory.  The snapshot's on-disk layout (segment bounds,
            # format version, generation counter) is carried over as-is.
            self._profile_store, self._resume_clone_stats = restore_profile_store(
                profiles.base_dir, self._workdir / "profiles",
                disk_model=self._config.disk_model)
        else:
            self._profile_store = OnDiskProfileStore.create(
                self._workdir / "profiles", profiles,
                disk_model=self._config.disk_model,
                segment_bounds=self._segment_bounds(profiles.num_users))
        self._partition_store = PartitionStore(
            self._workdir / "partitions", disk_model=self._config.disk_model)
        # a configured fault plan observes every durability-relevant file
        # operation the engine performs (deterministic fault injection)
        self._profile_store.fault_plan = self._config.fault_plan
        self._partition_store.fault_plan = self._config.fault_plan
        self._iteration_runner = OutOfCoreIteration(
            self._config, self._partition_store, self._profile_store)
        wal_path = (self._workdir / "wal.bin") if self._config.durable else None
        self._update_queue = ProfileUpdateQueue(
            wal_path=wal_path, fault_plan=self._config.fault_plan)
        self._wal_replayed = 0

        if initial_graph is not None:
            if initial_graph.num_vertices != profiles.num_users:
                raise ValueError("initial_graph vertex count does not match the profiles")
            self._graph = initial_graph.copy()
        else:
            self._graph = KNNGraph.random(
                profiles.num_users, self._config.k, seed=self._config.seed)
        self._iterations_run = 0

    def _segment_bounds(self, num_users: int) -> Optional[list]:
        """Sparse-segment boundaries for the on-disk profile store.

        An explicit ``profile_segment_rows`` wins; otherwise the bounds
        follow the contiguous partitioner's n/m split so every partition's
        profile slice maps to exactly one segment (zero-copy loads, and
        phase-5 segment rewrites stay partition-local).  Scattering
        partitioners get the store's default uniform segments.
        """
        config = self._config
        if config.profile_segment_rows is not None:
            step = min(config.profile_segment_rows, num_users)
            bounds = list(range(0, num_users, step))
            bounds.append(num_users)
            return sorted(set(bounds))
        if config.partitioner == "contiguous":
            return partition_aligned_bounds(num_users, config.num_partitions)
        return None

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "KNNEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the scoring pool and on-disk scratch space (if owned)."""
        if self._closed:
            return
        self._closed = True
        self._iteration_runner.close()
        self._update_queue.close()
        if self._owns_workdir:
            shutil.rmtree(self._workdir, ignore_errors=True)

    # -- accessors ---------------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def workdir(self) -> Path:
        return self._workdir

    @property
    def graph(self) -> KNNGraph:
        """The current KNN graph ``G(t)``."""
        return self._graph

    @property
    def iterations_run(self) -> int:
        return self._iterations_run

    @property
    def update_queue(self) -> ProfileUpdateQueue:
        return self._update_queue

    @property
    def profile_store(self) -> OnDiskProfileStore:
        return self._profile_store

    # -- profile changes -----------------------------------------------------------

    def enqueue_profile_change(self, change: ProfileChange) -> None:
        """Buffer a profile change; it is applied at the end of the current iteration."""
        self._update_queue.enqueue(change)

    def enqueue_profile_changes(self, changes: Iterable[ProfileChange]) -> int:
        return self._update_queue.enqueue_many(changes)

    # -- checkpointing -----------------------------------------------------------

    def save_checkpoint(self, directory: Union[str, Path],
                        metadata: Optional[dict] = None) -> Path:
        """Write a self-contained (portable) checkpoint of the current state.

        Captures ``G(t)``, the iteration counter, the engine configuration,
        a hard-linked snapshot of the on-disk profiles ``P(t)``, the
        phase-4 score cache and any profile changes still buffered in the
        update queue, so the run can resume (:meth:`from_checkpoint`) even
        after this engine's scratch workdir is gone.  Returns the manifest
        path.
        """
        self._ensure_open()
        combined = dict(metadata or {})
        reserved = {"engine_config", "pending_updates"} & combined.keys()
        if reserved:
            # letting caller metadata shadow these would silently resume
            # with the wrong config or lose queued updates
            raise ValueError(
                f"metadata keys {sorted(reserved)} are reserved for the "
                "engine's own checkpoint state")
        combined["engine_config"] = self._config_manifest()
        combined["pending_updates"] = [_change_to_manifest(change)
                                       for change in self._update_queue.peek()]
        return save_portable_checkpoint(
            directory, self._graph, self._iterations_run,
            profile_store=self._profile_store,
            score_cache=self._checkpointable_cache(),
            metadata=combined,
            fault_plan=self._config.fault_plan)

    def _checkpointable_cache(self) -> Phase4ScoreCache:
        """The score cache advanced to the snapshot generation for saving.

        The cache is tagged with the generation read at phase-4 time, but
        phase 5 of the same iteration usually bumps the store — so a cache
        saved verbatim would never match the snapshot and every resume of
        an update-stream run would pay a needless full rescore.  While the
        live store can still enumerate the rows touched since scoring, the
        stale entries are pruned (they would be dirty next iteration
        anyway) and the remainder re-tagged with the snapshot generation,
        which :meth:`from_checkpoint` rebases onto the fresh store.  When
        the deltas are unknown the cache is saved as-is and the resume
        path's generation check drops it — correct either way.
        """
        cache = self._iteration_runner.score_cache
        current = self._profile_store.generation
        if (cache.generation is None or cache.keys is None
                or cache.generation == current):
            return cache
        touched = self._profile_store.touched_rows_since(cache.generation)
        if touched is None:
            return cache
        return cache.advanced_to(touched, current)

    def _config_manifest(self) -> dict:
        """The engine configuration as a JSON-serialisable dict.

        A custom :class:`DiskModel` object cannot be serialised; the field
        is dropped and the resumer falls back to the default (the disk
        model only shapes the simulated I/O accounting, never results).
        """
        data = asdict(self._config)
        if not isinstance(self._config.disk_model, str):
            data.pop("disk_model")
        # a fault plan is test harness state, not configuration: it cannot
        # be serialised, and a recovered run must start fault-free anyway
        data.pop("fault_plan", None)
        return data

    @classmethod
    def from_checkpoint(cls, directory: Union[str, Path],
                        config: Optional[EngineConfig] = None,
                        workdir: Optional[Union[str, Path]] = None) -> "KNNEngine":
        """Build an engine resuming a :meth:`save_checkpoint` checkpoint.

        The snapshot profiles become the engine's ``P(t)`` **zero-copy**:
        exactly as ``save_checkpoint`` took the snapshot, the immutable
        store files are hard-linked back into the new workdir (copied only
        across filesystems, and for the in-place-mutated dense/meta/journal
        files), so resuming never round-trips the profiles through memory —
        a million-user sparse store resumes in milliseconds for a directory
        entry per segment.  The checkpointed graph becomes ``G(t)`` and the
        iteration counter continues where the saved run stopped.  With
        ``config=None`` the configuration saved in the checkpoint manifest
        is restored, so the resumed run computes the same KNN problem (same
        ``k``, measure, partitioning); passing a config explicitly
        overrides it — including ``backend``/``num_workers``, which never
        change results.  The snapshot's on-disk segment layout is kept
        as-is (a config overriding ``num_partitions`` or
        ``profile_segment_rows`` affects only which loads hit the zero-copy
        fast path, never the produced graphs).

        The score cache is restored only when its generation matches the
        snapshot store's — i.e. the cached scores describe exactly the
        profiles ``P(t)`` being resumed.  The hard-linked working store
        carries the snapshot's generation counter forward, so a matching
        cache is adopted as-is and reuse continues seamlessly.
        :meth:`save_checkpoint` arranges for this to be the common case by
        pruning churn-touched entries and advancing the cache to the
        snapshot generation; a cache it could not advance (unknown deltas)
        is dropped here instead (its generation predates the resumed
        store's counter, so keeping it could reuse stale scores), and the
        first resumed iteration performs one full rescore.  Resumed
        results are bit-identical to an uninterrupted run either way.
        """
        if (workdir is not None
                and Path(workdir).resolve() == Path(directory).resolve()):
            # the engine would create its working profile store at
            # workdir/profiles — the snapshot itself — silently rewriting
            # the checkpoint it is resuming from
            raise ValueError(
                f"workdir {workdir} is the checkpoint directory; resuming "
                "would overwrite the snapshot profiles — pass a different "
                "workdir (or None for a scratch directory)")
        checkpoint = load_portable_checkpoint(directory)
        graph, iteration, metadata, snapshot_store, score_cache = checkpoint
        if snapshot_store is None:
            raise ValueError(
                f"checkpoint under {directory} has no profile snapshot; "
                "use load_checkpoint() and construct the engine explicitly")
        if config is None:
            saved = metadata.get("engine_config")
            if saved is None:
                raise ValueError(
                    f"checkpoint under {directory} carries no engine_config "
                    "(pre-config checkpoint?); pass config= explicitly")
            config = EngineConfig(**saved)
        engine = cls(snapshot_store, config=config, workdir=workdir,
                     initial_graph=graph)
        engine._iterations_run = iteration
        pending = metadata.get("pending_updates") or []
        if engine._update_queue.wal_preexisting:
            # the workdir's WAL already holds every not-yet-applied change
            # (and possibly already-applied ones garbage collection hasn't
            # caught up with) — replay the tail after the checkpoint's
            # committed sequence instead of trusting the manifest's pending
            # list, which describes the same changes and would double-buffer
            # them.  Sequence filtering makes the replay exactly-once.
            applied = int(metadata.get("wal_applied_seq", -1))
            engine._wal_replayed = engine._update_queue.replay_tail(applied)
        elif pending:
            # changes buffered but not yet applied when the checkpoint was
            # taken resume their place in the queue, so the next iteration's
            # phase 5 applies exactly what an uninterrupted run would have
            engine.enqueue_profile_changes(
                _change_from_manifest(item) for item in pending)
        if (score_cache is not None and score_cache.generation is not None
                and score_cache.generation == snapshot_store.generation):
            # the cached scores describe exactly the snapshot profiles the
            # working store was hard-linked from; the clone carries the
            # snapshot's generation counter forward, so the cache matches
            # the fresh store directly (asserted, not assumed)
            assert engine._profile_store.generation == snapshot_store.generation
            engine.restore_score_cache(score_cache)
        return engine

    @property
    def resume_clone_stats(self) -> Optional[CloneStats]:
        """Link/copy accounting of a zero-copy resume (``None`` for fresh runs).

        The perf suite's resume gate reads this to prove that resuming a
        segmented sparse store hard-links (not copies) every immutable file.
        """
        return self._resume_clone_stats

    def restore_score_cache(self, cache: Phase4ScoreCache) -> None:
        """Adopt a phase-4 score cache (see ``from_checkpoint``).

        ``cache.generation`` must refer to *this* engine's profile store —
        its counter and its contents.  Generation counters are not a shared
        namespace across stores, so adopting a cache keyed to another
        store's counter can silently reuse stale scores;
        :meth:`from_checkpoint` re-keys or drops the restored cache for
        exactly that reason.
        """
        self._iteration_runner.restore_score_cache(cache)

    # -- execution -------------------------------------------------------------------

    def run_iteration(self) -> IterationResult:
        """Run exactly one five-phase iteration and advance ``G(t)`` to ``G(t+1)``.

        With :attr:`EngineConfig.durable` on, the iteration is bracketed by
        commits: an initial commit of the pre-iteration state (first
        iteration only) and a commit of the completed iteration, so a crash
        at *any* instant leaves at least one verifiable epoch for
        :meth:`recover`.
        """
        self._ensure_open()
        if self._config.durable:
            self._ensure_initial_commit()
        result = self._iteration_runner.run(
            self._iterations_run, self._graph, self._update_queue)
        self._graph = result.graph
        self._iterations_run += 1
        if self._config.durable:
            self._commit_iteration()
        return result

    # -- durable commits / crash recovery --------------------------------------

    #: How many sealed epochs a durable engine retains.  Two, so that a
    #: crash *during* a commit (after the old epochs were pruned, before the
    #: new one sealed) still leaves a verifiable fallback; the WAL is only
    #: ever truncated to the OLDEST kept epoch's applied sequence, so
    #: falling back an epoch never loses updates.
    COMMITS_KEPT = 2

    @property
    def commits_dir(self) -> Path:
        return self._workdir / "commits"

    @property
    def wal_replayed(self) -> int:
        """How many WAL records recovery reloaded into this engine's queue."""
        return self._wal_replayed

    def _ensure_initial_commit(self) -> None:
        """Commit the pre-iteration state once, before the first iteration."""
        if not _scan_commit_epochs(self.commits_dir):
            self._commit_iteration()

    def ensure_initial_commit(self) -> None:
        """Seal the current (pre-iteration) state as epoch 0 if none exists.

        The serving runtime calls this before accepting queries so that a
        snapshot view exists from the very first moment — ``G(0)`` is a
        valid (random) KNN graph, and serving it beats serving nothing.
        Requires ``durable=True``.
        """
        self._ensure_open()
        if not self._config.durable:
            raise RuntimeError(
                "ensure_initial_commit requires EngineConfig(durable=True); "
                "non-durable engines have no commit protocol")
        self._ensure_initial_commit()

    def sealed_epochs(self) -> List[Tuple[int, Path]]:
        """``(epoch, path)`` of every sealed commit directory, ascending.

        The snapshot/swap seam of the serving runtime: each entry is a
        self-contained, checksummed portable checkpoint whose files are
        immutable once sealed — safe to hard-link into a serving snapshot
        (the clone survives this engine pruning the epoch later).
        """
        return _scan_commit_epochs(self.commits_dir)

    def latest_sealed_epoch(self) -> Optional[Tuple[int, Path]]:
        """The newest sealed epoch, or ``None`` when nothing committed yet."""
        epochs = self.sealed_epochs()
        return epochs[-1] if epochs else None

    def _commit_iteration(self) -> None:
        """Atomically seal the current state as ``commits/epoch_NNNNN``.

        Protocol: the whole epoch (graph, hard-linked profile snapshot,
        score cache, manifest) is written into an ``.tmp`` directory,
        sealed with ``checksums.json`` (written last — it doubles as the
        completeness marker), and renamed into place in one atomic step.
        Only then are stale epochs pruned and the WAL garbage-collected up
        to the oldest *surviving* epoch's applied sequence.  A crash
        between any two steps leaves either the previous epochs or the new
        one — never a half-committed state that verifies.
        """
        fault = self._config.fault_plan
        if fault is not None:
            fault.point("commit.begin")
        commits = self.commits_dir
        commits.mkdir(parents=True, exist_ok=True)
        epoch = self._iterations_run
        final = commits / f"epoch_{epoch:05d}"
        tmp = commits / f"epoch_{epoch:05d}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        self.save_checkpoint(tmp, metadata={
            "wal_applied_seq": self._update_queue.last_applied_seq})
        write_checkpoint_checksums(tmp)
        if fault is not None:
            fault.point("commit.before_rename")
        if final.exists():
            shutil.rmtree(final)
        os.rename(tmp, final)
        if fault is not None:
            fault.point("commit.committed")
        epochs = _scan_commit_epochs(commits)
        kept = epochs[-self.COMMITS_KEPT:]
        for _, stale in epochs[:-self.COMMITS_KEPT]:
            shutil.rmtree(stale, ignore_errors=True)
        if fault is not None:
            fault.point("commit.before_wal_truncate")
        if self._update_queue.wal_path is not None and kept:
            self._update_queue.truncate_wal(
                self._commit_applied_seq(kept[0][1]))
        if fault is not None:
            fault.point("commit.done")

    @staticmethod
    def _commit_applied_seq(epoch_dir: Path) -> int:
        """The WAL sequence a sealed epoch recorded as applied (-1 if none)."""
        try:
            manifest = json.loads((epoch_dir / "checkpoint.json").read_text())
        except (OSError, ValueError):
            return -1
        metadata = manifest.get("metadata") or {}
        return int(metadata.get("wal_applied_seq", -1))

    @classmethod
    def recover(cls, workdir: Union[str, Path],
                config: Optional[EngineConfig] = None) -> "KNNEngine":
        """Resume a crashed durable run from its workdir.

        Walks the sealed epochs newest-first and restores the first one
        whose checksums verify (:func:`verify_checkpoint`); unsealed
        ``.tmp`` epochs and the crashed run's working profile/partition
        copies are discarded — they are superseded by the verified
        snapshot.  The durable WAL's tail (records after the restored
        epoch's committed sequence) is replayed into the update queue, so
        no enqueued change is lost and none is applied twice.  With
        ``config=None`` the configuration sealed in the epoch is restored
        (keep it ``None``, or keep ``durable=True``, or the WAL tail cannot
        be replayed).
        """
        workdir = Path(workdir)
        commits = workdir / "commits"
        if not commits.is_dir():
            raise FileNotFoundError(
                f"no commits directory under {workdir}; was the crashed "
                "run configured with durable=True?")
        for tmp in commits.glob("epoch_*.tmp"):
            # an epoch that never sealed — the crash hit mid-commit
            shutil.rmtree(tmp, ignore_errors=True)
        chosen = None
        for _, path in reversed(_scan_commit_epochs(commits)):
            if verify_checkpoint(path):
                chosen = path
                break
            _logger.warning(
                "commit %s fails checksum verification; falling back to "
                "the previous epoch", path.name)
        if chosen is None:
            raise RuntimeError(
                f"no commit under {commits} passes verification; the run "
                "cannot be recovered")
        _logger.info("recovering from %s", chosen)
        # the crashed working copies may be torn mid-write; the verified
        # epoch replaces the profiles, and partitions are derived state
        # (phase 1 rebuilds them every iteration)
        shutil.rmtree(workdir / "profiles", ignore_errors=True)
        shutil.rmtree(workdir / "partitions", ignore_errors=True)
        return cls.from_checkpoint(chosen, config=config, workdir=workdir)

    def run(self, num_iterations: int,
            convergence_threshold: Optional[float] = None,
            exact_graph: Optional[KNNGraph] = None,
            profile_change_feed=None) -> EngineRunResult:
        """Run up to ``num_iterations`` iterations (stopping early on convergence).

        Parameters
        ----------
        num_iterations:
            Maximum number of iterations to run.
        convergence_threshold:
            When given, stop as soon as the KNN edge-change rate drops below
            this value.
        exact_graph:
            Optional brute-force ground truth; when given, recall is recorded
            after every iteration.
        profile_change_feed:
            Optional callable ``feed(iteration) -> Iterable[ProfileChange]``
            invoked before each iteration to model profiles changing while
            the computation runs.
        """
        self._ensure_open()
        check_positive_int(num_iterations, "num_iterations")
        tracker = ConvergenceTracker(
            threshold=convergence_threshold if convergence_threshold is not None else 0.0,
            exact_graph=exact_graph,
        )
        results: List[IterationResult] = []
        total_io = IOStats()
        total_phases = PhaseTimer()
        for _ in range(num_iterations):
            if profile_change_feed is not None:
                changes = profile_change_feed(self._iterations_run)
                if changes:
                    self.enqueue_profile_changes(changes)
            previous = self._graph
            result = self.run_iteration()
            results.append(result)
            total_io.merge(result.io_stats)
            total_phases.merge(result.phase_timer)
            tracker.record(previous, result.graph)
            if convergence_threshold is not None and tracker.converged:
                _logger.info("converged after %d iterations", len(results))
                break
        return EngineRunResult(
            iterations=results,
            final_graph=self._graph,
            convergence=tracker,
            total_io=total_io,
            total_phases=total_phases,
        )

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this KNNEngine has been closed")
