"""The public out-of-core KNN engine.

:class:`KNNEngine` wires the whole system together: it persists the user
profiles to disk, initialises (or accepts) a KNN graph ``G(0)``, and runs
the five-phase iteration of :mod:`repro.core.iteration` until an iteration
budget or a convergence threshold is reached.  Profile changes can be fed
to the engine at any time; they are buffered in the phase-5 update queue
and applied between iterations, exactly as the paper prescribes.

Typical usage::

    from repro import EngineConfig, KNNEngine
    from repro.similarity import generate_dense_profiles

    profiles = generate_dense_profiles(num_users=2000, dim=16, seed=1)
    config = EngineConfig(k=10, num_partitions=8, heuristic="degree-low-high")
    with KNNEngine(profiles, config) as engine:
        result = engine.run(num_iterations=5)
    print(result.final_graph.neighbors(0))
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.core.config import EngineConfig
from repro.core.convergence import ConvergenceTracker
from repro.core.iteration import IterationResult, OutOfCoreIteration
from repro.core.update_queue import ProfileUpdateQueue
from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import ProfileStoreBase
from repro.similarity.workloads import ProfileChange
from repro.storage.io_stats import IOStats
from repro.storage.partition_store import PartitionStore
from repro.storage.profile_store import OnDiskProfileStore, partition_aligned_bounds
from repro.utils.logging import get_logger
from repro.utils.timer import PhaseTimer
from repro.utils.validation import check_positive_int

_logger = get_logger("core.engine")


@dataclass
class EngineRunResult:
    """Aggregate outcome of a :meth:`KNNEngine.run` call."""

    iterations: List[IterationResult]
    final_graph: KNNGraph
    convergence: ConvergenceTracker
    total_io: IOStats
    total_phases: PhaseTimer

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_similarity_evaluations(self) -> int:
        return sum(result.similarity_evaluations for result in self.iterations)

    @property
    def total_load_unload_operations(self) -> int:
        return sum(result.load_unload_operations for result in self.iterations)

    def summary(self) -> dict:
        return {
            "num_iterations": self.num_iterations,
            "converged": self.convergence.converged,
            "total_similarity_evaluations": self.total_similarity_evaluations,
            "total_load_unload_operations": self.total_load_unload_operations,
            "simulated_io_seconds": self.total_io.simulated_io_seconds,
            "phase_seconds": self.total_phases.as_dict(),
            "change_rates": list(self.convergence.change_rates),
            "recalls": list(self.convergence.recalls),
        }


class KNNEngine:
    """Out-of-core KNN computation on a single (memory-constrained) machine."""

    def __init__(self, profiles: ProfileStoreBase, config: Optional[EngineConfig] = None,
                 workdir: Optional[Union[str, Path]] = None,
                 initial_graph: Optional[KNNGraph] = None):
        self._config = config if config is not None else EngineConfig()
        if profiles.num_users <= self._config.k:
            raise ValueError(
                f"the profile store has {profiles.num_users} users but k={self._config.k}; "
                "KNN needs more users than neighbours"
            )
        if self._config.num_partitions > profiles.num_users:
            raise ValueError(
                f"num_partitions ({self._config.num_partitions}) exceeds the number of "
                f"users ({profiles.num_users})"
            )
        self._owns_workdir = workdir is None
        self._workdir = Path(workdir) if workdir is not None else Path(
            tempfile.mkdtemp(prefix="repro-knn-"))
        self._workdir.mkdir(parents=True, exist_ok=True)
        self._closed = False

        self._profile_store = OnDiskProfileStore.create(
            self._workdir / "profiles", profiles, disk_model=self._config.disk_model,
            segment_bounds=self._segment_bounds(profiles.num_users))
        self._partition_store = PartitionStore(
            self._workdir / "partitions", disk_model=self._config.disk_model)
        self._iteration_runner = OutOfCoreIteration(
            self._config, self._partition_store, self._profile_store)
        self._update_queue = ProfileUpdateQueue()

        if initial_graph is not None:
            if initial_graph.num_vertices != profiles.num_users:
                raise ValueError("initial_graph vertex count does not match the profiles")
            self._graph = initial_graph.copy()
        else:
            self._graph = KNNGraph.random(
                profiles.num_users, self._config.k, seed=self._config.seed)
        self._iterations_run = 0

    def _segment_bounds(self, num_users: int) -> Optional[list]:
        """Sparse-segment boundaries for the on-disk profile store.

        An explicit ``profile_segment_rows`` wins; otherwise the bounds
        follow the contiguous partitioner's n/m split so every partition's
        profile slice maps to exactly one segment (zero-copy loads, and
        phase-5 segment rewrites stay partition-local).  Scattering
        partitioners get the store's default uniform segments.
        """
        config = self._config
        if config.profile_segment_rows is not None:
            step = min(config.profile_segment_rows, num_users)
            bounds = list(range(0, num_users, step))
            bounds.append(num_users)
            return sorted(set(bounds))
        if config.partitioner == "contiguous":
            return partition_aligned_bounds(num_users, config.num_partitions)
        return None

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "KNNEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Release the scoring pool and on-disk scratch space (if owned)."""
        if self._closed:
            return
        self._closed = True
        self._iteration_runner.close()
        if self._owns_workdir:
            shutil.rmtree(self._workdir, ignore_errors=True)

    # -- accessors ---------------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def workdir(self) -> Path:
        return self._workdir

    @property
    def graph(self) -> KNNGraph:
        """The current KNN graph ``G(t)``."""
        return self._graph

    @property
    def iterations_run(self) -> int:
        return self._iterations_run

    @property
    def update_queue(self) -> ProfileUpdateQueue:
        return self._update_queue

    @property
    def profile_store(self) -> OnDiskProfileStore:
        return self._profile_store

    # -- profile changes -----------------------------------------------------------

    def enqueue_profile_change(self, change: ProfileChange) -> None:
        """Buffer a profile change; it is applied at the end of the current iteration."""
        self._update_queue.enqueue(change)

    def enqueue_profile_changes(self, changes: Iterable[ProfileChange]) -> int:
        return self._update_queue.enqueue_many(changes)

    # -- execution -------------------------------------------------------------------

    def run_iteration(self) -> IterationResult:
        """Run exactly one five-phase iteration and advance ``G(t)`` to ``G(t+1)``."""
        self._ensure_open()
        result = self._iteration_runner.run(
            self._iterations_run, self._graph, self._update_queue)
        self._graph = result.graph
        self._iterations_run += 1
        return result

    def run(self, num_iterations: int,
            convergence_threshold: Optional[float] = None,
            exact_graph: Optional[KNNGraph] = None,
            profile_change_feed=None) -> EngineRunResult:
        """Run up to ``num_iterations`` iterations (stopping early on convergence).

        Parameters
        ----------
        num_iterations:
            Maximum number of iterations to run.
        convergence_threshold:
            When given, stop as soon as the KNN edge-change rate drops below
            this value.
        exact_graph:
            Optional brute-force ground truth; when given, recall is recorded
            after every iteration.
        profile_change_feed:
            Optional callable ``feed(iteration) -> Iterable[ProfileChange]``
            invoked before each iteration to model profiles changing while
            the computation runs.
        """
        self._ensure_open()
        check_positive_int(num_iterations, "num_iterations")
        tracker = ConvergenceTracker(
            threshold=convergence_threshold if convergence_threshold is not None else 0.0,
            exact_graph=exact_graph,
        )
        results: List[IterationResult] = []
        total_io = IOStats()
        total_phases = PhaseTimer()
        for _ in range(num_iterations):
            if profile_change_feed is not None:
                changes = profile_change_feed(self._iterations_run)
                if changes:
                    self.enqueue_profile_changes(changes)
            previous = self._graph
            result = self.run_iteration()
            results.append(result)
            total_io.merge(result.io_stats)
            total_phases.merge(result.phase_timer)
            tracker.record(previous, result.graph)
            if convergence_threshold is not None and tracker.converged:
                _logger.info("converged after %d iterations", len(results))
                break
        return EngineRunResult(
            iterations=results,
            final_graph=self._graph,
            convergence=tracker,
            total_io=total_io,
            total_phases=total_phases,
        )

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("this KNNEngine has been closed")
