"""The lazy profile-update queue (phase 5), optionally backed by a WAL.

Profile changes that arrive while an iteration is running are *not* applied
to ``P(t)``; they are buffered here and applied in one batch at the end of
the iteration to produce ``P(t+1)``.  This is the paper's answer to
profiles changing concurrently with the computation: the iteration always
sees a consistent snapshot.

Durable mode
------------
When constructed with ``wal_path``, every enqueued change is also appended
to a write-ahead log before it becomes visible to :meth:`drain`, so
enqueued-but-unapplied changes survive a crash of the whole process.  The
record format is::

    <u32 payload length> <u32 CRC32(payload)> <payload>

with a little-endian header and a JSON payload carrying a monotonically
increasing ``seq`` number plus the change fields.  The ``seq`` numbers are
the exactly-once mechanism: :meth:`drain` remembers the last sequence it
handed out (:attr:`last_applied_seq`), the iteration commit persists that
number, and recovery replays only records **after** the committed sequence
(:meth:`replay_tail`).  WAL truncation (:meth:`truncate_wal`) is therefore
mere garbage collection — replaying an un-truncated WAL can never
double-apply a change, because applied sequences are filtered out.

A torn tail (a record cut short by a crash mid-append, or corrupted on
disk) fails its length or CRC check; the scan stops there and every record
before the tear replays normally.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.similarity.workloads import ProfileChange

_RECORD_HEADER = struct.Struct("<II")


def change_to_manifest(change: ProfileChange) -> dict:
    """A :class:`ProfileChange` as a JSON-serialisable dict (WAL/checkpoints)."""
    return {
        "user": int(change.user),
        "kind": change.kind,
        "item": None if change.item is None else int(change.item),
        "vector": (None if change.vector is None
                   else np.asarray(change.vector, dtype=np.float64).tolist()),
    }


def change_from_manifest(data: dict) -> ProfileChange:
    vector = data.get("vector")
    return ProfileChange(
        user=int(data["user"]), kind=data["kind"], item=data.get("item"),
        vector=None if vector is None else np.asarray(vector, dtype=np.float64))


def _encode_record(seq: int, change: ProfileChange) -> bytes:
    payload = dict(change_to_manifest(change), seq=int(seq))
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _RECORD_HEADER.pack(len(blob), zlib.crc32(blob)) + blob


def _scan_wal_bytes(data: bytes) -> List[dict]:
    """Decode the valid record prefix of raw WAL bytes.

    Stops silently at the first torn or corrupt record: a crash mid-append
    leaves a short or CRC-mismatching tail, and everything before it is by
    construction a complete, verified record.
    """
    records: List[dict] = []
    offset = 0
    total = len(data)
    while offset + _RECORD_HEADER.size <= total:
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        start = offset + _RECORD_HEADER.size
        end = start + length
        if end > total:
            break  # torn tail: header promises more bytes than exist
        blob = data[start:end]
        if zlib.crc32(blob) != crc:
            break  # corrupt record: reject it and everything after
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        records.append(payload)
        offset = end
    return records


class ProfileUpdateQueue:
    """Thread-safe FIFO buffer of :class:`ProfileChange` items.

    Parameters
    ----------
    wal_path:
        When given, enqueued changes are appended to this write-ahead log
        before becoming drainable (see the module docstring for the format
        and the exactly-once contract).  ``None`` keeps the queue purely
        in-memory (the default, and the historical behaviour).
    fsync:
        Whether WAL appends fsync (one fsync per enqueue/enqueue_many
        batch, not per record).  Tests may disable it for speed; durability
        against machine crashes requires it on.
    fault_plan:
        Optional :class:`repro.testing.faults.FaultPlan` consulted around
        WAL writes (crash point ``wal.appended``, file ops on the WAL).
    """

    def __init__(self, wal_path: Optional[Union[str, Path]] = None,
                 fsync: bool = True, fault_plan=None):
        self._changes: List[ProfileChange] = []
        self._seqs: List[int] = []
        self._lock = threading.Lock()
        self._total_enqueued = 0
        self._total_applied = 0
        self._next_seq = 0
        self._applied_seq = -1
        self._fsync = bool(fsync)
        self._fault_plan = fault_plan
        self._wal_path = Path(wal_path) if wal_path is not None else None
        self._wal_handle = None
        self._wal_preexisting = False
        if self._wal_path is not None:
            self._wal_path.parent.mkdir(parents=True, exist_ok=True)
            existing = self.wal_records()
            if existing:
                # continue the sequence past whatever the previous process
                # logged, so replayed and new records never collide
                self._wal_preexisting = True
                self._next_seq = max(int(r["seq"]) for r in existing) + 1

    # -- WAL internals -------------------------------------------------------

    @property
    def wal_path(self) -> Optional[Path]:
        return self._wal_path

    @property
    def wal_preexisting(self) -> bool:
        """Whether the WAL already held records when this queue was opened.

        A recovering engine uses this to tell "fresh run with durability
        on" apart from "reopened after a crash, tail may need replaying".
        """
        return self._wal_preexisting

    @property
    def last_applied_seq(self) -> int:
        """Sequence number of the last drained change (``-1`` before any)."""
        with self._lock:
            return self._applied_seq

    def _wal(self):
        if self._wal_handle is None:
            self._wal_handle = open(self._wal_path, "ab")
        return self._wal_handle

    def _append_wal(self, pairs: Sequence[Tuple[int, ProfileChange]]) -> None:
        """Append encoded records for ``pairs`` in one write + one fsync."""
        if self._wal_path is None or not pairs:
            return
        if self._fault_plan is not None:
            self._fault_plan.file_op("write", self._wal_path)
        handle = self._wal()
        handle.write(b"".join(_encode_record(seq, change)
                              for seq, change in pairs))
        handle.flush()
        if self._fsync:
            os.fsync(handle.fileno())
        if self._fault_plan is not None:
            self._fault_plan.after_file_op("write", self._wal_path)
            self._fault_plan.point("wal.appended")

    def wal_records(self) -> List[dict]:
        """All valid records currently in the WAL (torn tail excluded)."""
        if self._wal_path is None or not self._wal_path.exists():
            return []
        return _scan_wal_bytes(self._wal_path.read_bytes())

    def replay_tail(self, after_seq: int) -> int:
        """Reload WAL records with ``seq > after_seq`` into the queue.

        Used by crash recovery: records at or below the committed sequence
        were already applied to the profiles and are skipped, so replaying
        is exactly-once regardless of when the WAL was last truncated.  The
        records are loaded in WAL order **without** being re-appended (they
        are already durable).  Returns how many records were reloaded.
        """
        replayed = 0
        with self._lock:
            for payload in self.wal_records():
                seq = int(payload["seq"])
                if seq <= after_seq:
                    continue
                self._changes.append(change_from_manifest(payload))
                self._seqs.append(seq)
                self._total_enqueued += 1
                replayed += 1
        return replayed

    def truncate_wal(self, keep_after_seq: int) -> None:
        """Drop WAL records with ``seq <= keep_after_seq`` (garbage collection).

        The survivors are rewritten to a temporary file that atomically
        replaces the WAL, so a crash mid-truncate leaves either the old or
        the new log — never a half-written one.  Correctness never depends
        on truncation happening: replay filters by sequence number.
        """
        if self._wal_path is None:
            return
        with self._lock:
            survivors = [payload for payload in self.wal_records()
                         if int(payload["seq"]) > keep_after_seq]
            if self._wal_handle is not None:
                self._wal_handle.close()
                self._wal_handle = None
            tmp = self._wal_path.with_name(self._wal_path.name + ".tmp")
            with open(tmp, "wb") as handle:
                for payload in survivors:
                    blob = json.dumps(
                        payload, separators=(",", ":")).encode("utf-8")
                    handle.write(_RECORD_HEADER.pack(
                        len(blob), zlib.crc32(blob)) + blob)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            if self._fault_plan is not None:
                self._fault_plan.file_op("rename", self._wal_path)
            os.replace(tmp, self._wal_path)

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None

    # -- queue API -----------------------------------------------------------

    def enqueue(self, change: ProfileChange) -> None:
        """Buffer one profile change for the end of the current iteration."""
        if not isinstance(change, ProfileChange):
            raise TypeError(f"expected ProfileChange, got {type(change).__name__}")
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._append_wal([(seq, change)])
            self._changes.append(change)
            self._seqs.append(seq)
            self._total_enqueued += 1

    def enqueue_many(self, changes: Iterable[ProfileChange]) -> int:
        """Buffer many changes; returns how many were enqueued.

        The batch is validated up front and appended under a single lock
        acquisition (and, in durable mode, a single WAL write + fsync), so
        a high-rate change feed never serialises on per-change locking.
        """
        items = list(changes)
        for change in items:
            if not isinstance(change, ProfileChange):
                raise TypeError(f"expected ProfileChange, got {type(change).__name__}")
        with self._lock:
            pairs = []
            for change in items:
                pairs.append((self._next_seq, change))
                self._next_seq += 1
            self._append_wal(pairs)
            self._changes.extend(items)
            self._seqs.extend(seq for seq, _ in pairs)
            self._total_enqueued += len(items)
        return len(items)

    def drain(self) -> List[ProfileChange]:
        """Remove and return all buffered changes (applied by phase 5).

        In durable mode this also advances :attr:`last_applied_seq` to the
        last drained record — the number the iteration commit persists so
        recovery knows where the replay tail starts.
        """
        with self._lock:
            drained = self._changes
            self._changes = []
            if self._seqs:
                self._applied_seq = self._seqs[-1]
            self._seqs = []
            self._total_applied += len(drained)
        return drained

    def peek(self) -> Sequence[ProfileChange]:
        """A snapshot of the currently buffered changes (not removed)."""
        with self._lock:
            return tuple(self._changes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._changes)

    @property
    def total_enqueued(self) -> int:
        return self._total_enqueued

    @property
    def total_applied(self) -> int:
        return self._total_applied
