"""The lazy profile-update queue (phase 5).

Profile changes that arrive while an iteration is running are *not* applied
to ``P(t)``; they are buffered here and applied in one batch at the end of
the iteration to produce ``P(t+1)``.  This is the paper's answer to
profiles changing concurrently with the computation: the iteration always
sees a consistent snapshot.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Sequence

from repro.similarity.workloads import ProfileChange


class ProfileUpdateQueue:
    """Thread-safe FIFO buffer of :class:`ProfileChange` items."""

    def __init__(self):
        self._changes: List[ProfileChange] = []
        self._lock = threading.Lock()
        self._total_enqueued = 0
        self._total_applied = 0

    def enqueue(self, change: ProfileChange) -> None:
        """Buffer one profile change for the end of the current iteration."""
        if not isinstance(change, ProfileChange):
            raise TypeError(f"expected ProfileChange, got {type(change).__name__}")
        with self._lock:
            self._changes.append(change)
            self._total_enqueued += 1

    def enqueue_many(self, changes: Iterable[ProfileChange]) -> int:
        """Buffer many changes; returns how many were enqueued.

        The batch is validated up front and appended under a single lock
        acquisition, so a high-rate change feed never serialises on
        per-change locking.
        """
        items = list(changes)
        for change in items:
            if not isinstance(change, ProfileChange):
                raise TypeError(f"expected ProfileChange, got {type(change).__name__}")
        with self._lock:
            self._changes.extend(items)
            self._total_enqueued += len(items)
        return len(items)

    def drain(self) -> List[ProfileChange]:
        """Remove and return all buffered changes (applied by phase 5)."""
        with self._lock:
            drained = self._changes
            self._changes = []
            self._total_applied += len(drained)
        return drained

    def peek(self) -> Sequence[ProfileChange]:
        """A snapshot of the currently buffered changes (not removed)."""
        with self._lock:
            return tuple(self._changes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._changes)

    @property
    def total_enqueued(self) -> int:
        return self._total_enqueued

    @property
    def total_applied(self) -> int:
        return self._total_applied
