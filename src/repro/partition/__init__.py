"""Phase 1 — KNN-graph partitioning."""

from repro.partition.model import Partition, build_partitions
from repro.partition.partitioners import (
    ContiguousPartitioner,
    GreedyLocalityPartitioner,
    HashPartitioner,
    LinearDeterministicGreedyPartitioner,
    Partitioner,
    get_partitioner,
)
from repro.partition.metrics import (
    edge_cut,
    locality_cost,
    partition_balance,
    partition_report,
)

__all__ = [
    "Partition",
    "build_partitions",
    "Partitioner",
    "ContiguousPartitioner",
    "HashPartitioner",
    "GreedyLocalityPartitioner",
    "LinearDeterministicGreedyPartitioner",
    "get_partitioner",
    "locality_cost",
    "edge_cut",
    "partition_balance",
    "partition_report",
]
