"""Vertex partitioners (phase 1).

The paper requires each partition to hold ``n/m`` users and states the
partitioning objective ``min Σ_i (N_in_i + N_out_i)`` — minimise the number
of unique external sources/destinations per partition, which maximises data
locality during the similarity phase.  Finding the optimum is NP-hard
(balanced graph partitioning), so the library ships several practical
strategies:

* :class:`ContiguousPartitioner` — vertices ``0..n-1`` split into ``m``
  equal contiguous ranges.  This is the baseline the sequential PI-graph
  heuristic implies, and it is what a simple out-of-core system would do.
* :class:`HashPartitioner` — round-robin / modulo assignment (a common
  baseline with deliberately poor locality).
* :class:`LinearDeterministicGreedyPartitioner` — the classic LDG streaming
  heuristic: each vertex goes to the partition containing most of its
  neighbours, weighted by remaining capacity.
* :class:`GreedyLocalityPartitioner` — a direct greedy minimiser of the
  paper's objective: vertices are streamed in descending-degree order and
  placed in the partition whose ``N_in + N_out`` increases least.

All partitioners return an assignment array; ``build_partitions`` turns it
into :class:`~repro.partition.model.Partition` objects.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Set

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive_int


class Partitioner(abc.ABC):
    """Strategy interface: map every vertex of a graph to one of ``m`` partitions."""

    name: str = "base"

    @abc.abstractmethod
    def assign(self, graph: CSRDiGraph, num_partitions: int) -> np.ndarray:
        """Return an int64 array ``assignment[v] = partition id``."""

    def _validate(self, graph: CSRDiGraph, num_partitions: int) -> None:
        check_positive_int(num_partitions, "num_partitions")
        if num_partitions > max(1, graph.num_vertices):
            raise ValueError(
                f"num_partitions ({num_partitions}) exceeds the number of vertices "
                f"({graph.num_vertices})"
            )

    @staticmethod
    def capacity(num_vertices: int, num_partitions: int) -> int:
        """Maximum vertices per partition for a balanced split (ceil(n/m))."""
        return -(-num_vertices // num_partitions)


class ContiguousPartitioner(Partitioner):
    """Split vertex ids into ``m`` equal contiguous ranges (the paper's n/m split)."""

    name = "contiguous"

    def assign(self, graph: CSRDiGraph, num_partitions: int) -> np.ndarray:
        self._validate(graph, num_partitions)
        n = graph.num_vertices
        vertices = np.arange(n, dtype=np.int64)
        return (vertices * num_partitions) // max(n, 1)


class HashPartitioner(Partitioner):
    """Modulo assignment — a locality-oblivious baseline."""

    name = "hash"

    def assign(self, graph: CSRDiGraph, num_partitions: int) -> np.ndarray:
        self._validate(graph, num_partitions)
        return np.arange(graph.num_vertices, dtype=np.int64) % num_partitions


class LinearDeterministicGreedyPartitioner(Partitioner):
    """LDG streaming partitioner (Stanton & Kliot, KDD'12).

    Vertices arrive in a stream (optionally shuffled); each is placed in the
    partition with the most already-placed neighbours, discounted by the
    partition's fullness, subject to a hard capacity of ``ceil(n/m)``.
    """

    name = "ldg"

    def __init__(self, shuffle: bool = False, seed: SeedLike = None):
        self._shuffle = shuffle
        self._seed = seed

    def assign(self, graph: CSRDiGraph, num_partitions: int) -> np.ndarray:
        self._validate(graph, num_partitions)
        n = graph.num_vertices
        capacity = self.capacity(n, num_partitions)
        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(num_partitions, dtype=np.int64)
        order = np.arange(n)
        if self._shuffle:
            make_rng(self._seed).shuffle(order)
        for vertex in order:
            neighbors = np.concatenate([graph.out_neighbors(vertex),
                                        graph.in_neighbors(vertex)])
            placed = assignment[neighbors]
            placed = placed[placed >= 0]
            scores = np.zeros(num_partitions, dtype=np.float64)
            if len(placed):
                counts = np.bincount(placed, minlength=num_partitions)
                scores += counts
            scores *= 1.0 - sizes / capacity
            scores[sizes >= capacity] = -np.inf
            # tie-break towards the least-loaded partition for balance
            best = int(np.lexsort((sizes, -scores))[0])
            assignment[vertex] = best
            sizes[best] += 1
        return assignment


class GreedyLocalityPartitioner(Partitioner):
    """Greedy minimiser of the paper's objective ``Σ (N_in + N_out)``.

    Vertices are processed in descending total-degree order (placing hubs
    first fixes the most constrained decisions early).  For each vertex the
    partitioner computes, for every partition with remaining capacity, the
    *increase* in that partition's count of unique external in-sources and
    out-destinations if the vertex were placed there, and picks the partition
    with the smallest increase (ties: the emptier partition).
    """

    name = "greedy-locality"

    def assign(self, graph: CSRDiGraph, num_partitions: int) -> np.ndarray:
        self._validate(graph, num_partitions)
        n = graph.num_vertices
        capacity = self.capacity(n, num_partitions)
        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(num_partitions, dtype=np.int64)
        # external vertex sets per partition: sources of in-edges, dests of out-edges
        in_sources: List[Set[int]] = [set() for _ in range(num_partitions)]
        out_destinations: List[Set[int]] = [set() for _ in range(num_partitions)]

        order = np.argsort(-(graph.degree_array()), kind="stable")
        for vertex in order:
            vertex = int(vertex)
            preds = graph.in_neighbors(vertex)
            succs = graph.out_neighbors(vertex)
            best_pid, best_cost = -1, None
            for pid in range(num_partitions):
                if sizes[pid] >= capacity:
                    continue
                added_in = sum(1 for s in preds if int(s) not in in_sources[pid])
                added_out = sum(1 for d in succs if int(d) not in out_destinations[pid])
                cost = added_in + added_out
                if best_cost is None or cost < best_cost or (
                        cost == best_cost and sizes[pid] < sizes[best_pid]):
                    best_pid, best_cost = pid, cost
            if best_pid < 0:
                raise RuntimeError("no partition has remaining capacity (bug)")
            assignment[vertex] = best_pid
            sizes[best_pid] += 1
            in_sources[best_pid].update(int(s) for s in preds)
            out_destinations[best_pid].update(int(d) for d in succs)
        return assignment


_PARTITIONERS = {
    ContiguousPartitioner.name: ContiguousPartitioner,
    HashPartitioner.name: HashPartitioner,
    LinearDeterministicGreedyPartitioner.name: LinearDeterministicGreedyPartitioner,
    GreedyLocalityPartitioner.name: GreedyLocalityPartitioner,
}


def get_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a partitioner by name (``contiguous``, ``hash``, ``ldg``,
    ``greedy-locality``)."""
    try:
        cls = _PARTITIONERS[name]
    except KeyError:
        known = ", ".join(sorted(_PARTITIONERS))
        raise KeyError(f"unknown partitioner {name!r}; known partitioners: {known}") from None
    return cls(**kwargs)


def available_partitioners() -> Sequence[str]:
    """Names accepted by :func:`get_partitioner`."""
    return sorted(_PARTITIONERS)
