"""The partition data model (phase 1 output).

A partition ``R_i`` holds, exactly as the paper defines it:

* a subset ``V_i`` of roughly ``n/m`` users,
* all in-edges ``(s, v)`` and out-edges ``(v, d)`` with ``v ∈ V_i``,
  each list **sorted by the bridge vertex v** so that phase 2 can generate
  neighbours-of-neighbours tuples with a sequential merge scan,
* (on disk) the profiles of the users in ``V_i``.

The objective the partitioners optimise is the per-partition count of
*unique external* vertices: ``N_in`` (distinct sources of in-edges) plus
``N_out`` (distinct destinations of out-edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.graph.digraph import CSRDiGraph


@dataclass
class Partition:
    """One partition ``R_i`` of the KNN graph."""

    pid: int
    vertices: np.ndarray                 # sorted user ids in V_i
    in_edges: np.ndarray                 # (E_in, 2) rows (s, v), sorted by v then s
    out_edges: np.ndarray                # (E_out, 2) rows (v, d), sorted by v then d
    num_unique_in_sources: int = 0       # N_in_i
    num_unique_out_destinations: int = 0  # N_out_i

    def __post_init__(self):
        self.vertices = np.asarray(self.vertices, dtype=np.int64)
        self.in_edges = np.asarray(self.in_edges, dtype=np.int64).reshape(-1, 2)
        self.out_edges = np.asarray(self.out_edges, dtype=np.int64).reshape(-1, 2)

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_in_edges(self) -> int:
        return len(self.in_edges)

    @property
    def num_out_edges(self) -> int:
        return len(self.out_edges)

    @property
    def locality_cost(self) -> int:
        """``N_in_i + N_out_i`` — the quantity the paper's objective sums."""
        return self.num_unique_in_sources + self.num_unique_out_destinations

    def vertex_set(self) -> set:
        return set(int(v) for v in self.vertices)

    def contains(self, vertex: int) -> bool:
        pos = np.searchsorted(self.vertices, vertex)
        return pos < len(self.vertices) and self.vertices[pos] == vertex

    def estimated_bytes(self, profile_bytes_per_user: int = 0) -> int:
        """Approximate in-memory footprint, used by the memory manager."""
        edges_bytes = (self.in_edges.size + self.out_edges.size) * 8
        vertex_bytes = self.vertices.size * 8
        return edges_bytes + vertex_bytes + self.num_vertices * profile_bytes_per_user

    def __repr__(self) -> str:
        return (f"Partition(pid={self.pid}, vertices={self.num_vertices}, "
                f"in_edges={self.num_in_edges}, out_edges={self.num_out_edges}, "
                f"N_in={self.num_unique_in_sources}, N_out={self.num_unique_out_destinations})")


def build_partitions(graph: CSRDiGraph, assignment: np.ndarray,
                     num_partitions: int) -> List[Partition]:
    """Materialise :class:`Partition` objects from a vertex→partition assignment.

    ``assignment[v]`` is the partition id of vertex ``v``.  Edge lists are
    sorted by the bridge vertex as required by the paper's phase 1.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if len(assignment) != graph.num_vertices:
        raise ValueError("assignment length must equal the graph's vertex count")
    if len(assignment) and (assignment.min() < 0 or assignment.max() >= num_partitions):
        raise ValueError("assignment contains partition ids out of range")

    edges = graph.edges_array()          # rows (src, dst) == (v, d) for out-edges
    partitions: List[Partition] = []
    for pid in range(num_partitions):
        vertices = np.flatnonzero(assignment == pid).astype(np.int64)
        if len(edges):
            out_mask = assignment[edges[:, 0]] == pid
            in_mask = assignment[edges[:, 1]] == pid
            out_edges = edges[out_mask]                       # (v, d)
            in_edges = edges[in_mask][:, [0, 1]]              # (s, v)
        else:
            out_edges = np.empty((0, 2), dtype=np.int64)
            in_edges = np.empty((0, 2), dtype=np.int64)
        # sort out-edges by bridge v (column 0), in-edges by bridge v (column 1)
        if len(out_edges):
            out_edges = out_edges[np.lexsort((out_edges[:, 1], out_edges[:, 0]))]
        if len(in_edges):
            in_edges = in_edges[np.lexsort((in_edges[:, 0], in_edges[:, 1]))]
        n_in = len(np.unique(in_edges[:, 0])) if len(in_edges) else 0
        n_out = len(np.unique(out_edges[:, 1])) if len(out_edges) else 0
        partitions.append(Partition(
            pid=pid,
            vertices=vertices,
            in_edges=in_edges,
            out_edges=out_edges,
            num_unique_in_sources=n_in,
            num_unique_out_destinations=n_out,
        ))
    return partitions


def assignment_from_partitions(partitions: Sequence[Partition],
                               num_vertices: int) -> np.ndarray:
    """Reconstruct the vertex→partition assignment array from partitions."""
    assignment = np.full(num_vertices, -1, dtype=np.int64)
    for partition in partitions:
        assignment[partition.vertices] = partition.pid
    if (assignment < 0).any():
        missing = int((assignment < 0).sum())
        raise ValueError(f"{missing} vertices are not covered by any partition")
    return assignment
