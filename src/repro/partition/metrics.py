"""Partition-quality metrics.

These quantify how well a partitioning serves the paper's phase-4 access
pattern: the headline metric is the paper's objective
``Σ_i (N_in_i + N_out_i)``; edge cut and balance are reported as standard
complementary measures.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.graph.digraph import CSRDiGraph
from repro.partition.model import Partition


def locality_cost(partitions: Sequence[Partition]) -> int:
    """The paper's objective value: ``Σ_i (N_in_i + N_out_i)``."""
    return sum(p.locality_cost for p in partitions)


def edge_cut(graph: CSRDiGraph, assignment: np.ndarray) -> int:
    """Number of edges whose endpoints lie in different partitions."""
    assignment = np.asarray(assignment, dtype=np.int64)
    edges = graph.edges_array()
    if len(edges) == 0:
        return 0
    return int((assignment[edges[:, 0]] != assignment[edges[:, 1]]).sum())


def partition_balance(partitions: Sequence[Partition]) -> float:
    """Max partition size divided by the ideal size (1.0 = perfectly balanced)."""
    sizes = [p.num_vertices for p in partitions]
    total = sum(sizes)
    if total == 0 or not sizes:
        return 1.0
    ideal = total / len(sizes)
    return max(sizes) / ideal


def partition_report(graph: CSRDiGraph, partitions: Sequence[Partition],
                     assignment: np.ndarray) -> Dict[str, float]:
    """Summary dictionary of the standard partition-quality metrics."""
    return {
        "num_partitions": float(len(partitions)),
        "locality_cost": float(locality_cost(partitions)),
        "edge_cut": float(edge_cut(graph, assignment)),
        "edge_cut_fraction": (edge_cut(graph, assignment) / graph.num_edges
                              if graph.num_edges else 0.0),
        "balance": partition_balance(partitions),
        "max_partition_vertices": float(max((p.num_vertices for p in partitions), default=0)),
        "min_partition_vertices": float(min((p.num_vertices for p in partitions), default=0)),
    }


def format_partition_report(report: Dict[str, float]) -> str:
    """Pretty single-string rendering of :func:`partition_report` output."""
    lines = []
    for key in ("num_partitions", "locality_cost", "edge_cut", "edge_cut_fraction",
                "balance", "max_partition_vertices", "min_partition_vertices"):
        value = report[key]
        if key in ("edge_cut_fraction", "balance"):
            lines.append(f"{key:>24}: {value:.3f}")
        else:
            lines.append(f"{key:>24}: {int(value)}")
    return "\n".join(lines)
