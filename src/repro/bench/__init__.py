"""Shared experiment harness used by ``benchmarks/`` and ``examples/``."""

from repro.bench.experiments import (
    Table1Row,
    run_table1,
    run_table1_row,
    format_table1,
    run_pipeline_phase_breakdown,
    run_heuristic_sweep,
    run_memory_budget_sweep,
    run_disk_model_comparison,
    run_quality_comparison,
)

__all__ = [
    "Table1Row",
    "run_table1",
    "run_table1_row",
    "format_table1",
    "run_pipeline_phase_breakdown",
    "run_heuristic_sweep",
    "run_memory_budget_sweep",
    "run_disk_model_comparison",
    "run_quality_comparison",
]
