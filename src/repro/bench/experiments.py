"""Experiment runners for every table and figure reproduced from the paper.

Each runner returns plain data structures (dataclasses / dicts) so that the
``benchmarks/`` modules can both assert on the qualitative shape of the
results and print paper-style tables, and the ``examples/`` scripts can
reuse the same code paths interactively.

Experiment index (see DESIGN.md §5):

* :func:`run_table1` — Table 1: load/unload operations of the PI-graph
  traversal heuristics on the six (synthetic stand-in) datasets.
* :func:`run_pipeline_phase_breakdown` — Figure 1: the five-phase pipeline,
  reported as per-phase timings and operation counts of a full iteration.
* :func:`run_heuristic_sweep` — Ext-F: all heuristics (paper + extensions).
* :func:`run_memory_budget_sweep` — Ext-B: varying the number of partitions.
* :func:`run_disk_model_comparison` — Ext-C: HDD vs SSD simulated I/O time.
* :func:`run_quality_comparison` — Ext-E: engine vs NN-Descent vs brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.baselines.brute_force import brute_force_knn
from repro.baselines.nn_descent import NNDescent
from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.graph.datasets import DATASETS, TABLE1_ORDER, DatasetSpec
from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.scheduler import ScheduleResult, compare_heuristics
from repro.pigraph.traversal import PAPER_HEURISTICS
from repro.similarity.workloads import generate_dense_profiles
from repro.utils.rng import SeedLike


# ---------------------------------------------------------------------------
# Table 1 — PI-graph traversal heuristics
# ---------------------------------------------------------------------------

#: Values printed in the paper's Table 1, for side-by-side comparison in
#: EXPERIMENTS.md and in the benchmark output.  Keys are dataset registry
#: names; values are (sequential, high-low, low-high) operation counts.
PAPER_TABLE1 = {
    "wiki-vote": (211856, 204706, 202290),
    "gen-rel": (34506, 32220, 31256),
    "high-energy": (252754, 242132, 240872),
    "astro-phy": (420442, 400050, 401770),
    "email": (399604, 382928, 379312),
    "gnutella": (157040, 144072, 132710),
}


@dataclass
class Table1Row:
    """One dataset row of the reproduced Table 1."""

    dataset: str
    display_name: str
    num_nodes: int
    num_edges: int
    operations: Dict[str, int]            # heuristic name -> load/unload ops
    paper_operations: Optional[Dict[str, int]] = None

    def improvement_over_sequential(self, heuristic: str) -> float:
        """Fractional reduction in operations relative to the sequential heuristic."""
        seq = self.operations["sequential"]
        return (seq - self.operations[heuristic]) / seq if seq else 0.0


def run_table1_row(spec: DatasetSpec, heuristics: Sequence[str] = PAPER_HEURISTICS,
                   seed: SeedLike = None, cache_slots: int = 2) -> Table1Row:
    """Reproduce one row of Table 1 on the synthetic stand-in for ``spec``."""
    graph = spec.generate(seed)
    pi_graph = PIGraph.from_digraph(graph)
    results = compare_heuristics(pi_graph, list(heuristics), cache_slots=cache_slots)
    operations = {name: result.load_unload_operations for name, result in results.items()}
    paper = PAPER_TABLE1.get(spec.name)
    paper_ops = None
    if paper is not None:
        paper_ops = dict(zip(("sequential", "degree-high-low", "degree-low-high"), paper))
    return Table1Row(
        dataset=spec.name,
        display_name=spec.display_name,
        num_nodes=graph.num_vertices,
        num_edges=graph.num_edges,
        operations=operations,
        paper_operations=paper_ops,
    )


def run_table1(datasets: Optional[Sequence[str]] = None,
               heuristics: Sequence[str] = PAPER_HEURISTICS,
               seed: SeedLike = None) -> List[Table1Row]:
    """Reproduce the full Table 1 (all six datasets by default)."""
    names = list(datasets) if datasets is not None else list(TABLE1_ORDER)
    return [run_table1_row(DATASETS[name], heuristics, seed=seed) for name in names]


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Paper-style rendering of the reproduced Table 1."""
    heuristics = list(rows[0].operations) if rows else []
    header = (f"{'Datasets':<12} {'Nodes':>7} {'Edges':>8} "
              + " ".join(f"{h:>16}" for h in heuristics))
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(f"{row.operations[h]:>16}" for h in heuristics)
        lines.append(f"{row.display_name:<12} {row.num_nodes:>7} {row.num_edges:>8} {cells}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 1 — the five-phase pipeline
# ---------------------------------------------------------------------------

def run_pipeline_phase_breakdown(num_users: int = 1500, k: int = 10,
                                 num_partitions: int = 6,
                                 num_iterations: int = 2,
                                 heuristic: str = "degree-low-high",
                                 seed: int = 11) -> Dict[str, object]:
    """Run a full engine and report per-phase timings and operation counts.

    This exercises every box of the paper's Figure 1 (the five phases) on a
    synthetic dense-profile workload and returns a summary dictionary with
    per-phase seconds, candidate-tuple counts and load/unload operations.
    """
    profiles = generate_dense_profiles(num_users, dim=16, num_communities=8, seed=seed)
    # Figure 1's operation counts tally every candidate pair per iteration;
    # the score cache would reuse repeats across iterations and deflate
    # them, so it is off for this paper-accounting experiment
    config = EngineConfig(k=k, num_partitions=num_partitions, heuristic=heuristic,
                          seed=seed, incremental_phase4=False)
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=num_iterations)
    summary = run.summary()
    summary["per_iteration"] = [result.summary() for result in run.iterations]
    return summary


# ---------------------------------------------------------------------------
# Extension experiments (the paper's future-work section)
# ---------------------------------------------------------------------------

def run_heuristic_sweep(dataset: str = "gnutella",
                        heuristics: Optional[Sequence[str]] = None,
                        seed: SeedLike = None) -> Dict[str, ScheduleResult]:
    """Ext-F: compare all traversal heuristics (paper + extensions) on one dataset."""
    from repro.pigraph.traversal import HEURISTICS

    names = list(heuristics) if heuristics is not None else sorted(HEURISTICS)
    spec = DATASETS[dataset]
    graph = spec.generate(seed)
    pi_graph = PIGraph.from_digraph(graph)
    return compare_heuristics(pi_graph, names)


def run_memory_budget_sweep(num_users: int = 1200, k: int = 8,
                            partition_counts: Sequence[int] = (2, 4, 8, 16),
                            heuristic: str = "degree-low-high",
                            seed: int = 5) -> List[Dict[str, object]]:
    """Ext-B: how the number of partitions (memory pressure) affects I/O work."""
    profiles = generate_dense_profiles(num_users, dim=16, num_communities=8, seed=seed)
    rows: List[Dict[str, object]] = []
    for m in partition_counts:
        config = EngineConfig(k=k, num_partitions=m, heuristic=heuristic, seed=seed)
        with KNNEngine(profiles, config) as engine:
            result = engine.run_iteration()
        rows.append({
            "num_partitions": m,
            "load_unload_operations": result.load_unload_operations,
            "scheduled_operations": result.schedule.load_unload_operations,
            "bytes_read": result.io_stats.bytes_read,
            "simulated_io_seconds": result.io_stats.simulated_io_seconds,
            "candidate_tuples": result.num_candidate_tuples,
        })
    return rows


def run_disk_model_comparison(num_users: int = 1200, k: int = 8,
                              num_partitions: int = 8,
                              disk_models: Sequence[str] = ("hdd", "ssd"),
                              seed: int = 5) -> List[Dict[str, object]]:
    """Ext-C: simulated I/O time of one iteration on HDD vs SSD."""
    profiles = generate_dense_profiles(num_users, dim=16, num_communities=8, seed=seed)
    rows: List[Dict[str, object]] = []
    for model in disk_models:
        config = EngineConfig(k=k, num_partitions=num_partitions, disk_model=model, seed=seed)
        with KNNEngine(profiles, config) as engine:
            result = engine.run_iteration()
        rows.append({
            "disk_model": model,
            "simulated_io_seconds": result.io_stats.simulated_io_seconds,
            "bytes_read": result.io_stats.bytes_read,
            "bytes_written": result.io_stats.bytes_written,
            "load_unload_operations": result.load_unload_operations,
        })
    return rows


def run_quality_comparison(num_users: int = 600, k: int = 10,
                           num_iterations: int = 4,
                           num_partitions: int = 4,
                           seed: int = 3) -> Dict[str, object]:
    """Ext-E: recall of the out-of-core engine vs NN-Descent vs brute force."""
    profiles = generate_dense_profiles(num_users, dim=16, num_communities=6, seed=seed)
    exact = brute_force_knn(profiles, k, measure="cosine")

    # the scan rate reproduces the paper's accounting: every candidate pair
    # counts as one evaluation.  The score cache would reuse repeat pairs
    # across iterations (deflating the count relative to NN-Descent, which
    # has no such cache), so it is disabled for this comparison.
    config = EngineConfig(k=k, num_partitions=num_partitions,
                          heuristic="degree-low-high", seed=seed,
                          incremental_phase4=False)
    with KNNEngine(profiles, config) as engine:
        run = engine.run(num_iterations=num_iterations, exact_graph=exact)

    descent = NNDescent(k=k, measure="cosine", seed=seed).run(profiles)
    total_pairs = num_users * (num_users - 1)
    return {
        "engine_recalls": list(run.convergence.recalls),
        "engine_similarity_evaluations": run.total_similarity_evaluations,
        "engine_scan_rate": run.total_similarity_evaluations / total_pairs,
        "nn_descent_recall": descent.graph.recall_against(exact),
        "nn_descent_similarity_evaluations": descent.similarity_evaluations,
        "nn_descent_iterations": descent.iterations,
        "brute_force_evaluations": total_pairs,
    }
