"""NN-Descent (Dong, Moses & Li, WWW 2011) — the in-memory baseline.

NN-Descent is the algorithm the paper cites as reference [1] for KNN-graph
construction; the paper's contribution is making the same neighbours-of-
neighbours refinement loop run out-of-core.  This module implements the
standard in-memory algorithm (with the usual sampling and early-termination
refinements) so that benchmarks can compare quality and similarity-evaluation
counts between the in-memory baseline and the out-of-core engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import ProfileStoreBase
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class NNDescentResult:
    """Outcome of one NN-Descent run."""

    graph: KNNGraph
    iterations: int
    similarity_evaluations: int
    updates_per_iteration: List[int] = field(default_factory=list)
    converged: bool = False

    @property
    def scan_rate(self) -> float:
        """Similarity evaluations divided by the n*(n-1)/2 of brute force."""
        n = self.graph.num_vertices
        total_pairs = n * (n - 1) / 2
        return self.similarity_evaluations / total_pairs if total_pairs else 0.0


class NNDescent:
    """In-memory NN-Descent KNN-graph construction.

    Parameters
    ----------
    k:
        Number of neighbours per user.
    measure:
        Similarity measure name (defaults to the profile store's default).
    sample_rate:
        Fraction of each vertex's neighbour lists sampled per iteration
        (``rho`` in the paper); 1.0 disables sampling.
    termination_fraction:
        Stop when fewer than ``termination_fraction * n * k`` neighbour
        updates happen in an iteration (``delta`` in the paper).
    max_iterations:
        Hard iteration cap.
    """

    def __init__(self, k: int, measure: Optional[str] = None,
                 sample_rate: float = 1.0,
                 termination_fraction: float = 0.001,
                 max_iterations: int = 30,
                 seed: SeedLike = None):
        check_positive_int(k, "k")
        check_fraction(sample_rate, "sample_rate")
        check_fraction(termination_fraction, "termination_fraction")
        check_positive_int(max_iterations, "max_iterations")
        if sample_rate == 0.0:
            raise ValueError("sample_rate must be > 0")
        self._k = k
        self._measure = measure
        self._sample_rate = sample_rate
        self._termination_fraction = termination_fraction
        self._max_iterations = max_iterations
        self._rng = make_rng(seed)

    def run(self, profiles: ProfileStoreBase,
            initial_graph: Optional[KNNGraph] = None) -> NNDescentResult:
        """Build the KNN graph of all users in ``profiles``."""
        n = profiles.num_users
        measure = self._measure or profiles.default_measure()
        if n <= self._k:
            raise ValueError(f"need more than k={self._k} users, got {n}")
        if initial_graph is None:
            graph = KNNGraph.random(n, self._k, seed=self._rng)
            self._score_initial(graph, profiles, measure)
        else:
            if initial_graph.num_vertices != n:
                raise ValueError("initial_graph vertex count does not match profiles")
            graph = initial_graph.copy()
        evaluations = 0
        updates_history: List[int] = []
        converged = False
        iteration = 0
        for iteration in range(1, self._max_iterations + 1):
            candidates = self._build_candidates(graph)
            updates = 0
            for vertex, candidate_set in enumerate(candidates):
                if not candidate_set:
                    continue
                others = np.asarray(sorted(candidate_set), dtype=np.int64)
                pairs = np.column_stack([
                    np.full(len(others), vertex, dtype=np.int64), others])
                scores = profiles.similarity_pairs(pairs, measure)
                evaluations += len(others)
                for other, score in zip(others, scores):
                    if graph.add_candidate(vertex, int(other), float(score)):
                        updates += 1
                    if graph.add_candidate(int(other), vertex, float(score)):
                        updates += 1
            updates_history.append(updates)
            if updates <= self._termination_fraction * n * self._k:
                converged = True
                break
        return NNDescentResult(
            graph=graph,
            iterations=iteration,
            similarity_evaluations=evaluations,
            updates_per_iteration=updates_history,
            converged=converged,
        )

    # -- internals ---------------------------------------------------------

    def _score_initial(self, graph: KNNGraph, profiles: ProfileStoreBase,
                       measure: str) -> None:
        """Replace the placeholder 0.0 scores of a random graph with real ones."""
        for vertex in range(graph.num_vertices):
            neighbors = graph.neighbors(vertex)
            if not neighbors:
                continue
            others = np.asarray(neighbors, dtype=np.int64)
            pairs = np.column_stack([np.full(len(others), vertex, dtype=np.int64), others])
            scores = profiles.similarity_pairs(pairs, measure)
            graph.set_neighbors(vertex, zip((int(v) for v in others),
                                            (float(s) for s in scores)))

    def _build_candidates(self, graph: KNNGraph) -> List[Set[int]]:
        """Neighbours-of-neighbours candidate sets (sampled, symmetrised)."""
        n = graph.num_vertices
        # forward + reverse neighbour lists, optionally sampled
        forward: List[List[int]] = []
        for vertex in range(n):
            neighbors = graph.neighbors(vertex)
            if self._sample_rate < 1.0 and len(neighbors) > 1:
                keep = max(1, int(round(self._sample_rate * len(neighbors))))
                picked = self._rng.choice(len(neighbors), size=keep, replace=False)
                neighbors = [neighbors[i] for i in picked]
            forward.append(neighbors)
        reverse: List[List[int]] = [[] for _ in range(n)]
        for vertex in range(n):
            for neighbor in forward[vertex]:
                reverse[neighbor].append(vertex)
        candidates: List[Set[int]] = [set() for _ in range(n)]
        for vertex in range(n):
            local = forward[vertex] + reverse[vertex]
            # all pairs within `local ∪ {vertex}` are potential neighbours
            for i, a in enumerate(local):
                if a != vertex:
                    candidates[vertex].add(a)
                for b in local[i + 1:]:
                    if a != b:
                        candidates[a].add(b)
        # drop pairs already present as neighbours to avoid rescoring
        for vertex in range(n):
            candidates[vertex] -= set(graph.neighbors(vertex))
            candidates[vertex].discard(vertex)
        return candidates
