"""Exact KNN graph by brute force.

Compares every user with every other user — O(n²) similarity evaluations —
and is therefore only usable on small inputs, but it provides the ground
truth against which the approximate methods' recall is measured.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import DenseProfileStore, ProfileStoreBase
from repro.utils.validation import check_positive_int


def brute_force_knn(profiles: ProfileStoreBase, k: int,
                    measure: Optional[str] = None,
                    block_size: int = 512) -> KNNGraph:
    """Compute the exact KNN graph of all users in ``profiles``.

    For dense profile stores with the cosine measure, the computation is
    blocked matrix multiplication; every other combination falls back to
    pairwise evaluation of the measure.
    """
    check_positive_int(k, "k")
    n = profiles.num_users
    if n == 0:
        return KNNGraph(0, k)
    if measure is None:
        measure = profiles.default_measure()
    graph = KNNGraph(n, k)

    if isinstance(profiles, DenseProfileStore) and measure == "cosine":
        _brute_force_cosine_dense(profiles, graph, k, block_size)
        return graph

    for user in range(n):
        others = np.asarray([v for v in range(n) if v != user], dtype=np.int64)
        pairs = np.column_stack([np.full(len(others), user, dtype=np.int64), others])
        scores = profiles.similarity_pairs(pairs, measure)
        graph.set_neighbors(user, zip((int(v) for v in others), (float(s) for s in scores)))
    return graph


def _brute_force_cosine_dense(profiles: DenseProfileStore, graph: KNNGraph,
                              k: int, block_size: int) -> None:
    """Blocked exact cosine KNN for dense profiles."""
    matrix = profiles.matrix
    norms = np.linalg.norm(matrix, axis=1)
    safe_norms = np.where(norms > 0, norms, 1.0)
    normalised = matrix / safe_norms[:, None]
    n = len(matrix)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block_scores = normalised[start:stop] @ normalised.T          # (b, n)
        for offset, user in enumerate(range(start, stop)):
            row = block_scores[offset]
            row[user] = -np.inf                                       # exclude self
            if n - 1 > k:
                candidate_ids = np.argpartition(-row, k)[:k]
            else:
                candidate_ids = np.asarray([v for v in range(n) if v != user])
            graph.set_neighbors(
                user,
                ((int(v), float(row[v])) for v in candidate_ids),
            )
