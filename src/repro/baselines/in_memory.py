"""In-memory implementation of the paper's KNN iteration.

This is algorithmically the same computation as the out-of-core engine —
at iteration ``t`` every user is compared against its neighbours and
neighbours' neighbours in ``G(t)`` and keeps the top-K — but it holds the
whole graph and all profiles in memory and performs no partitioning.  It
serves two purposes:

* a correctness oracle: the out-of-core engine must produce exactly the same
  ``G(t+1)`` from the same ``G(t)`` and profiles;
* the "unconstrained memory" comparison point for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.graph.knn_graph import KNNGraph
from repro.similarity.profiles import ProfileStoreBase
from repro.utils.validation import check_positive_int


@dataclass
class InMemoryIterationResult:
    """Outcome of one in-memory KNN iteration."""

    graph: KNNGraph
    similarity_evaluations: int
    candidate_pairs: int


class InMemoryKNNIterator:
    """Runs paper-style KNN iterations entirely in memory."""

    def __init__(self, k: int, measure: Optional[str] = None):
        check_positive_int(k, "k")
        self._k = k
        self._measure = measure

    @property
    def k(self) -> int:
        return self._k

    def iterate(self, graph: KNNGraph, profiles: ProfileStoreBase) -> InMemoryIterationResult:
        """Compute ``G(t+1)`` from ``G(t)`` and the current profiles."""
        if graph.num_vertices != profiles.num_users:
            raise ValueError("graph and profile store disagree on the number of users")
        measure = self._measure or profiles.default_measure()
        n = graph.num_vertices
        new_graph = KNNGraph(n, self._k)
        evaluations = 0
        candidate_pairs = 0

        # candidate set per user: direct neighbours plus neighbours' neighbours
        for user in range(n):
            candidates: Set[int] = set()
            direct = graph.neighbors(user)
            candidates.update(direct)
            for neighbor in direct:
                candidates.update(graph.neighbors(neighbor))
            candidates.discard(user)
            candidate_pairs += len(candidates)
            if not candidates:
                continue
            others = np.asarray(sorted(candidates), dtype=np.int64)
            pairs = np.column_stack([np.full(len(others), user, dtype=np.int64), others])
            scores = profiles.similarity_pairs(pairs, measure)
            evaluations += len(others)
            new_graph.set_neighbors(user, zip((int(v) for v in others),
                                              (float(s) for s in scores)))
        return InMemoryIterationResult(
            graph=new_graph,
            similarity_evaluations=evaluations,
            candidate_pairs=candidate_pairs,
        )

    def run(self, profiles: ProfileStoreBase, num_iterations: int,
            initial_graph: Optional[KNNGraph] = None,
            seed=None) -> List[InMemoryIterationResult]:
        """Run ``num_iterations`` iterations starting from ``initial_graph``.

        When no initial graph is given, a random K-regular graph is used,
        matching the engine's default initialisation.
        """
        check_positive_int(num_iterations, "num_iterations")
        graph = initial_graph if initial_graph is not None else KNNGraph.random(
            profiles.num_users, self._k, seed=seed)
        results: List[InMemoryIterationResult] = []
        current = graph
        for _ in range(num_iterations):
            result = self.iterate(current, profiles)
            results.append(result)
            current = result.graph
        return results
