"""Baselines: exact brute-force KNN, NN-Descent, and the in-memory KNN iteration."""

from repro.baselines.brute_force import brute_force_knn
from repro.baselines.in_memory import InMemoryKNNIterator
from repro.baselines.nn_descent import NNDescent, NNDescentResult

__all__ = [
    "brute_force_knn",
    "NNDescent",
    "NNDescentResult",
    "InMemoryKNNIterator",
]
