"""Liveness / readiness probes for the serving runtime.

Two orthogonal questions, mirroring orchestrator conventions:

* **live** — is the process worth keeping?  ``True`` from construction
  until :meth:`ServingRuntime.close`; a supervisor in ``failed`` state is
  still *live* (queries are served from the last good snapshot — restart
  policy is the operator's call, not the probe's).
* **ready** — can it answer queries right now?  ``True`` once the first
  snapshot is swapped in and until the runtime closes.

:func:`build_health` also carries the degradation signals an operator
dashboards: supervisor state, restart count, last refresh error, pending
backlog and whether admission is accepting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional


@dataclass(frozen=True)
class HealthStatus:
    """One consistent health sample of a :class:`ServingRuntime`."""

    live: bool
    ready: bool
    #: Supervisor state: ``idle`` / ``refreshing`` / ``recovering`` /
    #: ``failed`` / ``stopped``.
    refresh_state: str
    #: Epoch of the snapshot currently answering queries (-1 before the
    #: first swap).
    serving_epoch: int
    #: Accepted-but-unapplied profile changes (the backpressure signal).
    pending_updates: int
    #: Successful refresh-loop recoveries so far.
    restarts: int
    #: Whether the admission controller accepts new batches.
    accepting: bool
    #: Last refresh failure, ``None`` when the loop is healthy.
    last_error: Optional[str] = None

    def as_dict(self) -> dict:
        return asdict(self)


def build_health(runtime) -> HealthStatus:
    """Sample a runtime's health (safe from any thread)."""
    supervisor = runtime.supervisor
    return HealthStatus(
        live=not runtime.closed,
        ready=runtime.ready and not runtime.closed,
        refresh_state=supervisor.state if supervisor is not None else "stopped",
        serving_epoch=runtime.current_epoch,
        pending_updates=runtime.pending_updates,
        restarts=supervisor.restarts if supervisor is not None else 0,
        accepting=runtime.accepting,
        last_error=supervisor.last_error if supervisor is not None else None,
    )
