"""Simulated serving load: N reader clients + a writer, with latency stats.

Shared by the serving benchmark (``benchmarks/run_perf_suite.py``), the
``python -m repro serve`` CLI demo and ``examples/serving.py`` so all three
exercise the runtime the same way: reader threads hammer
:meth:`ServingRuntime.neighbors` in a closed loop while the caller's
writer submits update batches, and a :class:`PhaseReport` captures what
the clients actually observed — per-query latency percentiles, failures,
how many reads landed *while a refresh iteration was in flight* (the
snapshot-isolation witness) and how much load admission shed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.similarity.workloads import ProfileChange


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class PhaseReport:
    """What the simulated clients observed during one load phase."""

    name: str
    duration_seconds: float = 0.0
    queries: int = 0
    #: Queries that raised (deadline/unavailable) — the availability SLO.
    query_failures: int = 0
    #: Queries answered while the refresh loop was mid-iteration: each one
    #: is a read that provably did not block on the in-flight iteration.
    queries_during_refresh: int = 0
    p50_query_seconds: float = 0.0
    p99_query_seconds: float = 0.0
    max_query_seconds: float = 0.0
    accepted_batches: int = 0
    accepted_changes: int = 0
    shed_batches: int = 0
    shed_changes: int = 0
    epochs_advanced: int = 0
    restarts: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_seconds": round(self.duration_seconds, 4),
            "queries": self.queries,
            "query_failures": self.query_failures,
            "queries_during_refresh": self.queries_during_refresh,
            "p50_query_seconds": round(self.p50_query_seconds, 6),
            "p99_query_seconds": round(self.p99_query_seconds, 6),
            "max_query_seconds": round(self.max_query_seconds, 6),
            "accepted_batches": self.accepted_batches,
            "accepted_changes": self.accepted_changes,
            "shed_batches": self.shed_batches,
            "shed_changes": self.shed_changes,
            "epochs_advanced": self.epochs_advanced,
            "restarts": self.restarts,
        }


class _Reader(threading.Thread):
    def __init__(self, runtime, num_users: int, seed: int,
                 deadline_seconds: Optional[float], stop: threading.Event):
        super().__init__(name=f"load-reader-{seed}", daemon=True)
        self._runtime = runtime
        self._rng = Random(seed)
        self._num_users = num_users
        self._deadline = deadline_seconds
        # NB: not "_stop" — that would shadow threading.Thread's internal
        # _stop() method and break Thread.join()
        self._halt = stop
        self.latencies: List[float] = []
        self.failures = 0
        self.during_refresh = 0

    def run(self) -> None:
        while not self._halt.is_set():
            user = self._rng.randrange(self._num_users)
            in_refresh = self._runtime.refresh_in_flight
            started = time.perf_counter()
            try:
                self._runtime.neighbors(user, deadline_seconds=self._deadline)
            except Exception:  # noqa: BLE001 — counted, phase judges the total
                self.failures += 1
                continue
            self.latencies.append(time.perf_counter() - started)
            if in_refresh:
                self.during_refresh += 1


class LoadGenerator:
    """Drives N reader threads plus an optional writer against a runtime."""

    def __init__(self, runtime, num_users: int, num_readers: int = 4,
                 deadline_seconds: Optional[float] = 5.0, seed: int = 0):
        self._runtime = runtime
        self._num_users = int(num_users)
        self._num_readers = int(num_readers)
        self._deadline = deadline_seconds
        self._seed = int(seed)

    def run_phase(self, name: str, duration_seconds: float,
                  writer: Optional[Callable[[], None]] = None,
                  writer_interval: float = 0.01) -> PhaseReport:
        """Run readers for ``duration_seconds``; call ``writer`` in between.

        ``writer`` is invoked from the calling thread every
        ``writer_interval`` seconds (it typically submits one update batch
        via :meth:`ServingRuntime.submit_updates`); admission/shed deltas
        are read from the runtime's counters so shed load is attributed to
        the phase that caused it.
        """
        runtime = self._runtime
        before = runtime.stats()
        stop = threading.Event()
        readers = [_Reader(runtime, self._num_users,
                           seed=self._seed * 1000 + i,
                           deadline_seconds=self._deadline, stop=stop)
                   for i in range(self._num_readers)]
        started = time.perf_counter()
        for reader in readers:
            reader.start()
        deadline_at = started + duration_seconds
        while time.perf_counter() < deadline_at:
            if writer is not None:
                writer()
            time.sleep(writer_interval)
        stop.set()
        for reader in readers:
            reader.join(timeout=30.0)
        elapsed = time.perf_counter() - started
        after = runtime.stats()

        latencies = [value for reader in readers for value in reader.latencies]
        report = PhaseReport(name=name, duration_seconds=elapsed)
        report.queries = len(latencies)
        report.query_failures = sum(reader.failures for reader in readers)
        report.queries_during_refresh = sum(reader.during_refresh
                                            for reader in readers)
        report.p50_query_seconds = percentile(latencies, 0.50)
        report.p99_query_seconds = percentile(latencies, 0.99)
        report.max_query_seconds = max(latencies) if latencies else 0.0
        for key in ("accepted_batches", "accepted_changes",
                    "shed_batches", "shed_changes"):
            setattr(report, key, after[key] - before[key])
        report.epochs_advanced = max(
            0, after["serving_epoch"] - before["serving_epoch"])
        report.restarts = after["restarts"] - before["restarts"]
        return report


def dense_set_batch(num_users: int, dim: int, batch_size: int,
                    rng: Random) -> List[ProfileChange]:
    """One batch of dense profile rewrites for randomly chosen users."""
    changes = []
    for _ in range(batch_size):
        user = rng.randrange(num_users)
        vector = np.asarray([rng.random() for _ in range(dim)],
                            dtype=np.float64)
        changes.append(ProfileChange(user=user, kind="set", vector=vector))
    return changes


def sparse_add_batch(num_users: int, num_items: int, batch_size: int,
                     rng: Random) -> List[ProfileChange]:
    """One batch of sparse item additions for randomly chosen users."""
    return [ProfileChange(user=rng.randrange(num_users), kind="add",
                          item=rng.randrange(num_items))
            for _ in range(batch_size)]
