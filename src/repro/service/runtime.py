"""The always-on serving runtime: queries, ingestion and refresh in one box.

:class:`ServingRuntime` turns the batch :class:`KNNEngine` into a
long-lived service with three separated threads of control:

* **query path** (caller threads) — :meth:`neighbors` / :meth:`recommend`
  read an immutable :class:`SnapshotView` of the last committed epoch.
  Reads are snapshot-isolated: they never touch the engine's working
  state, never block on the in-flight iteration, and honour a per-request
  deadline (:class:`DeadlineExceeded` instead of unbounded waiting).
* **ingestion path** (caller threads) — :meth:`submit_updates` routes
  profile changes through a bounded :class:`AdmissionController` into the
  engine's durable WAL-backed update queue.  Over-capacity load is shed
  with an explicit backpressure result, never queued unboundedly.
* **background refresh** (one supervised thread) — the
  :class:`RefreshSupervisor` runs dirty-scheduled iterations, seals each
  epoch and atomically swaps the serving snapshot; on any crash it
  recovers the engine via :meth:`KNNEngine.recover` with capped backoff
  while queries keep being served from the last good snapshot.

Durability is not optional: the runtime forces ``durable=True`` so every
accepted update is fsynced to the WAL before the client sees
``accepted=True``, and every served graph/profile pair is a sealed,
checksummed epoch.  ``ServingRuntime.recover(workdir)`` restarts the whole
service after a process death from that durable state alone.

See ``docs/serving.md`` for the architecture and degradation modes.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import EngineConfig
from repro.core.engine import KNNEngine
from repro.service.admission import AdmissionController, AdmissionResult
from repro.service.health import HealthStatus, build_health
from repro.service.snapshot import SnapshotView
from repro.service.supervisor import RefreshSupervisor
from repro.similarity.workloads import ProfileChange
from repro.testing.faults import fault_point


class ServiceUnavailable(RuntimeError):
    """The runtime cannot answer: not started, closed, or no snapshot yet."""


class DeadlineExceeded(TimeoutError):
    """A per-request deadline expired before the query could be served."""


class ServingRuntime:
    """Long-lived serving facade over one durable :class:`KNNEngine`.

    Usage::

        with ServingRuntime(profiles, config, workdir=path) as service:
            service.submit_updates(changes)      # ingestion (bounded)
            service.neighbors(user_id)           # query (snapshot-isolated)
            service.health()                     # probes

    ``start()`` seals epoch 0 (the pre-iteration state) and swaps in the
    first snapshot before the refresh loop even starts, so the service is
    *ready* from the first moment — serving ``G(0)`` beats serving
    nothing.  ``stop(drain=True)`` stops admitting, flushes the WAL by
    sealing a final epoch for any pending updates, and joins the loop.
    """

    def __init__(self, profiles=None, config: Optional[EngineConfig] = None,
                 workdir: Optional[Union[str, Path]] = None, *,
                 admission_capacity: int = 4096,
                 default_deadline_seconds: Optional[float] = 1.0,
                 refresh_poll_interval: float = 0.05,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 max_restarts: int = 5):
        base = config if config is not None else EngineConfig()
        if not base.durable:
            # the serving contract (WAL-durable admission, sealed epochs to
            # snapshot from, crash recovery) only exists in durable mode
            base = base.with_overrides(durable=True)
        self._config = base
        self._profiles = profiles
        self._owns_workdir = workdir is None
        self._workdir = (Path(workdir) if workdir is not None
                         else Path(tempfile.mkdtemp(prefix="repro-serve-")))
        self._engine_dir = self._workdir / "engine"
        self._serving_dir = self._workdir / "serving"
        self._engine: Optional[KNNEngine] = None
        self._recovered_engine: Optional[KNNEngine] = None
        self._engine_lock = threading.Lock()
        self._view: Optional[SnapshotView] = None
        self._view_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._queries_served = 0
        self._query_failures = 0
        self._swaps = 0
        self._refresh_failures: List[str] = []
        self._default_deadline = default_deadline_seconds
        self._started = False
        self._stopped = False
        self._closed = False
        self._admission = AdmissionController(
            admission_capacity, self._enqueue_changes,
            lambda: self.pending_updates, fault_plan=self.fault_plan)
        self._supervisor: Optional[RefreshSupervisor] = RefreshSupervisor(
            self, poll_interval=refresh_poll_interval,
            backoff_base=backoff_base, backoff_cap=backoff_cap,
            max_restarts=max_restarts)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServingRuntime":
        """Build the engine, seal+serve epoch 0, start the refresh loop."""
        if self._started:
            raise RuntimeError("ServingRuntime.start() called twice")
        self._started = True
        # stale snapshot clones from a previous (crashed) process serve
        # nobody — every live view belongs to this process
        shutil.rmtree(self._serving_dir, ignore_errors=True)
        self._serving_dir.mkdir(parents=True, exist_ok=True)
        if self._recovered_engine is not None:
            self._engine = self._recovered_engine
        else:
            self._engine = KNNEngine(self._profiles, self._config,
                                     workdir=self._engine_dir)
        self._engine.ensure_initial_commit()
        sealed = self._engine.latest_sealed_epoch()
        assert sealed is not None
        epoch, epoch_dir = sealed
        self._swap_snapshot(
            SnapshotView.from_commit(epoch_dir, self._serving_dir, epoch))
        self._supervisor.start()
        return self

    @classmethod
    def recover(cls, workdir: Union[str, Path],
                config: Optional[EngineConfig] = None,
                **kwargs) -> "ServingRuntime":
        """Restart a service after a process death, from durable state only.

        Recovers the engine (:meth:`KNNEngine.recover`: newest verifiable
        epoch + WAL-tail replay), swaps in a snapshot of that epoch and
        resumes serving.  Pass the crashed service's ``config`` to keep a
        live fault plan attached (the sealed manifest cannot carry one).
        """
        workdir = Path(workdir)
        engine = KNNEngine.recover(workdir / "engine", config=config)
        runtime = cls(profiles=None, config=engine.config, workdir=workdir,
                      **kwargs)
        runtime._recovered_engine = engine
        return runtime.start()

    def __enter__(self) -> "ServingRuntime":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the refresh loop; with ``drain``, flush pending work first.

        Graceful drain: close admission (new submits shed as
        ``draining``), stop the background loop, then — if updates are
        still pending and the supervisor is not parked failed — run one
        final synchronous refresh so the WAL is flushed into a sealed
        epoch and nothing accepted is left unapplied.  May raise if the
        final seal crashes (an injected ``service.drain`` crash models the
        process dying mid-shutdown; :meth:`recover` picks up from there).
        """
        if self._stopped or not self._started:
            self._stopped = True
            self._admission.close()
            return
        self._stopped = True
        if drain:
            self._admission.start_drain()
            fault_point(self.fault_plan, "service.drain")
            self._supervisor.stop(timeout=timeout)
            if self.pending_updates > 0 and self._supervisor.state != "failed":
                self._supervisor.run_one_refresh()
        else:
            self._supervisor.stop(timeout=timeout)
        self._admission.close()

    def close(self) -> None:
        """Release everything; queries fail with :class:`ServiceUnavailable`."""
        if self._closed:
            return
        if not self._stopped:
            try:
                self.stop(drain=False)
            except Exception:  # pragma: no cover — close() must not raise
                pass
        self._closed = True
        with self._view_lock:
            view, self._view = self._view, None
        if view is not None:
            view.retire()
        with self._engine_lock:
            engine, self._engine = self._engine, None
        if engine is not None:
            engine.close()
        if self._owns_workdir:
            shutil.rmtree(self._workdir, ignore_errors=True)

    # -- ingestion path ------------------------------------------------------

    def submit_updates(self,
                       changes: Sequence[ProfileChange]) -> AdmissionResult:
        """Admit (durably WAL) or shed a batch of profile changes."""
        if not self._started:
            raise ServiceUnavailable("submit_updates before start()")
        return self._admission.submit(changes)

    def _enqueue_changes(self, batch: Sequence[ProfileChange]) -> int:
        # under the engine lock: the supervisor replaces the engine (and
        # with it the WAL-owning queue) during recovery, and an enqueue
        # interleaved with that replacement could write colliding
        # sequence numbers into the WAL
        with self._engine_lock:
            engine = self._engine
            if engine is None:
                raise ServiceUnavailable("service is closed")
            # repro: allow[lock-discipline] durability-before-accepted: the WAL fsync must complete before submit() returns ACCEPTED, and it must be ordered against engine replacement; queries take _view_lock (never _engine_lock), so readers do not stall behind this hold
            engine.enqueue_profile_changes(batch)
            # the admission contract wants the queue depth *after* this
            # append.  Refresh drains do NOT take the engine lock (the
            # queue serialises enqueue/drain/len on its own lock), so a
            # drain may slip between the append and this read — but a
            # drain only *removes* work, so the value below is a real
            # observed post-enqueue depth that never overstates the
            # backlog, unlike the old pre-enqueue ``pending + len(batch)``
            # extrapolation
            depth_after = len(engine.update_queue)
        self._supervisor.kick()
        return depth_after

    # -- query path ----------------------------------------------------------

    def _acquire_view(self, deadline_seconds: Optional[float]) -> SnapshotView:
        timeout = (self._default_deadline if deadline_seconds is None
                   else deadline_seconds)
        deadline_at = (time.monotonic() + timeout) if timeout is not None else None
        while True:
            if self._closed:
                self._count_failure()
                raise ServiceUnavailable("service is closed")
            with self._view_lock:
                view = self._view
            # acquire() can lose a race with a concurrent swap+retire that
            # disposed this view; loop and pick up the replacement
            if view is not None and view.acquire():
                return view
            if view is None and not self._started:
                self._count_failure()
                raise ServiceUnavailable("service not started")
            if deadline_at is not None and time.monotonic() >= deadline_at:
                self._count_failure()
                raise DeadlineExceeded(
                    f"no serving snapshot within {timeout}s")
            time.sleep(0.001)

    def neighbors(self, user: int,
                  deadline_seconds: Optional[float] = None
                  ) -> List[Tuple[int, float]]:
        """The user's current KNN ``(neighbor, score)`` from the snapshot."""
        view = self._acquire_view(deadline_seconds)
        try:
            result = view.neighbors(user)
        finally:
            view.release()
        self._count_served()
        return result

    def recommend(self, user: int, top_n: int = 5,
                  deadline_seconds: Optional[float] = None) -> List[int]:
        """Top-N item recommendations from the snapshot (sparse profiles)."""
        view = self._acquire_view(deadline_seconds)
        try:
            result = view.recommend(user, top_n=top_n)
        finally:
            view.release()
        self._count_served()
        return result

    # -- snapshot swap (supervisor-facing) -----------------------------------

    def _swap_snapshot(self, view: SnapshotView) -> None:
        with self._view_lock:
            old, self._view = self._view, view
        if old is not None:
            old.retire()
        with self._stats_lock:
            self._swaps += 1

    def _replace_engine_via_recovery(self) -> None:
        """Abandon the broken engine and rebuild it from durable state."""
        with self._engine_lock:
            old = self._engine
            if old is not None:
                try:
                    old.close()
                except Exception:  # noqa: BLE001 — the engine is already broken
                    pass
            # repro: allow[lock-discipline] recovery path: the engine is already broken, so holding _engine_lock across the rebuild is the point — writers must queue behind recovery, and queries are served from the last committed snapshot via _view_lock meanwhile
            self._engine = KNNEngine.recover(self._engine_dir,
                                             config=self._config)

    def _record_refresh_failure(self, trace: str) -> None:
        with self._stats_lock:
            self._refresh_failures.append(trace)
            del self._refresh_failures[:-20]  # keep the recent tail only

    # -- observability -------------------------------------------------------

    @property
    def engine(self) -> KNNEngine:
        engine = self._engine
        if engine is None:
            raise ServiceUnavailable("service has no engine (closed?)")
        return engine

    @property
    def supervisor(self) -> Optional[RefreshSupervisor]:
        return self._supervisor

    @property
    def fault_plan(self):
        return self._config.fault_plan

    @property
    def workdir(self) -> Path:
        return self._workdir

    @property
    def serving_dir(self) -> Path:
        return self._serving_dir

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def ready(self) -> bool:
        """A snapshot is swapped in and queries can be answered."""
        with self._view_lock:
            return self._view is not None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def accepting(self) -> bool:
        """Whether the admission controller accepts new update batches."""
        return self._started and not self._admission.draining

    @property
    def current_epoch(self) -> int:
        """Epoch of the snapshot answering queries right now (-1 if none)."""
        with self._view_lock:
            return self._view.epoch if self._view is not None else -1

    @property
    def pending_updates(self) -> int:
        """Accepted-but-unapplied changes (the admission/backpressure gauge)."""
        engine = self._engine
        return len(engine.update_queue) if engine is not None else 0

    @property
    def refresh_in_flight(self) -> bool:
        return self._supervisor.refresh_in_flight

    @property
    def restarts(self) -> int:
        return self._supervisor.restarts

    def health(self) -> HealthStatus:
        """One consistent liveness/readiness/degradation sample."""
        return build_health(self)

    def _count_served(self) -> None:
        with self._stats_lock:
            self._queries_served += 1

    def _count_failure(self) -> None:
        with self._stats_lock:
            self._query_failures += 1

    def stats(self) -> dict:
        """Counters for dashboards and the serving benchmark."""
        with self._stats_lock:
            counters = {
                "queries_served": self._queries_served,
                "query_failures": self._query_failures,
                "snapshot_swaps": self._swaps,
            }
        counters.update(self._admission.stats())
        counters.update({
            "refreshes": self._supervisor.refreshes,
            "restarts": self._supervisor.restarts,
            "serving_epoch": self.current_epoch,
            "pending_updates": self.pending_updates,
        })
        return counters
