"""Bounded admission control for the serving runtime's ingestion path.

A long-lived service cannot let its update backlog grow without bound: if
profile churn outpaces the refresh loop, an unbounded queue turns into
unbounded WAL growth, unbounded recovery time, and eventually an OOM — the
exact failure the robustness contract forbids.  The
:class:`AdmissionController` therefore enforces a hard capacity on
*pending* (accepted-but-not-yet-applied) profile changes and **sheds**
everything beyond it with an explicit backpressure signal instead of
queueing or raising.

Shedding is a normal, reportable outcome — :class:`AdmissionResult` tells
the client exactly why (``capacity`` / ``draining`` / ``closed``) so it can
back off and retry.  Accepted batches are durable before ``accepted=True``
is returned: the enqueue goes through :class:`ProfileUpdateQueue`'s fsynced
WAL, so an accepted change survives any crash of the service (the chaos
wall in ``tests/test_service_chaos.py`` kills the process at
``service.admission`` and asserts exactly-once application after
recovery).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.similarity.workloads import ProfileChange
from repro.testing.faults import FaultPlan, fault_point


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of one :meth:`AdmissionController.submit` call.

    ``accepted`` batches are durably WAL-logged; shed batches report the
    reason and the pending depth that triggered the backpressure so
    clients can implement informed retry policies.
    """

    accepted: bool
    #: ``None`` when accepted; else ``"capacity"`` (queue full — retry
    #: after the next refresh), ``"draining"`` (graceful shutdown in
    #: progress) or ``"closed"`` (service stopped).
    shed_reason: Optional[str] = None
    #: The backpressure signal.  For an *accepted* batch this is a queue
    #: depth *observed after* the enqueue — a real point-in-time reading
    #: that already reflects any refresh drain interleaved before it.
    #: Drains only remove work, so this value never overstates the backlog
    #: (the old ``pre-enqueue read + len(batch)`` extrapolation could,
    #: whenever a drain slipped between the capacity check and the
    #: enqueue).  For a shed batch it is the pre-decision depth that
    #: triggered (or accompanied) the shed.
    pending: int = 0
    #: Number of changes in the submitted batch.
    batch_size: int = 0


class AdmissionController:
    """Admits or sheds update batches against a bounded pending budget.

    The controller does not own the queue — the runtime passes an
    ``enqueue`` callable that routes through its engine lock, because the
    underlying :class:`ProfileUpdateQueue` is replaced whenever the
    supervisor recovers the engine.  The capacity check and the enqueue
    happen under one admission lock, so with refresh drains only ever
    *removing* work the capacity bound is exact even with many concurrent
    writers: writers are serialised here, and a drain interleaving between
    the check and the enqueue only makes the real depth smaller than the
    checked one.  The ``enqueue`` callable must return a queue depth
    *observed after* appending the batch — that post-enqueue reading is
    what an accepted :attr:`AdmissionResult.pending` reports.  Drains may
    interleave between the append and the reading, but they only shrink
    the queue, so the reported depth never overstates reality — unlike a
    depth extrapolated from the pre-enqueue read (the old
    ``pending + len(batch)`` contract), which overstated it whenever a
    drain slipped into that window.
    """

    def __init__(self, capacity: int,
                 enqueue: Callable[[Sequence[ProfileChange]], int],
                 pending: Callable[[], int],
                 fault_plan: Optional[FaultPlan] = None):
        if capacity < 1:
            raise ValueError("admission capacity must be positive")
        self._capacity = int(capacity)
        self._enqueue = enqueue
        self._pending = pending
        self._fault_plan = fault_plan
        self._lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._accepted_batches = 0
        self._accepted_changes = 0
        self._shed_batches = 0
        self._shed_changes = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def submit(self, changes: Sequence[ProfileChange]) -> AdmissionResult:
        """Admit ``changes`` (durably enqueue) or shed them with a reason.

        Never raises for backpressure; :class:`InjectedCrash` from the
        fault plan propagates (it models the process dying mid-admission).
        """
        batch = list(changes)
        with self._lock:
            if self._closed:
                return self._shed("closed", batch)
            if self._draining:
                return self._shed("draining", batch)
            pending = self._pending()
            if pending + len(batch) > self._capacity:
                return self._shed("capacity", batch, pending)
            # crash point fires while the batch is admitted but *before* the
            # WAL append — the client never saw accepted=True, so after
            # recovery it must be safe to resubmit (exactly-once overall)
            fault_point(self._fault_plan, "service.admission")
            depth_after = self._enqueue(batch)
            self._accepted_batches += 1
            self._accepted_changes += len(batch)
            return AdmissionResult(accepted=True,
                                   pending=int(depth_after),
                                   batch_size=len(batch))

    def _shed(self, reason: str, batch: list,
              pending: Optional[int] = None) -> AdmissionResult:
        self._shed_batches += 1
        self._shed_changes += len(batch)
        return AdmissionResult(accepted=False, shed_reason=reason,
                               pending=self._pending() if pending is None
                               else pending,
                               batch_size=len(batch))

    def start_drain(self) -> None:
        """Stop admitting new work (graceful shutdown); sheds as ``draining``."""
        with self._lock:
            self._draining = True

    def close(self) -> None:
        """Terminal stop; subsequent submits shed as ``closed``."""
        with self._lock:
            self._draining = True
            self._closed = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self._capacity,
                "accepted_batches": self._accepted_batches,
                "accepted_changes": self._accepted_changes,
                "shed_batches": self._shed_batches,
                "shed_changes": self._shed_changes,
            }
