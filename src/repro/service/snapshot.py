"""Immutable serving snapshots: hard-linked clones of sealed epochs.

The query path of the serving runtime never touches the engine's working
state.  Every completed iteration seals a checksummed commit epoch (see
``docs/robustness.md``); the refresh loop clones that epoch into the
service's own ``serving/`` directory — **hard links** for every file, since
a sealed epoch is immutable — and wraps it in a :class:`SnapshotView`.
Queries then read the cloned graph and profiles:

* reads are *snapshot-isolated*: the in-flight iteration mutates only the
  engine's working stores, never the sealed epoch or its clone, so a query
  observes one consistent ``(G(t), P(t))`` pair from the last committed
  epoch and never blocks on the refresh;
* the clone's lifetime is owned by the service, not the engine: the
  engine's commit GC may prune the epoch directory, but the hard links
  keep the bytes alive until the last reader releases the view.

Views are reference-counted: the runtime acquires one per query and
retires the previous view on swap; the clone directory is deleted when a
retired view's last reader releases it.
"""

from __future__ import annotations

import os
import shutil
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.checkpoint import load_checkpoint
from repro.graph.knn_graph import KNNGraph
from repro.storage.profile_store import OnDiskProfileStore

PathLike = Union[str, os.PathLike]

#: Monotonic suffix for clone directories.  Two live views must never share
#: a directory path: a retired view's disposal deletes its directory, and a
#: ``from_commit`` of the same epoch used to clone into the *same*
#: ``epoch_NNNNN`` path — so the old view's rmtree (or ``from_commit``'s own
#: remnant cleanup) could delete the files a fresh view was serving.  A
#: per-process counter makes every clone directory unique; stale clones from
#: a crashed previous process are swept by the runtime's ``start()``.
_CLONE_COUNTER = 0
_CLONE_COUNTER_LOCK = threading.Lock()


def _next_clone_suffix() -> int:
    global _CLONE_COUNTER
    with _CLONE_COUNTER_LOCK:
        _CLONE_COUNTER += 1
        return _CLONE_COUNTER


def _clone_tree_hardlink(source: Path, dest: Path) -> None:
    """Clone a sealed epoch directory file-by-file via hard links.

    Every file of a sealed epoch is immutable (the commit protocol only
    ever creates whole new epoch directories), so hard-linking is always
    safe; cross-filesystem links fall back to copies transparently.
    """
    for path in sorted(source.rglob("*")):
        relative = path.relative_to(source)
        target = dest / relative
        if path.is_dir():
            target.mkdir(parents=True, exist_ok=True)
            continue
        target.parent.mkdir(parents=True, exist_ok=True)
        if target.exists():
            target.unlink()
        try:
            os.link(path, target)
        except OSError:
            shutil.copy2(path, target)


class SnapshotView:
    """One immutable serving snapshot: ``G(t)`` + ``P(t)`` of a sealed epoch.

    Built by :meth:`from_commit` from an epoch directory.  The graph is
    loaded into memory (queries are sub-millisecond dictionary reads); the
    profiles stay on disk behind the store's mmap readers and are only
    touched by :meth:`recommend`.

    Thread-safety: all query methods are read-only and safe to call from
    many reader threads concurrently.  Lifetime is managed through
    :meth:`acquire`/:meth:`release` plus :meth:`retire` (called by the
    runtime when a newer snapshot is swapped in).
    """

    def __init__(self, directory: PathLike, epoch: int, graph: KNNGraph,
                 store: Optional[OnDiskProfileStore]):
        self._directory = Path(directory)
        self._epoch = int(epoch)
        self._graph = graph
        self._store = store
        self._lock = threading.Lock()
        self._refs = 0
        self._retired = False
        self._disposed = False

    @classmethod
    def from_commit(cls, epoch_dir: PathLike, serving_dir: PathLike,
                    epoch: int) -> "SnapshotView":
        """Clone a sealed epoch into a fresh ``serving_dir`` subdirectory.

        The clone directory name carries a per-process monotonic suffix
        (``epoch_NNNNN_cMMMM``) so every view instance owns a *unique*
        directory: re-cloning an epoch that another live view still serves
        (recovery re-publish, a reader pinning a view across a supervisor
        restart) can then never delete or overwrite bytes under that
        reader.  Remnants of clones from a crashed previous process are
        removed wholesale by the runtime's ``start()`` sweep of
        ``serving_dir``.
        """
        source = Path(epoch_dir)
        dest = (Path(serving_dir)
                / f"epoch_{epoch:05d}_c{_next_clone_suffix():04d}")
        if dest.exists():  # pragma: no cover - the suffix makes this unreachable
            shutil.rmtree(dest)
        _clone_tree_hardlink(source, dest)
        graph, _iteration, _metadata = load_checkpoint(dest)
        store = None
        if (dest / "profiles").is_dir():
            store = OnDiskProfileStore(dest / "profiles", disk_model="instant")
        return cls(dest, epoch, graph, store)

    # -- lifetime ------------------------------------------------------------

    def acquire(self) -> bool:
        """Pin the view for one read; ``False`` when already disposed."""
        with self._lock:
            if self._disposed:
                return False
            self._refs += 1
            return True

    def release(self) -> None:
        """Unpin; a retired view with no readers left deletes its clone."""
        dispose = False
        with self._lock:
            self._refs -= 1
            if self._retired and self._refs <= 0 and not self._disposed:
                self._disposed = True
                dispose = True
        if dispose:
            self._dispose()

    def retire(self) -> None:
        """Mark superseded; disposal happens when the last reader releases."""
        dispose = False
        with self._lock:
            self._retired = True
            if self._refs <= 0 and not self._disposed:
                self._disposed = True
                dispose = True
        if dispose:
            self._dispose()

    def _dispose(self) -> None:
        if self._store is not None:
            self._store = None
        shutil.rmtree(self._directory, ignore_errors=True)

    @property
    def active_readers(self) -> int:
        with self._lock:
            return self._refs

    # -- queries -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The sealed epoch this view serves (the iteration counter)."""
        return self._epoch

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def graph(self) -> KNNGraph:
        return self._graph

    @property
    def num_users(self) -> int:
        return self._graph.num_vertices

    def neighbors(self, user: int) -> List[Tuple[int, float]]:
        """The user's KNN as ``(neighbor, score)``, best first."""
        scores = self._graph.neighbor_scores(user)
        return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))

    def recommend(self, user: int, top_n: int = 5) -> List[int]:
        """Top-N item recommendations from the user's KNN (sparse profiles).

        Aggregates the items of the user's neighbours weighted by
        similarity rank (the paper's recommender framing), excluding items
        the user already has.  Requires sparse (item-set) profiles.
        """
        if self._store is None or self._store.kind != "sparse":
            raise ValueError(
                "recommend() needs sparse item-set profiles; this snapshot "
                f"serves {'no' if self._store is None else self._store.kind} "
                "profiles — use neighbors() instead")
        ranked = self.neighbors(user)
        ids = [user] + [neighbor for neighbor, _ in ranked]
        profiles = self._store.load_users(ids)
        own_items = profiles.get(user)
        votes: Dict[int, int] = {}
        k = self._graph.k
        for rank, (neighbor, _score) in enumerate(ranked):
            weight = k - rank
            for item in profiles.get(neighbor):
                if item not in own_items:
                    votes[item] = votes.get(item, 0) + weight
        ordered = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        return [item for item, _ in ordered[:top_n]]
