"""Always-on serving runtime over the out-of-core KNN engine.

The batch engine computes ``G(t+1)`` from ``G(t)``; this package keeps a
process *serving* ``G(t)`` while that happens — snapshot-isolated queries,
bounded (load-shedding) ingestion, and a supervised refresh loop that
recovers from crashes without ever taking the query path down.  See
``docs/serving.md``.
"""

from repro.service.admission import AdmissionController, AdmissionResult
from repro.service.health import HealthStatus, build_health
from repro.service.loadgen import (LoadGenerator, PhaseReport,
                                   dense_set_batch, sparse_add_batch)
from repro.service.runtime import (DeadlineExceeded, ServiceUnavailable,
                                   ServingRuntime)
from repro.service.snapshot import SnapshotView
from repro.service.supervisor import RefreshSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionResult",
    "DeadlineExceeded",
    "HealthStatus",
    "LoadGenerator",
    "PhaseReport",
    "RefreshSupervisor",
    "ServiceUnavailable",
    "ServingRuntime",
    "SnapshotView",
    "build_health",
    "dense_set_batch",
    "sparse_add_batch",
]
