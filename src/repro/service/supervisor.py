"""Supervised background refresh loop: iterate, seal, swap — and survive.

The :class:`RefreshSupervisor` owns the service's single background thread.
Each refresh cycle it runs one dirty-scheduled engine iteration (which
drains the update queue and seals a commit epoch), clones the sealed epoch
into a fresh :class:`~repro.service.snapshot.SnapshotView`, and hands the
view to the runtime's atomic swap callback.

Robustness contract (the reason this is a *supervisor* and not a plain
loop): any exception out of a cycle — an injected crash point, a real I/O
error, a poisoned worker — is treated as a crash of the refresh path
**only**.  The supervisor abandons the broken engine, waits out a capped
exponential backoff, and rebuilds the engine with
:meth:`KNNEngine.recover` from the durable state (sealed epochs + WAL
tail).  Queries keep being answered from the last swapped snapshot the
whole time; after ``max_restarts`` consecutive failures the supervisor
parks in ``failed`` state — still degrading gracefully, never taking the
query path down with it.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Optional

from repro.service.snapshot import SnapshotView
from repro.testing.faults import fault_point


class RefreshSupervisor:
    """Runs and babysits the background refresh loop of a serving runtime.

    Parameters
    ----------
    runtime:
        The owning :class:`~repro.service.runtime.ServingRuntime`; the
        supervisor calls back into it for the engine handle
        (``runtime._engine`` under ``runtime._engine_lock``), the snapshot
        swap (``runtime._swap_snapshot``) and the serving directory.
    poll_interval:
        How often the loop checks for pending updates when idle.
    backoff_base / backoff_cap:
        Exponential-backoff schedule between recovery attempts:
        ``min(backoff_base * 2**(failures-1), backoff_cap)`` seconds.
    max_restarts:
        Consecutive-failure budget before the supervisor gives up and
        parks in ``failed`` state (queries continue regardless).  A
        successful cycle resets the counter.
    """

    def __init__(self, runtime, poll_interval: float = 0.05,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 max_restarts: int = 5):
        self._runtime = runtime
        self._poll_interval = float(poll_interval)
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._max_restarts = int(max_restarts)
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._wake_event = threading.Event()
        self._state_lock = threading.Lock()
        self._state = "idle"          # idle | refreshing | recovering | failed | stopped
        self._restarts = 0            # total successful recoveries
        self._consecutive_failures = 0
        self._refreshes = 0
        self._min_refresh_seconds: Optional[float] = None
        self._last_error: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, name="refresh-loop",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        self._stop_event.set()
        self._wake_event.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        with self._state_lock:
            if self._state != "failed":
                self._state = "stopped"

    def kick(self) -> None:
        """Wake the loop early (called after a batch is admitted)."""
        self._wake_event.set()

    # -- observability -------------------------------------------------------

    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    @property
    def restarts(self) -> int:
        with self._state_lock:
            return self._restarts

    @property
    def refreshes(self) -> int:
        with self._state_lock:
            return self._refreshes

    @property
    def min_refresh_seconds(self) -> Optional[float]:
        """Fastest completed refresh cycle (iteration + seal + swap).

        The serving bench compares query p99 against this: a read that
        *blocked* on an in-flight iteration would take at least this long,
        so p99 orders of magnitude below it proves snapshot isolation.
        """
        with self._state_lock:
            return self._min_refresh_seconds

    @property
    def last_error(self) -> Optional[str]:
        with self._state_lock:
            return self._last_error

    @property
    def refresh_in_flight(self) -> bool:
        with self._state_lock:
            return self._state == "refreshing"

    # -- the loop ------------------------------------------------------------

    def _set_state(self, state: str) -> None:
        with self._state_lock:
            self._state = state

    def _run(self) -> None:
        while not self._stop_event.is_set():
            self._wake_event.wait(timeout=self._poll_interval)
            self._wake_event.clear()
            if self._stop_event.is_set():
                break
            if self._runtime.pending_updates <= 0:
                continue
            try:
                self._set_state("refreshing")
                started = time.perf_counter()
                self.run_one_refresh()
                elapsed = time.perf_counter() - started
                with self._state_lock:
                    self._refreshes += 1
                    self._consecutive_failures = 0
                    self._last_error = None
                    self._state = "idle"
                    if (self._min_refresh_seconds is None
                            or elapsed < self._min_refresh_seconds):
                        self._min_refresh_seconds = elapsed
            except Exception as exc:  # noqa: BLE001 — any crash means "recover"
                self._note_failure(exc)
                if not self._recover():
                    return  # parked in failed state; query path lives on
        self._set_state("stopped")

    def run_one_refresh(self) -> None:
        """One refresh cycle: iterate (seals the epoch), clone, swap.

        Also used synchronously by the runtime's graceful drain for the
        final epoch.  Raises on any failure — the caller supervises.
        """
        runtime = self._runtime
        engine = runtime.engine
        engine.run_iteration()
        fault_point(runtime.fault_plan, "service.before_swap")
        sealed = engine.latest_sealed_epoch()
        if sealed is None:  # pragma: no cover — durable iterations always seal
            raise RuntimeError("refresh completed but no sealed epoch found")
        epoch, epoch_dir = sealed
        view = SnapshotView.from_commit(epoch_dir, runtime.serving_dir, epoch)
        runtime._swap_snapshot(view)
        fault_point(runtime.fault_plan, "service.after_swap")

    # -- recovery ------------------------------------------------------------

    def _note_failure(self, exc: Exception) -> None:
        with self._state_lock:
            self._consecutive_failures += 1
            self._last_error = f"{type(exc).__name__}: {exc}"
        self._runtime._record_refresh_failure(traceback.format_exc())

    def _recover(self) -> bool:
        """Rebuild the engine from durable state; ``True`` when back up."""
        while not self._stop_event.is_set():
            with self._state_lock:
                failures = self._consecutive_failures
                if failures > self._max_restarts:
                    self._state = "failed"
                    return False
            self._set_state("recovering")
            delay = min(self._backoff_base * (2 ** max(failures - 1, 0)),
                        self._backoff_cap)
            if self._stop_event.wait(timeout=delay):
                return False
            try:
                self._runtime._replace_engine_via_recovery()
                # recovery may have found an epoch sealed by a cycle that
                # crashed after commit but before swap — publish it so the
                # serving snapshot catches up with the durable truth
                engine = self._runtime.engine
                sealed = engine.latest_sealed_epoch()
                if sealed is not None and sealed[0] > self._runtime.current_epoch:
                    view = SnapshotView.from_commit(
                        sealed[1], self._runtime.serving_dir, sealed[0])
                    self._runtime._swap_snapshot(view)
                with self._state_lock:
                    # the failure streak is only broken by a *successful
                    # refresh* (see _run) — recovery succeeding just means
                    # the loop gets another attempt from its budget
                    self._restarts += 1
                    self._state = "idle"
                return True
            except Exception as exc:  # noqa: BLE001 — recovery itself crashed
                self._note_failure(exc)
        return False
