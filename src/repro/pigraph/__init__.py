"""Phase 3 — the partition-interaction (PI) graph and its traversal heuristics."""

from repro.pigraph.pi_graph import PIEdge, PIGraph
from repro.pigraph.traversal import (
    HEURISTICS,
    CostAwareHeuristic,
    DegreeHighLowHeuristic,
    DegreeLowHighHeuristic,
    GreedyResidentHeuristic,
    SequentialHeuristic,
    TraversalHeuristic,
    get_heuristic,
)
from repro.pigraph.scheduler import ScheduleResult, simulate_schedule, plan_schedule

__all__ = [
    "PIGraph",
    "PIEdge",
    "TraversalHeuristic",
    "SequentialHeuristic",
    "DegreeHighLowHeuristic",
    "DegreeLowHighHeuristic",
    "GreedyResidentHeuristic",
    "CostAwareHeuristic",
    "HEURISTICS",
    "get_heuristic",
    "ScheduleResult",
    "simulate_schedule",
    "plan_schedule",
]
