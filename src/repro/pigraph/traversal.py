"""PI-graph traversal heuristics (phase 3).

A heuristic turns the PI graph into an ordered list of *residency steps*:
pairs of partitions that must be simultaneously resident while the tuples
on the PI edges between them are scored.  All heuristics follow the pivot
scheme the paper describes:

* pick the next **pivot** partition according to the heuristic's pivot
  order, load it, and process **all of its not-yet-processed PI edges**
  (in both directions), grouped by the neighbouring partition;
* the order in which the pivot's neighbours are visited is the heuristic's
  second degree of freedom;
* once the pivot's edges are exhausted the pivot is removed from further
  consideration and the next pivot is chosen.

Heuristics shipped:

=================  ======================================  =========================
name               pivot order                             neighbour order
=================  ======================================  =========================
``sequential``     ascending partition id                  ascending partition id
``degree-high-low``descending PI degree                    descending PI degree
``degree-low-high``descending PI degree                    ascending PI degree
``greedy-resident``next pivot = a currently resident       descending shared weight
                   partition when possible (extension)
=================  ======================================  =========================

The first three are the heuristics evaluated in the paper's Table 1; the
fourth is one of the "better heuristics" the paper's future work calls for.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.pigraph.pi_graph import PIEdge, PIGraph

#: A residency step: the pair of partitions that must be in memory together,
#: plus the list of directed PI edges scored while they are resident.
ResidencyStep = Tuple[int, int, Tuple[PIEdge, ...]]


class TraversalHeuristic(abc.ABC):
    """Strategy that linearises a PI graph into residency steps."""

    name: str = "base"

    @abc.abstractmethod
    def pivot_order(self, pi_graph: PIGraph) -> List[int]:
        """Order in which partitions take their turn as the pivot."""

    @abc.abstractmethod
    def neighbor_order(self, pi_graph: PIGraph, pivot: int,
                       neighbors: Iterable[int]) -> List[int]:
        """Order in which a pivot's neighbouring partitions are visited."""

    def plan(self, pi_graph: PIGraph) -> List[ResidencyStep]:
        """Produce the full ordered list of residency steps for ``pi_graph``."""
        remaining, weights, incident = _index_edges(pi_graph)
        steps: List[ResidencyStep] = []
        for pivot in self.pivot_order(pi_graph):
            partners = _remaining_partners(pivot, incident, remaining)
            if not partners:
                continue
            _emit_pivot_steps(
                pivot, partners, weights, remaining, steps,
                lambda keys: self.neighbor_order(pi_graph, pivot, keys),
            )
        if remaining:
            raise RuntimeError(f"traversal left {len(remaining)} PI edges unprocessed (bug)")
        return steps


class SequentialHeuristic(TraversalHeuristic):
    """The paper's baseline: partitions are taken in ascending id order."""

    name = "sequential"

    def pivot_order(self, pi_graph: PIGraph) -> List[int]:
        return pi_graph.active_partitions()

    def neighbor_order(self, pi_graph: PIGraph, pivot: int,
                       neighbors: Iterable[int]) -> List[int]:
        return sorted(neighbors)


class _DegreeBasedHeuristic(TraversalHeuristic):
    """Common machinery for the two degree-based variants."""

    #: +1 sorts neighbours by ascending degree, -1 by descending degree.
    _neighbor_sign = 1

    def __init__(self):
        # memoise the degree array per PI graph: neighbor_order is called once
        # per pivot and recomputing degrees there would be quadratic overall
        self._degree_cache: Tuple[Optional[int], Optional[np.ndarray]] = (None, None)

    def _degrees(self, pi_graph: PIGraph) -> np.ndarray:
        cached_id, cached = self._degree_cache
        if cached_id != id(pi_graph) or cached is None:
            cached = pi_graph.degree_array()
            self._degree_cache = (id(pi_graph), cached)
        return cached

    def pivot_order(self, pi_graph: PIGraph) -> List[int]:
        degrees = self._degrees(pi_graph)
        active = pi_graph.active_partitions()
        # highest degree first; ties broken by ascending id for determinism
        return sorted(active, key=lambda p: (-degrees[p], p))

    def neighbor_order(self, pi_graph: PIGraph, pivot: int,
                       neighbors: Iterable[int]) -> List[int]:
        degrees = self._degrees(pi_graph)
        return sorted(neighbors, key=lambda p: (self._neighbor_sign * degrees[p], p))


class DegreeHighLowHeuristic(_DegreeBasedHeuristic):
    """Degree-based heuristic, destination degrees visited from highest to lowest."""

    name = "degree-high-low"
    _neighbor_sign = -1


class DegreeLowHighHeuristic(_DegreeBasedHeuristic):
    """Degree-based heuristic, destination degrees visited from lowest to highest."""

    name = "degree-low-high"
    _neighbor_sign = 1


class GreedyResidentHeuristic(TraversalHeuristic):
    """Extension heuristic: chain pivots through already-resident partitions.

    After finishing a pivot, the next pivot is chosen among the partitions
    that are still resident (the last visited partner) if any of them has
    remaining edges; otherwise the highest-remaining-degree partition is
    picked.  This saves one partition load per pivot switch whenever the
    chain can be continued and is one of the "better heuristics" the paper
    leaves as future work.
    """

    name = "greedy-resident"

    def _pivot_priority(self, pi_graph: PIGraph) -> np.ndarray:
        """Score used to pick fallback pivots (higher = earlier)."""
        return pi_graph.degree_array().astype(np.float64)

    def pivot_order(self, pi_graph: PIGraph) -> List[int]:
        # Pivot order is computed jointly with neighbour order in plan();
        # this method returns the fallback order used for seeding.
        priority = self._pivot_priority(pi_graph)
        return sorted(pi_graph.active_partitions(), key=lambda p: (-priority[p], p))

    def neighbor_order(self, pi_graph: PIGraph, pivot: int,
                       neighbors: Iterable[int]) -> List[int]:
        adjacency = pi_graph.adjacency()
        return sorted(neighbors, key=lambda p: (-adjacency[pivot].get(p, 0), p))

    def plan(self, pi_graph: PIGraph) -> List[ResidencyStep]:
        remaining, weights, incident = _index_edges(pi_graph)
        degrees = self._pivot_priority(pi_graph)
        adjacency = pi_graph.adjacency()
        steps: List[ResidencyStep] = []
        # remaining unprocessed edge count per partition, for O(1) pivot checks
        remaining_degree: Dict[int, int] = {p: 0 for p in range(pi_graph.num_partitions)}
        for src, dst in remaining:
            remaining_degree[src] += 1
            if dst != src:
                remaining_degree[dst] += 1
        unprocessed: Set[int] = set(pi_graph.active_partitions())
        candidate_order = sorted(unprocessed, key=lambda p: (-degrees[p], p))
        candidate_index = 0
        last_partner: Optional[int] = None

        while remaining:
            if (last_partner is not None and last_partner in unprocessed
                    and remaining_degree[last_partner] > 0):
                pivot = last_partner
            else:
                while (candidate_index < len(candidate_order)
                       and (candidate_order[candidate_index] not in unprocessed
                            or remaining_degree[candidate_order[candidate_index]] == 0)):
                    candidate_index += 1
                if candidate_index >= len(candidate_order):
                    break
                pivot = candidate_order[candidate_index]
            partners = _remaining_partners(pivot, incident, remaining)
            ordered = _emit_pivot_steps(
                pivot, partners, weights, remaining, steps,
                lambda keys: sorted(keys, key=lambda p: (-adjacency[pivot].get(p, 0), p)),
                remaining_degree=remaining_degree,
            )
            unprocessed.discard(pivot)
            last_partner = ordered[-1] if ordered else None
        if remaining:
            raise RuntimeError(f"traversal left {len(remaining)} PI edges unprocessed (bug)")
        return steps


def _index_edges(pi_graph: PIGraph):
    """Shared plan() bookkeeping: remaining-edge set, weights, and incidence lists."""
    edges = pi_graph.edges()
    remaining: Set[Tuple[int, int]] = {(e.src, e.dst) for e in edges}
    weights = {(e.src, e.dst): e.weight for e in edges}
    incident: Dict[int, List[Tuple[int, int]]] = {}
    for key in remaining:
        src, dst = key
        incident.setdefault(src, []).append(key)
        if dst != src:
            incident.setdefault(dst, []).append(key)
    return remaining, weights, incident


def _remaining_partners(pivot: int, incident: Dict[int, List[Tuple[int, int]]],
                        remaining: Set[Tuple[int, int]]) -> Dict[int, List[Tuple[int, int]]]:
    """The pivot's not-yet-processed edges, grouped by the partner partition."""
    partners: Dict[int, List[Tuple[int, int]]] = {}
    for key in incident.get(pivot, ()):
        if key not in remaining:
            continue
        src, dst = key
        partner = dst if src == pivot else src
        partners.setdefault(partner, []).append(key)
    return partners


def _emit_pivot_steps(pivot: int, partners: Dict[int, List[Tuple[int, int]]],
                      weights: Dict[Tuple[int, int], int],
                      remaining: Set[Tuple[int, int]],
                      steps: List[ResidencyStep],
                      order_fn,
                      remaining_degree: Optional[Dict[int, int]] = None) -> List[int]:
    """Append the residency steps for one pivot; returns the partner visit order."""

    def consume(keys: List[Tuple[int, int]], partner: int) -> Tuple[PIEdge, ...]:
        edges = tuple(PIEdge(src, dst, weights[(src, dst)]) for src, dst in sorted(keys))
        for key in keys:
            remaining.discard(key)
            if remaining_degree is not None:
                src, dst = key
                remaining_degree[src] -= 1
                if dst != src:
                    remaining_degree[dst] -= 1
        steps.append((pivot, partner, edges))
        return edges

    if pivot in partners:
        consume(partners.pop(pivot), pivot)
    ordered = list(order_fn(partners.keys()))
    for partner in ordered:
        consume(partners[partner], partner)
    return ordered


class CostAwareHeuristic(GreedyResidentHeuristic):
    """Extension heuristic weighing I/O cost against similarity work.

    The paper's future work asks for heuristics that "consider the amount of
    time consumed for both partition load/unload operations and the
    similarity computation for tuples given two partitions".  This variant
    keeps the resident-chaining of :class:`GreedyResidentHeuristic` but picks
    fallback pivots by the amount of similarity work (total tuple weight on
    their remaining PI edges) they unlock per load, so that expensive loads
    are amortised over as much computation as possible.
    """

    name = "cost-aware"

    def _pivot_priority(self, pi_graph: PIGraph) -> np.ndarray:
        degrees = pi_graph.degree_array().astype(np.float64)
        weighted = np.zeros(pi_graph.num_partitions, dtype=np.float64)
        for edge in pi_graph.edges():
            weighted[edge.src] += edge.weight
            if edge.dst != edge.src:
                weighted[edge.dst] += edge.weight
        # tuples unlocked per partition load: each incident edge costs roughly
        # one partner load, plus one load for the pivot itself
        return weighted / (degrees + 1.0)


#: Registry of heuristics by name (the first three are the paper's).
HEURISTICS: Dict[str, type] = {
    SequentialHeuristic.name: SequentialHeuristic,
    DegreeHighLowHeuristic.name: DegreeHighLowHeuristic,
    DegreeLowHighHeuristic.name: DegreeLowHighHeuristic,
    GreedyResidentHeuristic.name: GreedyResidentHeuristic,
    CostAwareHeuristic.name: CostAwareHeuristic,
}

#: The three heuristics evaluated in the paper's Table 1, in column order.
PAPER_HEURISTICS = ("sequential", "degree-high-low", "degree-low-high")


def get_heuristic(name: str) -> TraversalHeuristic:
    """Instantiate a traversal heuristic by name."""
    try:
        cls = HEURISTICS[name]
    except KeyError:
        known = ", ".join(sorted(HEURISTICS))
        raise KeyError(f"unknown traversal heuristic {name!r}; known: {known}") from None
    return cls()
