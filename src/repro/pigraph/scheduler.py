"""Load/unload scheduling and operation counting for PI-graph traversals.

Given the ordered residency steps produced by a traversal heuristic, the
scheduler simulates a bounded partition cache (two slots by default, as the
paper requires) and counts the partition **load** and **unload** operations
the traversal would incur — the quantity reported in the paper's Table 1.
The same plan can then be executed against the real
:class:`~repro.storage.memory_manager.PartitionCache` during phase 4; the
simulated and executed counts agree because both use LRU eviction over the
same step sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from repro.pigraph.pi_graph import PIGraph
from repro.pigraph.traversal import ResidencyStep, TraversalHeuristic, get_heuristic
from repro.utils.validation import check_positive_int

#: Declared-pure planners: same inputs, same plan — on every backend,
#: every resume, every re-plan.  The dirty-partition scheduler (PR 7), the
#: shard planner (PR 9) and the fallback candidate selector all rely on
#: this to keep the parity walls meaningful.  The invariant lint
#: (``python -m repro.analysis``) walks the call graph from each entry
#: and rejects reachable wall-clock reads, randomness, environment reads,
#: file I/O and module-global writes.  Add a function here to put it
#: under the same contract.
PURE_FUNCTIONS = (
    "repro.pigraph.scheduler.plan_dirty_schedule",
    "repro.pigraph.scheduler.plan_shard_schedule",
    "repro.pigraph.scheduler.simulate_schedule",
    "repro.graph.knn_graph.topk_candidate_rows",
)


@dataclass
class ScheduleResult:
    """Outcome of simulating one traversal plan."""

    heuristic: str
    num_partitions: int
    num_steps: int
    loads: int
    unloads: int
    cache_hits: int
    tuples_scheduled: int
    final_resident: Tuple[int, ...] = ()

    @property
    def load_unload_operations(self) -> int:
        """Loads + unloads: the number the paper's Table 1 reports."""
        return self.loads + self.unloads

    def as_dict(self) -> Dict[str, int]:
        return {
            "heuristic": self.heuristic,
            "num_partitions": self.num_partitions,
            "num_steps": self.num_steps,
            "loads": self.loads,
            "unloads": self.unloads,
            "load_unload_operations": self.load_unload_operations,
            "cache_hits": self.cache_hits,
            "tuples_scheduled": self.tuples_scheduled,
        }


def plan_schedule(pi_graph: PIGraph,
                  heuristic: Union[str, TraversalHeuristic]) -> List[ResidencyStep]:
    """Linearise ``pi_graph`` with ``heuristic`` (name or instance)."""
    if isinstance(heuristic, str):
        heuristic = get_heuristic(heuristic)
    return heuristic.plan(pi_graph)


@dataclass
class DirtySchedule:
    """A full traversal plan split by what the update churn can still touch.

    ``executed`` keeps every step that must run against the partition cache,
    reordered dirty-first; ``cached`` holds the steps whose partitions are
    both clean *and* whose pair was already scored at the score cache's
    generation — their tuples are answerable from the cache without loading
    a profile.  ``executed + cached`` is always a permutation of the input
    steps: dirty scheduling never drops candidate tuples, it only changes
    where their scores come from.
    """

    executed: List[ResidencyStep]
    cached: List[ResidencyStep]
    dirty_partitions: Optional[Tuple[int, ...]]
    assume_all_dirty: bool

    @property
    def num_steps(self) -> int:
        return len(self.executed) + len(self.cached)


def _normalised_pair(first: int, second: int) -> Tuple[int, int]:
    return (first, second) if first <= second else (second, first)


def plan_dirty_schedule(steps: Sequence[ResidencyStep],
                        dirty_partitions: Optional[Iterable[int]],
                        pair_generations: Mapping[Tuple[int, int], int],
                        cache_generation: Optional[int]) -> DirtySchedule:
    """Split and reorder a traversal plan around the partitions churn touched.

    A *pure* function of its four inputs — no wall clock, no ambient state —
    so every backend, every resume and every re-plan of the same iteration
    produces the same schedule:

    - ``dirty_partitions``: partitions holding at least one row that changed
      since the score cache's generation, as reported by
      ``OnDiskProfileStore.touched_partitions_since``.  ``None`` propagates
      that method's "cannot vouch" answer: every step executes, in the
      heuristic's original order (reload, compaction rollover and recovery
      all land here — the only safe answer is "run everything").
    - ``pair_generations``: store generation at which each normalised
      partition pair ``(min, max)`` last had its tuples fully scored.
    - ``cache_generation``: the generation the phase-4 score cache currently
      matches, or ``None`` when there is no usable cache.

    A step may be served from the cache only when *both* partitions are
    clean and its pair is recorded as scored at exactly ``cache_generation``.
    Clean-pair steps whose scores are not vouched for still execute — after
    the dirty steps, so the partitions most likely to change the graph are
    visited first (convergence-driven ordering).  Relative order within each
    class is preserved, keeping the heuristic's residency locality.
    """
    all_steps = list(steps)
    if dirty_partitions is None or cache_generation is None:
        return DirtySchedule(executed=all_steps, cached=[],
                             dirty_partitions=None, assume_all_dirty=True)
    dirty = frozenset(int(p) for p in dirty_partitions)
    dirty_steps: List[ResidencyStep] = []
    clean_unscored: List[ResidencyStep] = []
    cached: List[ResidencyStep] = []
    for step in all_steps:
        first, second, _ = step
        if first in dirty or second in dirty:
            dirty_steps.append(step)
        elif pair_generations.get(_normalised_pair(first, second)) == cache_generation:
            cached.append(step)
        else:
            clean_unscored.append(step)
    return DirtySchedule(executed=dirty_steps + clean_unscored, cached=cached,
                         dirty_partitions=tuple(sorted(dirty)),
                         assume_all_dirty=False)


@dataclass
class ShardSchedule:
    """A step sequence colored into waves of partition-disjoint steps.

    Within one wave no two steps share a partition, so every step of a wave
    can execute concurrently with each executor holding exclusive ownership
    of its step's partitions.  ``waves`` flattened in order is a permutation
    of the input steps, and steps that share a partition keep their input
    order across waves (each partition's step sequence is monotone in wave
    index), so per-partition effects replay in the serial order.
    """

    waves: List[List[ResidencyStep]]
    wave_of: Tuple[int, ...]

    @property
    def num_steps(self) -> int:
        return len(self.wave_of)

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def max_wave_width(self) -> int:
        """Steps in the widest wave — the useful parallelism bound."""
        return max((len(wave) for wave in self.waves), default=0)

    def wave_partitions(self, wave_index: int) -> List[int]:
        """Distinct partitions resident during one wave, in step order."""
        partitions: List[int] = []
        seen = set()
        for first, second, _ in self.waves[wave_index]:
            for partition in (first, second):
                if partition not in seen:
                    seen.add(partition)
                    partitions.append(partition)
        return partitions

    @property
    def total_partition_residencies(self) -> int:
        """Sum of distinct partitions across waves: the sharded load count.

        Each wave loads each of its partitions exactly once (and drops them
        at the wave barrier), so this is both the load and the unload count
        of a sharded execution — the analogue of
        :attr:`ScheduleResult.load_unload_operations` ``/ 2``.
        """
        return sum(len(self.wave_partitions(i)) for i in range(len(self.waves)))


def plan_shard_schedule(steps: Sequence[ResidencyStep]) -> ShardSchedule:
    """Color ``steps`` into waves of pairwise partition-disjoint steps.

    A *pure*, deterministic function of the step sequence (no wall clock, no
    ambient state), so every backend and every re-plan produces the same
    waves.  Greedy earliest-wave placement: each step lands in the first
    wave where neither of its partitions is taken yet, which both preserves
    the per-partition step order of the input (a partition's ``wave_free``
    watermark only moves forward) and keeps dirty-first sequences front
    loaded — the dirty steps the input leads with fill the early waves.

    Degenerate inputs behave sensibly: an empty sequence yields zero waves,
    and a single-partition graph (every step ``(p, p)``) yields one
    single-step wave per step in input order.
    """
    wave_free: Dict[int, int] = {}
    waves: List[List[ResidencyStep]] = []
    wave_of: List[int] = []
    for step in steps:
        first, second, _ = step
        wave = max(wave_free.get(first, 0), wave_free.get(second, 0))
        if wave == len(waves):
            waves.append([])
        waves[wave].append(step)
        wave_of.append(wave)
        wave_free[first] = wave + 1
        wave_free[second] = wave + 1
    return ShardSchedule(waves=waves, wave_of=tuple(wave_of))


def simulate_schedule(steps: Sequence[ResidencyStep],
                      heuristic_name: str = "",
                      num_partitions: int = 0,
                      cache_slots: int = 2,
                      unload_at_end: bool = True) -> ScheduleResult:
    """Simulate a ``cache_slots``-slot LRU partition cache over ``steps``.

    Every partition brought into the cache counts one *load*; every eviction
    (including the final flush when ``unload_at_end``) counts one *unload*.
    A step whose partitions are already resident costs nothing and is
    recorded as a cache hit.
    """
    check_positive_int(cache_slots, "cache_slots")
    resident: "OrderedDict[int, None]" = OrderedDict()
    loads = unloads = hits = 0
    tuples_scheduled = 0

    def touch(partition: int) -> bool:
        """Ensure ``partition`` is resident; return True on a cache hit."""
        nonlocal loads, unloads
        if partition in resident:
            resident.move_to_end(partition)
            return True
        while len(resident) >= cache_slots:
            resident.popitem(last=False)
            unloads += 1
        resident[partition] = None
        loads += 1
        return False

    for first, second, edges in steps:
        needed = (first,) if first == second else (first, second)
        if len(needed) > cache_slots:
            raise ValueError(
                f"step needs {len(needed)} resident partitions but the cache has "
                f"{cache_slots} slots"
            )
        # Mirror ``PartitionCache.acquire_pair``: every partition of this step
        # that is already resident is touched *before* any miss is loaded, so
        # a load can never evict the step's own partner.  Without the
        # pre-touch pass, a step whose partner sat at the LRU position would
        # evict it while loading the other partition and immediately reload
        # it — one spurious load+unload the executor never performs, breaking
        # the "simulated and executed counts agree" contract exactly at the
        # ``cache_slots`` boundary.
        step_hit = True
        for partition in needed:
            if partition in resident:
                resident.move_to_end(partition)
            else:
                step_hit = False
        # Touch the pivot before the partner: the partner then becomes the
        # eviction candidate on the next step while the pivot stays resident,
        # and a pivot switch to the previous partner is a cache hit.
        for partition in needed:
            touch(partition)
        if step_hit:
            hits += 1
        tuples_scheduled += sum(edge.weight for edge in edges)

    final_resident = tuple(resident)
    if unload_at_end:
        unloads += len(resident)
        resident.clear()
    return ScheduleResult(
        heuristic=heuristic_name,
        num_partitions=num_partitions,
        num_steps=len(steps),
        loads=loads,
        unloads=unloads,
        cache_hits=hits,
        tuples_scheduled=tuples_scheduled,
        final_resident=final_resident,
    )


def count_load_unload_operations(pi_graph: PIGraph,
                                 heuristic: Union[str, TraversalHeuristic],
                                 cache_slots: int = 2,
                                 unload_at_end: bool = True) -> ScheduleResult:
    """Plan + simulate in one call; the Table 1 measurement for one cell."""
    heuristic_obj = get_heuristic(heuristic) if isinstance(heuristic, str) else heuristic
    steps = heuristic_obj.plan(pi_graph)
    return simulate_schedule(
        steps,
        heuristic_name=heuristic_obj.name,
        num_partitions=pi_graph.num_partitions,
        cache_slots=cache_slots,
        unload_at_end=unload_at_end,
    )


def compare_heuristics(pi_graph: PIGraph,
                       heuristics: Sequence[Union[str, TraversalHeuristic]],
                       cache_slots: int = 2) -> Dict[str, ScheduleResult]:
    """Run several heuristics over the same PI graph (one Table 1 row)."""
    results: Dict[str, ScheduleResult] = {}
    for heuristic in heuristics:
        result = count_load_unload_operations(pi_graph, heuristic, cache_slots=cache_slots)
        results[result.heuristic] = result
    return results
